//! `rgs-mine` — command-line miner for (closed) repetitive gapped
//! subsequences, built on the unified `Miner` engine.
//!
//! ```text
//! rgs-mine [mine] --input FILE|--snapshot IMG [--format tokens|spmf|chars|json]
//!          --min-sup K
//!          [--mode all|closed|maximal] [--closed] [--all] [--maximal-mode]
//!          [--min-gap G] [--max-gap G] [--max-window W]
//!          [--top-k K] [--min-len L] [--max-len L] [--max-patterns N]
//!          [--threads N] [--shards N] [--top T] [--density R] [--maximal] [--stream]
//! rgs-mine topk  --input FILE|--snapshot IMG -k K [--min-sup FLOOR] [...]
//! rgs-mine batch --input FILE|--snapshot IMG --requests FILE [--top T]
//! rgs-mine stats --input FILE|--snapshot IMG [--format tokens|spmf|chars] [--shards N]
//! rgs-mine snapshot build --input FILE [--format ...] [--shards N] --out IMG
//! rgs-mine snapshot info  --snapshot IMG
//! rgs-mine snapshot verify --snapshot IMG
//! rgs-mine demo  [--min-sup K] [--mode ...]
//! ```
//!
//! The `stats` subcommand prints the dataset summary (rows, events,
//! alphabet size, lengths) together with the byte footprint of the
//! columnar store and the CSR inverted index, so store-size regressions are
//! visible without a profiler. The `topk` subcommand ranks the best `k`
//! closed patterns and composes with the gap/window constraint flags — gap-constrained top-k mining from
//! the command line. `--stream` prints patterns incrementally through a
//! `PatternSink` instead of materializing the result first. `--threads N`
//! mines on N worker threads (bit-identical output), and `--format json`
//! switches the output to a JSON document containing the `MiningReport`
//! and the reported patterns.
//!
//! The `batch` subcommand mines many requests in **one** shared DFS pass
//! over the prepared snapshot ([`PreparedDb::batch_with_deadlines`]): the
//! request file holds one JSON object per line in the same shape as a
//! `POST /mine` body (`{"min_sup": 3, "mode": "closed", "max_gap": 2}`;
//! blank lines and `#` comments are skipped), and each request's answer is
//! bit-identical to running it alone. A per-line `timeout_ms` becomes that
//! member's private deadline — an expired member comes back truncated
//! without affecting its siblings.
//!
//! `snapshot build` prepares a database once (interning, inverted index,
//! frequent-event counts) and serializes it into a single image file;
//! `--snapshot IMG` then serves any mining/stats invocation straight from
//! that image — the file is `mmap`ed and validated, nothing is
//! re-tokenized or re-indexed. `snapshot info` prints the image's header
//! and section table after validating its checksum, and `snapshot verify`
//! statically proves every cross-section invariant of the image — CSR
//! monotonicity, shard-table partitioning, catalog bijectivity, checksum —
//! without constructing a database, reporting each violation with its
//! section and byte offset.

use std::ops::ControlFlow;
use std::path::PathBuf;
use std::process::ExitCode;

use rgs_core::{
    canonical_key, json, postprocess, sort_patterns_for_report, CollectSink, GapConstraints,
    MinedPattern, Miner, MiningRequest, Mode, PostProcessConfig, PreparedDb,
};
use seqdb::snapshot::{section_id, verify, SnapshotImage};
use seqdb::{io as seqio, SequenceDatabase};

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    input: Option<PathBuf>,
    /// Mine/stat straight from a snapshot image instead of a text file.
    snapshot: Option<PathBuf>,
    /// Output path of `snapshot build`.
    out: Option<PathBuf>,
    /// Which `snapshot` subcommand ran, if any.
    snapshot_cmd: Option<SnapshotCmd>,
    /// Whether the `batch` subcommand ran.
    batch: bool,
    /// Request file of the `batch` subcommand (one JSON object per line).
    requests: Option<PathBuf>,
    format: Format,
    min_sup: u64,
    mode: Mode,
    top_k: Option<usize>,
    min_len: Option<usize>,
    min_gap: Option<u32>,
    max_gap: Option<u32>,
    max_window: Option<u32>,
    max_len: Option<usize>,
    max_patterns: Option<usize>,
    threads: usize,
    /// Partition the store into N shards at preparation time (mine/topk/
    /// stats/snapshot build; 1 = flat).
    shards: usize,
    top: usize,
    density: Option<f64>,
    maximal_filter: bool,
    stream: bool,
    json_output: bool,
    demo: bool,
    stats_only: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Tokens,
    Spmf,
    Chars,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SnapshotCmd {
    Build,
    Info,
    Verify,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            input: None,
            snapshot: None,
            out: None,
            snapshot_cmd: None,
            batch: false,
            requests: None,
            format: Format::Tokens,
            min_sup: 2,
            mode: Mode::Closed,
            top_k: None,
            min_len: None,
            min_gap: None,
            max_gap: None,
            max_window: None,
            max_len: None,
            max_patterns: None,
            threads: 1,
            shards: 1,
            top: 20,
            density: None,
            maximal_filter: false,
            stream: false,
            json_output: false,
            demo: false,
            stats_only: false,
        }
    }
}

impl Options {
    fn constraints(&self) -> GapConstraints {
        let mut constraints = GapConstraints::unbounded();
        if let Some(g) = self.min_gap {
            constraints = constraints.with_min_gap(g);
        }
        if let Some(g) = self.max_gap {
            constraints = constraints.with_max_gap(g);
        }
        if let Some(w) = self.max_window {
            constraints = constraints.with_max_window(w);
        }
        constraints
    }

    /// Applies every query option to a miner builder, whatever its source.
    fn apply<'a>(&self, miner: Miner<'a>) -> Miner<'a> {
        let mut miner = miner
            .min_sup(self.min_sup)
            .mode(self.mode)
            .constraints(self.constraints());
        if let Some(k) = self.top_k {
            miner = miner.top_k(k);
        }
        if let Some(len) = self.min_len {
            miner = miner.min_len(len);
        }
        if let Some(len) = self.max_len {
            miner = miner.max_pattern_length(len);
        }
        if let Some(cap) = self.max_patterns {
            miner = miner.max_patterns(cap);
        }
        miner.threads(self.threads)
    }

    /// Test convenience: a lazily-preparing miner over a bare database.
    #[cfg(test)]
    fn miner<'a>(&self, db: &'a SequenceDatabase) -> Miner<'a> {
        self.apply(Miner::new(db))
    }

    fn mode_label(&self) -> String {
        let base = match self.mode {
            Mode::All => "frequent",
            Mode::Closed => "closed",
            Mode::Maximal => "maximal",
            Mode::TopK => "top-k closed",
        };
        if self.top_k.is_some() && self.mode != Mode::TopK {
            format!("top-{} {base}", self.top_k.unwrap_or(0))
        } else {
            base.to_owned()
        }
    }
}

/// Where the miner's data came from: a text file parsed into a fresh
/// database, or a [`PreparedDb`] — mapped from a snapshot image, or built
/// eagerly because `--shards N` asked for a partitioned store.
enum Loaded {
    Text(SequenceDatabase),
    Prepared(Box<PreparedDb>),
}

impl Loaded {
    fn database(&self) -> &SequenceDatabase {
        match self {
            Loaded::Text(db) => db,
            Loaded::Prepared(prepared) => prepared.database(),
        }
    }

    /// A miner over this source with every query option applied. The
    /// prepared path skips all per-run preparation — the snapshot (or the
    /// sharded build) already holds the index and counts.
    fn miner(&self, options: &Options) -> Miner<'_> {
        match self {
            Loaded::Text(db) => options.apply(Miner::new(db)),
            Loaded::Prepared(prepared) => options.apply(prepared.miner()),
        }
    }
}

/// Loads the mining source: `--snapshot` image, `--input` text file, or the
/// built-in demo database (Table III of the paper).
fn load_source(options: &Options) -> Result<Loaded, ExitCode> {
    if let Some(path) = &options.snapshot {
        return match PreparedDb::open_snapshot(path) {
            // --shards N re-partitions an image prepared with a different
            // shard count (windows re-derive zero-copy; indexes rebuild),
            // so the flag means the same thing on every subcommand.
            Ok(prepared) if options.shards > 1 && prepared.shard_count() != options.shards => Ok(
                Loaded::Prepared(Box::new(prepared.reshard(options.shards, options.threads))),
            ),
            Ok(prepared) => Ok(Loaded::Prepared(Box::new(prepared))),
            Err(err) => {
                eprintln!("error: cannot open snapshot {}: {err}", path.display());
                Err(ExitCode::FAILURE)
            }
        };
    }
    if options.demo {
        // The running example of the paper (Table III).
        return Ok(from_text(
            SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]),
            options,
        ));
    }
    let Some(path) = &options.input else {
        eprintln!("error: --input FILE, --snapshot IMG, or the demo subcommand is required");
        print_usage();
        return Err(ExitCode::FAILURE);
    };
    let loaded = match options.format {
        Format::Tokens => seqio::read_tokens_file(path),
        Format::Spmf => seqio::read_spmf_file(path),
        Format::Chars => seqio::read_chars_file(path),
    };
    match loaded {
        Ok(db) => Ok(from_text(db, options)),
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", path.display());
            Err(ExitCode::FAILURE)
        }
    }
}

/// Wraps a freshly parsed database: flat by default, eagerly prepared with
/// a partitioned store under `--shards N` so every later query (and the
/// snapshot writer) sees the shards.
fn from_text(db: SequenceDatabase, options: &Options) -> Loaded {
    if options.shards > 1 {
        Loaded::Prepared(Box::new(PreparedDb::from_database_sharded(
            db,
            options.shards,
            options.threads,
        )))
    } else {
        Loaded::Text(db)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    match options.snapshot_cmd {
        Some(SnapshotCmd::Build) => return run_snapshot_build(&options),
        Some(SnapshotCmd::Info) => return run_snapshot_info(&options),
        Some(SnapshotCmd::Verify) => return run_snapshot_verify(&options),
        None => {}
    }

    let source = match load_source(&options) {
        Ok(source) => source,
        Err(code) => return code,
    };

    if options.stats_only {
        return run_stats(&source);
    }
    if options.batch {
        return run_batch(&source, &options);
    }

    let db = source.database();
    eprintln!("# dataset: {}", db.stats().summary());
    let constraints = options.constraints();
    if !constraints.is_unbounded() {
        eprintln!("# constraints: {}", constraints.describe());
    }

    if options.json_output {
        return run_json(&source, &options);
    }
    if options.stream {
        return run_streaming(&source, &options);
    }

    let mut outcome = source.miner(&options).run();
    eprintln!(
        "# {} {} patterns mined in {:.3}s (visited {} nodes{})",
        outcome.len(),
        options.mode_label(),
        outcome.stats.elapsed_seconds,
        outcome.stats.visited,
        if outcome.truncated { ", TRUNCATED" } else { "" },
    );

    let patterns = if options.density.is_some() || options.maximal_filter {
        let pp = PostProcessConfig {
            min_density: options.density.unwrap_or(0.0),
            maximal_only: options.maximal_filter,
            rank_by_length: true,
        };
        postprocess(&outcome.patterns, &pp)
    } else {
        outcome.sort_for_report();
        outcome.patterns.clone()
    };

    for mined in patterns.iter().take(options.top) {
        print_pattern(db, mined);
    }
    ExitCode::SUCCESS
}

/// `snapshot build`: prepare the input once (interning, inverted index,
/// occurrence counts) and serialize the result into one image file.
fn run_snapshot_build(options: &Options) -> ExitCode {
    // parse_args is the single validation point for required flags.
    let out = options.out.as_ref().expect("parse_args enforced --out");
    let source = match load_source(options) {
        Ok(source) => source,
        Err(code) => return code,
    };
    let prepared = match source {
        Loaded::Text(db) => PreparedDb::from_database_sharded(db, options.shards, options.threads),
        // Rebuilding an image from an image is a copy, but a valid one
        // (and, with --shards, a re-partitioning one).
        Loaded::Prepared(prepared) if options.shards > 1 => {
            prepared.reshard(options.shards, options.threads)
        }
        Loaded::Prepared(prepared) => *prepared,
    };
    match prepared.write_snapshot(out) {
        Ok(bytes) => {
            let stats = prepared.stats();
            eprintln!("# dataset: {}", stats.summary());
            println!(
                "written {}: {bytes} bytes on disk ({} bytes of arenas + header/catalog, \
                 {} shard{})",
                out.display(),
                prepared.heap_bytes(),
                prepared.shard_count(),
                if prepared.shard_count() == 1 { "" } else { "s" },
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: cannot write {}: {err}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// `snapshot info`: validate an image (header, checksum, section table) and
/// print what it holds without reconstructing the database.
fn run_snapshot_info(options: &Options) -> ExitCode {
    // parse_args is the single validation point for required flags.
    let path = options
        .snapshot
        .as_ref()
        .expect("parse_args enforced --snapshot");
    let image = match SnapshotImage::open(path) {
        Ok(image) => image,
        Err(err) => {
            eprintln!("error: cannot open snapshot {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    println!("snapshot:  {}", path.display());
    println!("size:      {} bytes", image.len_bytes());
    println!(
        "access:    {}",
        if image.is_mapped() {
            "mmap (zero-copy)"
        } else {
            "buffered read"
        }
    );
    if let Ok(&[sequences, events, total_length]) = image.u64s(section_id::META) {
        println!("contents:  {sequences} sequences, {events} events, {total_length} total length");
    }
    println!("version:   {}", image.version());
    if let Some(entry) = image.section(section_id::STORE_EVENTS) {
        let (width, note) = match entry.elem_size {
            2 => ("u16 (narrow)", " — half the wide arena's bytes"),
            _ => ("u32 (wide)", ""),
        };
        println!("events:    {width} elements{note}");
    }
    println!("sections:  (name, id, offset, bytes, elements)");
    for entry in image.sections() {
        let name = match section_id::shard_of(entry.id) {
            Some(shard) => format!("{}[{shard}]", section_id::name(entry.id)),
            None => section_id::name(entry.id).to_owned(),
        };
        println!(
            "  {name:24} id={:<6} @{:>10} {:>12} bytes  {:>12} x {}B",
            entry.id, entry.offset, entry.byte_len, entry.count, entry.elem_size,
        );
    }
    ExitCode::SUCCESS
}

/// `snapshot verify`: statically prove every invariant of an image on the
/// raw bytes — no `PreparedDb` is constructed — and report each violation
/// with its owning section and absolute byte offset. Exit code 0 iff the
/// image is clean.
fn run_snapshot_verify(options: &Options) -> ExitCode {
    // parse_args is the single validation point for required flags.
    let path = options
        .snapshot
        .as_ref()
        .expect("parse_args enforced --snapshot");
    let report = match verify::verify_file(path) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: cannot read snapshot {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    println!("snapshot:  {}", path.display());
    if let Some(version) = report.version {
        println!("version:   {version}");
    }
    println!("size:      {} bytes", report.file_len);
    println!("sections:  {}", report.section_count);
    if report.is_clean() {
        println!("verify:    OK — structure, checksum, and layout invariants all hold");
        return ExitCode::SUCCESS;
    }
    for violation in &report.violations {
        println!("  {violation}");
    }
    let n = report.violations.len();
    if report.checksum_broken_only() {
        println!("verify:    FAILED — checksum mismatch with intact sections (bit rot)");
    } else {
        println!(
            "verify:    FAILED — {n} invariant violation{}",
            if n == 1 { "" } else { "s" }
        );
    }
    ExitCode::FAILURE
}

/// One parsed line of a `batch` request file: the mining parameters plus
/// the optional per-request deadline.
#[derive(Debug, Clone, PartialEq)]
struct BatchLine {
    request: MiningRequest,
    timeout_ms: Option<u64>,
}

/// Parses one request line of a `batch` file. The accepted shape is the
/// `POST /mine` body of `rgs-serve`: a flat JSON object whose fields are
/// all optional, with unknown fields rejected by name (a typo like
/// `"min_supp"` silently mining with the default support would be far
/// worse than an error).
fn parse_batch_line(line: &str) -> Result<BatchLine, String> {
    let value = json::parse(line).map_err(|err| format!("invalid JSON: {err}"))?;
    let members = value
        .as_obj()
        .ok_or_else(|| "request must be a JSON object".to_owned())?;

    let as_u64 = |name: &str, field: &json::Value| -> Result<u64, String> {
        field
            .as_u64()
            .ok_or_else(|| format!("field {name:?} must be a non-negative integer"))
    };
    let as_u32 = |name: &str, field: &json::Value| -> Result<u32, String> {
        u32::try_from(as_u64(name, field)?)
            .map_err(|_| format!("field {name:?} exceeds the u32 range"))
    };
    let as_usize = |name: &str, field: &json::Value| -> Result<usize, String> {
        usize::try_from(as_u64(name, field)?)
            .map_err(|_| format!("field {name:?} exceeds the usize range"))
    };

    // `null` on any optional field means "use the default", exactly as in
    // the serve protocol.
    let opt_u32 = |name: &str, field: &json::Value| -> Result<Option<u32>, String> {
        if field.is_null() {
            Ok(None)
        } else {
            as_u32(name, field).map(Some)
        }
    };
    let opt_usize = |name: &str, field: &json::Value| -> Result<Option<usize>, String> {
        if field.is_null() {
            Ok(None)
        } else {
            as_usize(name, field).map(Some)
        }
    };

    let mut request = MiningRequest::default();
    let mut timeout_ms = None;
    for (name, field) in members {
        match name.as_str() {
            "min_sup" => request.min_sup = as_u64(name, field)?,
            "mode" => {
                request.mode = match field.as_str() {
                    Some("all") => Mode::All,
                    Some("closed") => Mode::Closed,
                    Some("maximal") => Mode::Maximal,
                    Some("top-k" | "topk" | "top_k") => Mode::TopK,
                    Some(other) => return Err(format!("unknown mode {other:?}")),
                    None => return Err("field \"mode\" must be a string".to_owned()),
                }
            }
            "min_gap" => request.constraints.min_gap = as_u32(name, field)?,
            "max_gap" => request.constraints.max_gap = opt_u32(name, field)?,
            "max_window" => request.constraints.max_window = opt_u32(name, field)?,
            "top_k" => request.top_k = opt_usize(name, field)?,
            "min_len" => request.min_len = as_usize(name, field)?,
            "max_len" => request.max_pattern_length = opt_usize(name, field)?,
            "max_patterns" => request.max_patterns = opt_usize(name, field)?,
            "timeout_ms" => {
                timeout_ms = if field.is_null() {
                    None
                } else {
                    Some(as_u64(name, field)?)
                };
            }
            other => {
                return Err(format!(
                    "unknown field {other:?}; accepted fields: min_sup, mode, min_gap, \
                     max_gap, max_window, top_k, min_len, max_len, max_patterns, timeout_ms"
                ));
            }
        }
    }
    Ok(BatchLine {
        request,
        timeout_ms,
    })
}

/// Parses a whole `batch` request file: one JSON object per line, blank
/// lines and `#` comments skipped, errors prefixed with the line number.
fn parse_batch_file(text: &str) -> Result<Vec<BatchLine>, String> {
    let mut lines = Vec::new();
    for (at, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = parse_batch_line(line).map_err(|err| format!("line {}: {err}", at + 1))?;
        lines.push(parsed);
    }
    if lines.is_empty() {
        return Err("request file holds no requests".to_owned());
    }
    Ok(lines)
}

/// `batch` subcommand: mine every request of the file in **one** shared
/// DFS pass over the prepared source, then print each member's
/// solo-identical answer.
fn run_batch(source: &Loaded, options: &Options) -> ExitCode {
    // parse_args is the single validation point for required flags.
    let path = options
        .requests
        .as_ref()
        .expect("parse_args enforced --requests");
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let lines = match parse_batch_file(&text) {
        Ok(lines) => lines,
        Err(err) => {
            eprintln!("error: {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };

    // The batch engine runs on a prepared snapshot; a plain text source is
    // prepared once here — the whole point is that N requests share it.
    let built;
    let prepared: &PreparedDb = match source {
        Loaded::Text(db) => {
            built = PreparedDb::new(db);
            &built
        }
        Loaded::Prepared(prepared) => prepared,
    };
    let requests: Vec<MiningRequest> = lines.iter().map(|l| l.request.clone()).collect();
    let deadlines: Vec<Option<std::time::Instant>> = lines
        .iter()
        .map(|l| {
            l.timeout_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms))
        })
        .collect();
    let results = prepared.batch_with_deadlines(&requests, &deadlines);

    let db = prepared.database();
    if options.json_output {
        let mut out = String::from("{\n  \"batch\": [\n");
        for (i, (request, result)) in requests.iter().zip(&results).enumerate() {
            out.push_str(&format!(
                "    {{\"request\": {}, \"count\": {}, \"truncated\": {}, \
                 \"deadline_exceeded\": {}, \"patterns\": [",
                json::escape(&canonical_key(request)),
                result.outcome.len(),
                result.outcome.truncated,
                result.cancelled,
            ));
            for (j, mined) in result.outcome.patterns.iter().take(options.top).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"pattern\": {}, \"support\": {}, \"len\": {}}}",
                    json::escape(&mined.pattern.render_with(db.catalog(), " ")),
                    mined.support,
                    mined.pattern.len(),
                ));
            }
            out.push_str(&format!(
                "]}}{}\n",
                if i + 1 < requests.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}");
        println!("{out}");
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "# {} requests mined in one shared pass over {}",
        requests.len(),
        db.stats().summary()
    );
    for (i, (request, result)) in requests.iter().zip(&results).enumerate() {
        println!(
            "## request {}/{}: {} -> {} patterns{}{}",
            i + 1,
            requests.len(),
            canonical_key(request),
            result.outcome.len(),
            if result.outcome.truncated {
                ", TRUNCATED"
            } else {
                ""
            },
            if result.cancelled {
                ", DEADLINE EXCEEDED"
            } else {
                ""
            },
        );
        for mined in result.outcome.patterns.iter().take(options.top) {
            print_pattern(db, mined);
        }
    }
    ExitCode::SUCCESS
}

/// `stats` subcommand: dataset summary plus the byte footprint of the
/// columnar layers (flat event store, CSR inverted index), so store-size
/// regressions show up in plain numbers instead of a profiler. With
/// `--snapshot` the index comes straight from the image instead of being
/// rebuilt.
fn run_stats(source: &Loaded) -> ExitCode {
    let stats = match source {
        Loaded::Text(db) => db.stats(),
        Loaded::Prepared(prepared) => prepared.stats(),
    };
    let index_bytes = match source {
        Loaded::Text(db) => db.inverted_index().heap_bytes(),
        Loaded::Prepared(prepared) => prepared.index().heap_bytes(),
    };
    println!("sequences:             {}", stats.num_sequences);
    println!("events (alphabet):     {}", stats.num_events);
    println!("total length:          {}", stats.total_length);
    println!(
        "sequence length:       min {} / avg {:.2} / median {:.1} / max {}",
        stats.min_length, stats.avg_length, stats.median_length, stats.max_length
    );
    println!("max event occurrences: {}", stats.max_event_occurrences);
    println!("avg event occurrences: {:.2}", stats.avg_event_occurrences);
    println!(
        "event element width:   {} bytes ({})",
        stats.event_elem_bytes,
        if stats.event_elem_bytes == 2 {
            "narrow u16 — alphabet fits 65536 ids"
        } else {
            "wide u32"
        }
    );
    println!("store bytes (CSR):     {}", stats.store_bytes);
    if stats.store_bytes_wide > stats.store_bytes {
        println!(
            "  narrow saving:       {} bytes vs a wide (u32) arena ({})",
            stats.store_bytes_wide - stats.store_bytes,
            stats.store_bytes_wide,
        );
    }
    println!("index bytes (CSR):     {index_bytes}");
    if stats.total_length > 0 {
        println!(
            "bytes per event:       {:.2} store + {:.2} index",
            stats.store_bytes as f64 / stats.total_length as f64,
            index_bytes as f64 / stats.total_length as f64
        );
    }
    println!("shards:                {}", stats.num_shards);
    // The growth-kernel dispatch decision for this process: runtime CPU
    // detection, pinnable to the scalar reference kernels with
    // RGS_FORCE_SCALAR=1. Surfaced here so throughput reports always name
    // the backend they ran on.
    println!(
        "kernel backend:        {} (cpu: {})",
        seqdb::simd::active_backend().name(),
        seqdb::simd::detected_features()
    );
    if let Loaded::Prepared(prepared) = source {
        if prepared.shard_count() > 1 {
            for f in prepared.shard_footprints() {
                println!(
                    "  shard {:<3} {:>8} sequences  {:>10} events  {:>12} store B  {:>12} index B",
                    f.shard, f.sequences, f.events, f.store_bytes, f.index_bytes,
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// `--format json`: one JSON document with the `MiningReport` (search
/// statistics, truncation/cancellation flags) and the reported patterns,
/// serialized with the workspace's hand-rolled JSON writer. The `--top`,
/// `--density` and `--maximal` report filters apply as in text mode.
fn run_json(source: &Loaded, options: &Options) -> ExitCode {
    let db = source.database();
    let mut collect = CollectSink::new();
    let report = source.miner(options).run_with_sink(&mut collect);
    let mut patterns = collect.into_patterns();
    if options.density.is_some() || options.maximal_filter {
        let pp = PostProcessConfig {
            min_density: options.density.unwrap_or(0.0),
            maximal_only: options.maximal_filter,
            rank_by_length: true,
        };
        patterns = postprocess(&patterns, &pp);
    } else {
        sort_patterns_for_report(&mut patterns);
    }
    patterns.truncate(options.top);

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": {},\n",
        json::escape(&options.mode_label())
    ));
    out.push_str(&format!("  \"report\": {},\n", report.to_json()));
    out.push_str("  \"patterns\": [\n");
    for (i, mined) in patterns.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pattern\": {}, \"support\": {}, \"len\": {}}}{}\n",
            json::escape(&mined.pattern.render_with(db.catalog(), " ")),
            mined.support,
            mined.pattern.len(),
            if i + 1 < patterns.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    println!("{out}");
    ExitCode::SUCCESS
}

/// `--stream`: patterns are printed the moment the engine finds them,
/// bounded by `--top` through sink cancellation.
fn run_streaming(source: &Loaded, options: &Options) -> ExitCode {
    let db = source.database();
    let limit = options.top;
    if limit == 0 {
        eprintln!("# streamed 0 {} patterns (--top 0)", options.mode_label());
        return ExitCode::SUCCESS;
    }
    let mut printed = 0usize;
    let report = source
        .miner(options)
        .run_with_sink(&mut |mined: MinedPattern| {
            if printed >= limit {
                return ControlFlow::Break(());
            }
            print_pattern(db, &mined);
            printed += 1;
            if printed >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
    eprintln!(
        "# streamed {} {} patterns in {:.3}s (visited {} nodes{}{})",
        report.emitted,
        options.mode_label(),
        report.stats.elapsed_seconds,
        report.stats.visited,
        if report.truncated { ", TRUNCATED" } else { "" },
        if report.cancelled {
            ", cancelled at --top limit"
        } else {
            ""
        },
    );
    ExitCode::SUCCESS
}

fn print_pattern(db: &SequenceDatabase, mined: &MinedPattern) {
    println!(
        "{}\tsup={}\tlen={}",
        mined.pattern.render_with(db.catalog(), " "),
        mined.support,
        mined.pattern.len()
    );
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options::default();
    let mut explicit_all = false;
    let mut explicit_closed = false;
    let mut i = 0;

    // Optional leading subcommand.
    match args.first().map(String::as_str) {
        Some("mine") => i = 1,
        Some("snapshot") => {
            options.snapshot_cmd = match args.get(1).map(String::as_str) {
                Some("build") => Some(SnapshotCmd::Build),
                Some("info") => Some(SnapshotCmd::Info),
                Some("verify") => Some(SnapshotCmd::Verify),
                other => {
                    return Err(format!(
                        "snapshot needs a build|info|verify subcommand, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            };
            i = 2;
        }
        Some("topk") => {
            options.mode = Mode::Closed;
            options.top_k = Some(10);
            options.min_len = Some(2);
            options.min_sup = 1;
            i = 1;
        }
        Some("batch") => {
            // The request file carries the query parameters; the remaining
            // flags only select the data source and output shaping.
            options.batch = true;
            i = 1;
        }
        Some("stats") => {
            options.stats_only = true;
            i = 1;
        }
        Some("demo") => {
            options.demo = true;
            i = 1;
        }
        _ => {}
    }

    while i < args.len() {
        let arg = args[i].clone();
        let next_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        let parse_num = |value: String, what: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("{what} must be an integer"))
        };
        match args[i].as_str() {
            "--help" | "-h" => {
                print_usage();
                return Ok(None);
            }
            "--input" | "-i" => options.input = Some(PathBuf::from(next_value(&mut i)?)),
            "--snapshot" => options.snapshot = Some(PathBuf::from(next_value(&mut i)?)),
            "--requests" => options.requests = Some(PathBuf::from(next_value(&mut i)?)),
            "--out" | "-o" => options.out = Some(PathBuf::from(next_value(&mut i)?)),
            "--format" | "-f" => match next_value(&mut i)?.as_str() {
                "tokens" => options.format = Format::Tokens,
                "spmf" => options.format = Format::Spmf,
                "chars" => options.format = Format::Chars,
                // Output selector: serialize the MiningReport and the
                // patterns as one JSON document.
                "json" => options.json_output = true,
                other => return Err(format!("unknown format '{other}'")),
            },
            "--min-sup" | "-s" => {
                options.min_sup = parse_num(next_value(&mut i)?, "min-sup")?;
            }
            "--mode" => {
                options.mode = match next_value(&mut i)?.as_str() {
                    "all" => Mode::All,
                    "closed" => Mode::Closed,
                    "maximal" => Mode::Maximal,
                    "topk" => Mode::TopK,
                    other => return Err(format!("unknown mode '{other}'")),
                }
            }
            "--closed" => {
                options.mode = Mode::Closed;
                explicit_closed = true;
            }
            "--all" => {
                options.mode = Mode::All;
                explicit_all = true;
            }
            "--maximal-mode" => options.mode = Mode::Maximal,
            "--top-k" | "-k" => {
                options.top_k = Some(parse_num(next_value(&mut i)?, "top-k")? as usize);
            }
            "--min-len" => {
                options.min_len = Some(parse_num(next_value(&mut i)?, "min-len")? as usize);
            }
            "--min-gap" => {
                options.min_gap = Some(parse_num(next_value(&mut i)?, "min-gap")? as u32);
            }
            "--max-gap" => {
                options.max_gap = Some(parse_num(next_value(&mut i)?, "max-gap")? as u32);
            }
            "--max-window" => {
                options.max_window = Some(parse_num(next_value(&mut i)?, "max-window")? as u32);
            }
            "--max-len" => {
                options.max_len = Some(parse_num(next_value(&mut i)?, "max-len")? as usize);
            }
            "--max-patterns" => {
                options.max_patterns =
                    Some(parse_num(next_value(&mut i)?, "max-patterns")? as usize);
            }
            "--threads" | "-j" => {
                options.threads = parse_num(next_value(&mut i)?, "threads")?.max(1) as usize;
            }
            "--shards" => {
                options.shards = parse_num(next_value(&mut i)?, "shards")?.max(1) as usize;
            }
            "--top" => {
                options.top = parse_num(next_value(&mut i)?, "top")? as usize;
            }
            "--density" => {
                options.density = Some(
                    next_value(&mut i)?
                        .parse()
                        .map_err(|_| "density must be a number".to_owned())?,
                );
            }
            "--maximal" => options.maximal_filter = true,
            "--stream" => options.stream = true,
            "--stats" => options.stats_only = true,
            "--demo" => options.demo = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if explicit_all && explicit_closed {
        return Err("--all and --closed are mutually exclusive".to_owned());
    }
    if options.snapshot.is_some() && options.input.is_some() {
        return Err("--input and --snapshot are mutually exclusive".to_owned());
    }
    if options.batch && options.requests.is_none() {
        return Err("batch needs --requests FILE (one JSON request per line)".to_owned());
    }
    if options.requests.is_some() && !options.batch {
        return Err("--requests only applies to the batch subcommand".to_owned());
    }
    if options.snapshot_cmd == Some(SnapshotCmd::Build) && options.out.is_none() {
        return Err("snapshot build needs --out IMG".to_owned());
    }
    if options.snapshot_cmd == Some(SnapshotCmd::Info) && options.snapshot.is_none() {
        return Err("snapshot info needs --snapshot IMG".to_owned());
    }
    if options.snapshot_cmd == Some(SnapshotCmd::Verify) && options.snapshot.is_none() {
        return Err("snapshot verify needs --snapshot IMG".to_owned());
    }
    if options.stream && options.json_output {
        return Err(
            "--stream and --format json are mutually exclusive (JSON output \
                    materializes the full report)"
                .to_owned(),
        );
    }
    Ok(Some(options))
}

fn print_usage() {
    println!(
        "rgs-mine: mine (closed) repetitive gapped subsequences\n\
         \n\
         usage:\n\
           rgs-mine [mine] --input FILE|--snapshot IMG [--format tokens|spmf|chars|json]\n\
                    --min-sup K\n\
                    [--mode all|closed|maximal] [--closed|--all|--maximal-mode]\n\
                    [--min-gap G] [--max-gap G] [--max-window W]\n\
                    [--top-k K] [--min-len L] [--max-len L] [--max-patterns N]\n\
                    [--threads N] [--shards N] [--top T] [--density R] [--maximal] [--stream]\n\
           rgs-mine topk --input FILE|--snapshot IMG -k K [--min-sup FLOOR] ...\n\
           rgs-mine batch --input FILE|--snapshot IMG --requests FILE [--top T] [--format json]\n\
           rgs-mine stats --input FILE|--snapshot IMG [--format tokens|spmf|chars] [--shards N]\n\
           rgs-mine snapshot build --input FILE [--format ...] [--shards N] --out IMG\n\
           rgs-mine snapshot info  --snapshot IMG\n\
           rgs-mine snapshot verify --snapshot IMG\n\
           rgs-mine demo [--min-sup K] [--mode ...]\n\
         \n\
         subcommands:\n\
           mine      (default) mine the requested pattern family\n\
           topk      rank the k best closed patterns (composes with gap/window\n\
                     constraints: gap-constrained top-k mining)\n\
           batch     mine every request of --requests FILE (one JSON object\n\
                     per line, the POST /mine body shape; '#' comments ok) in\n\
                     one shared DFS pass — each answer is bit-identical to\n\
                     running that request alone, and a per-line timeout_ms\n\
                     deadline-bounds only its own member\n\
           stats     print dataset statistics and the byte footprint of the\n\
                     flat columnar store and the CSR inverted index\n\
           snapshot  build: prepare once (intern + index + counts) and write\n\
                     a single mmap-able image file; info: validate an image\n\
                     and print its header and section table; verify: prove\n\
                     every cross-section invariant of an image (CSR offsets,\n\
                     shard partitioning, catalog, checksum) on the raw bytes\n\
                     and report each violation with section + byte offset\n\
           demo      run on the paper's running example (Table III)\n\
         \n\
         notable flags:\n\
           --snapshot IMG  serve mine/topk/stats straight from a prepared\n\
                           snapshot image (mmap'ed, checksum-validated; no\n\
                           re-tokenizing or re-indexing on start)\n\
           --threads N     mine on N worker threads (default 1; the reported\n\
                           patterns are bit-identical to a sequential run)\n\
           --shards N      partition the store into N shards at sequence\n\
                           boundaries (balanced by event mass); mining output\n\
                           is bit-identical, per-shard indexes build in\n\
                           parallel, and snapshot build writes a v2 image\n\
                           whose shard subsets map independently\n\
           --format json   emit one JSON document with the MiningReport and\n\
                           the reported patterns instead of text output\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Options {
        let args: Vec<String> = tokens
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        parse_args(&args).expect("parse ok").expect("not --help")
    }

    #[test]
    fn default_mode_is_closed_mining() {
        let options = parse(&["--demo", "--min-sup", "3"]);
        assert_eq!(options.mode, Mode::Closed);
        assert_eq!(options.min_sup, 3);
        assert!(options.demo);
    }

    #[test]
    fn topk_subcommand_sets_ranking_defaults() {
        let options = parse(&["topk", "--demo", "-k", "7", "--max-gap", "2"]);
        assert_eq!(options.top_k, Some(7));
        assert_eq!(options.min_len, Some(2));
        assert_eq!(options.max_gap, Some(2));
        assert_eq!(options.constraints(), GapConstraints::max_gap(2));
    }

    #[test]
    fn constraint_flags_compose() {
        let options = parse(&[
            "--demo",
            "--min-gap",
            "1",
            "--max-gap",
            "4",
            "--max-window",
            "9",
        ]);
        let constraints = options.constraints();
        assert_eq!(constraints.min_gap, 1);
        assert_eq!(constraints.max_gap, Some(4));
        assert_eq!(constraints.max_window, Some(9));
    }

    #[test]
    fn mode_flag_parses_every_variant() {
        for (name, mode) in [
            ("all", Mode::All),
            ("closed", Mode::Closed),
            ("maximal", Mode::Maximal),
            ("topk", Mode::TopK),
        ] {
            let options = parse(&["--demo", "--mode", name]);
            assert_eq!(options.mode, mode);
        }
    }

    #[test]
    fn all_and_closed_remain_mutually_exclusive() {
        let args: Vec<String> = ["--demo", "--all", "--closed"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn demo_subcommand_equals_demo_flag() {
        assert!(parse(&["demo"]).demo);
        assert!(parse(&["--demo"]).demo);
    }

    #[test]
    fn stats_subcommand_and_flag_parse() {
        assert!(parse(&["stats", "--demo"]).stats_only);
        assert!(parse(&["--demo", "--stats"]).stats_only);
        assert!(!parse(&["--demo"]).stats_only);
    }

    #[test]
    fn threads_flag_parses_and_produces_identical_output() {
        let options = parse(&["--demo", "--min-sup", "2", "--threads", "4"]);
        assert_eq!(options.threads, 4);
        let sequential = parse(&["--demo", "--min-sup", "2"]);
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        assert_eq!(
            options.miner(&db).run().patterns,
            sequential.miner(&db).run().patterns
        );
    }

    #[test]
    fn topk_accepts_threads_too() {
        let options = parse(&["topk", "--demo", "-k", "5", "--threads", "2"]);
        assert_eq!(options.threads, 2);
        assert_eq!(options.top_k, Some(5));
    }

    #[test]
    fn format_json_selects_json_output_without_clobbering_input_format() {
        let options = parse(&["--demo", "--format", "json"]);
        assert!(options.json_output);
        assert_eq!(options.format, Format::Tokens);
        let options = parse(&["--input", "x", "--format", "spmf", "--format", "json"]);
        assert!(options.json_output);
        assert_eq!(options.format, Format::Spmf);
    }

    #[test]
    fn stream_and_json_output_are_mutually_exclusive() {
        let args: Vec<String> = ["--demo", "--stream", "--format", "json"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn snapshot_subcommands_parse_and_validate() {
        let build = parse(&["snapshot", "build", "--input", "x", "--out", "y"]);
        assert_eq!(build.snapshot_cmd, Some(SnapshotCmd::Build));
        assert_eq!(build.out, Some(PathBuf::from("y")));

        let info = parse(&["snapshot", "info", "--snapshot", "z"]);
        assert_eq!(info.snapshot_cmd, Some(SnapshotCmd::Info));
        assert_eq!(info.snapshot, Some(PathBuf::from("z")));

        let verify = parse(&["snapshot", "verify", "--snapshot", "z"]);
        assert_eq!(verify.snapshot_cmd, Some(SnapshotCmd::Verify));
        assert_eq!(verify.snapshot, Some(PathBuf::from("z")));

        let fail = |tokens: &[&str]| {
            let args: Vec<String> = tokens
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            assert!(parse_args(&args).is_err(), "{tokens:?} should fail");
        };
        fail(&["snapshot"]);
        fail(&["snapshot", "check"]); // unknown subcommand
        fail(&["snapshot", "build", "--input", "x"]); // missing --out
        fail(&["snapshot", "info"]); // missing --snapshot
        fail(&["snapshot", "verify"]); // missing --snapshot
        fail(&["--input", "x", "--snapshot", "y"]); // mutually exclusive
    }

    #[test]
    fn shards_flag_parses_and_keeps_output_identical() {
        let options = parse(&["--demo", "--min-sup", "2", "--shards", "3"]);
        assert_eq!(options.shards, 3);
        assert_eq!(parse(&["--demo"]).shards, 1);
        let flat = parse(&["--demo", "--min-sup", "2"]);
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let sharded = PreparedDb::from_database_sharded(db.clone(), 2, 1);
        assert_eq!(
            options.apply(sharded.miner()).run().patterns,
            flat.miner(&db).run().patterns,
            "sharded CLI output diverges from flat"
        );
    }

    #[test]
    fn sharded_snapshot_build_source_round_trips() {
        let dir = std::env::temp_dir();
        let image = dir.join(format!("rgs-cli-shards-{}.snap", std::process::id()));
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD", "AABB"]);
        PreparedDb::from_database_sharded(db.clone(), 2, 1)
            .write_snapshot(&image)
            .expect("write");
        let options = parse(&["--snapshot", image.to_str().unwrap(), "--min-sup", "2"]);
        let source = load_source(&options).unwrap_or_else(|_| panic!("snapshot loads"));
        let Loaded::Prepared(ref prepared) = source else {
            panic!("snapshot source must be prepared");
        };
        assert_eq!(prepared.shard_count(), 2);
        assert_eq!(
            source.miner(&options).run().patterns,
            options.miner(&db).run().patterns
        );
        std::fs::remove_file(&image).ok();
    }

    #[test]
    fn snapshot_build_then_mine_round_trips() {
        let dir = std::env::temp_dir();
        let image = dir.join(format!("rgs-cli-test-{}.snap", std::process::id()));
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        PreparedDb::new(&db).write_snapshot(&image).expect("write");

        let options = parse(&["--snapshot", image.to_str().unwrap(), "--min-sup", "2"]);
        let source = load_source(&options).unwrap_or_else(|_| panic!("snapshot loads"));
        assert!(matches!(source, Loaded::Prepared(_)));
        let from_image = source.miner(&options).run();
        let fresh = options.miner(&db).run();
        assert_eq!(from_image.patterns, fresh.patterns);
        std::fs::remove_file(&image).ok();
    }

    #[test]
    fn batch_subcommand_requires_a_request_file() {
        let fail = |tokens: &[&str]| {
            let args: Vec<String> = tokens
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            assert!(parse_args(&args).is_err(), "{tokens:?} should fail");
        };
        fail(&["batch", "--demo"]); // missing --requests
        fail(&["--demo", "--requests", "x"]); // --requests without batch

        let options = parse(&["batch", "--demo", "--requests", "reqs.jsonl"]);
        assert!(options.batch);
        assert_eq!(options.requests, Some(PathBuf::from("reqs.jsonl")));
    }

    #[test]
    fn batch_lines_parse_the_mine_body_shape() {
        let line = parse_batch_line(
            r#"{"min_sup": 3, "mode": "top-k", "max_gap": 2, "top_k": 5, "timeout_ms": 250}"#,
        )
        .expect("full line");
        assert_eq!(line.request.min_sup, 3);
        assert_eq!(line.request.mode, Mode::TopK);
        assert_eq!(line.request.constraints.max_gap, Some(2));
        assert_eq!(line.request.top_k, Some(5));
        assert_eq!(line.timeout_ms, Some(250));

        let defaults = parse_batch_line("{}").expect("empty object");
        assert_eq!(defaults.request, MiningRequest::default());
        assert_eq!(defaults.timeout_ms, None);

        let nulls = parse_batch_line(r#"{"max_gap": null, "timeout_ms": null}"#).expect("nulls");
        assert_eq!(nulls.request.constraints.max_gap, None);
        assert_eq!(nulls.timeout_ms, None);

        for (bad, needle) in [
            ("[1]", "JSON object"),
            (r#"{"min_supp": 3}"#, "min_supp"),
            (r#"{"mode": "openish"}"#, "openish"),
            (r#"{"min_sup": null}"#, "non-negative"),
            ("{not json", "invalid JSON"),
        ] {
            let err = parse_batch_line(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad} -> {err}");
        }
    }

    #[test]
    fn batch_files_skip_blanks_and_comments_and_number_errors() {
        let lines = parse_batch_file(
            "# sweep\n\n{\"min_sup\": 4}\n  {\"min_sup\": 3, \"mode\": \"all\"}\n",
        )
        .expect("file parses");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].request.min_sup, 4);
        assert_eq!(lines[1].request.mode, Mode::All);

        let err = parse_batch_file("{}\n{oops\n").expect_err("bad line");
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(parse_batch_file("# only comments\n").is_err());
    }

    #[test]
    fn batch_answers_match_solo_runs_on_the_demo_database() {
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let lines = parse_batch_file(
            "{\"min_sup\": 2}\n{\"min_sup\": 3}\n\
             {\"min_sup\": 2, \"mode\": \"all\", \"max_gap\": 1}\n\
             {\"min_sup\": 2, \"mode\": \"top-k\", \"top_k\": 4}\n",
        )
        .expect("file parses");
        let requests: Vec<MiningRequest> = lines.iter().map(|l| l.request.clone()).collect();
        let prepared = PreparedDb::new(&db);
        let results = prepared.batch(&requests);
        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(&results) {
            let solo = prepared.miner().with_request(request.clone()).run();
            assert_eq!(result.outcome.patterns, solo.patterns, "{request:?}");
            assert!(!result.cancelled);
        }
    }

    #[test]
    fn gap_constrained_topk_runs_end_to_end() {
        // The acceptance-path combination: topk + --max-gap on the demo db.
        let options = parse(&["topk", "--demo", "-k", "4", "--max-gap", "1"]);
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let outcome = options.miner(&db).run();
        assert!(outcome.len() <= 4);
        assert!(!outcome.is_empty());
        for w in outcome.patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }
}
