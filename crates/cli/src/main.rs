//! `rgs-mine` — command-line miner for (closed) repetitive gapped
//! subsequences, built on the unified `Miner` engine.
//!
//! ```text
//! rgs-mine [mine] --input FILE [--format tokens|spmf|chars|json] --min-sup K
//!          [--mode all|closed|maximal] [--closed] [--all] [--maximal-mode]
//!          [--min-gap G] [--max-gap G] [--max-window W]
//!          [--top-k K] [--min-len L] [--max-len L] [--max-patterns N]
//!          [--threads N] [--top T] [--density R] [--maximal] [--stream]
//! rgs-mine topk  --input FILE -k K [--min-sup FLOOR] [--threads N] [...]
//! rgs-mine stats --input FILE [--format tokens|spmf|chars]
//! rgs-mine demo  [--min-sup K] [--mode ...]
//! ```
//!
//! The `stats` subcommand prints the dataset summary (rows, events,
//! alphabet size, lengths) together with the memory footprint of the
//! columnar store and the CSR inverted index, so store-size regressions are
//! visible without a profiler. The `topk` subcommand ranks the best `k`
//! closed patterns and composes with the gap/window constraint flags — gap-constrained top-k mining from
//! the command line. `--stream` prints patterns incrementally through a
//! `PatternSink` instead of materializing the result first. `--threads N`
//! mines on N worker threads (bit-identical output), and `--format json`
//! switches the output to a JSON document containing the `MiningReport`
//! and the reported patterns.

use std::ops::ControlFlow;
use std::path::PathBuf;
use std::process::ExitCode;

use rgs_core::{
    json, postprocess, sort_patterns_for_report, CollectSink, GapConstraints, MinedPattern, Miner,
    Mode, PostProcessConfig,
};
use seqdb::{io as seqio, SequenceDatabase};

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    input: Option<PathBuf>,
    format: Format,
    min_sup: u64,
    mode: Mode,
    top_k: Option<usize>,
    min_len: Option<usize>,
    min_gap: Option<u32>,
    max_gap: Option<u32>,
    max_window: Option<u32>,
    max_len: Option<usize>,
    max_patterns: Option<usize>,
    threads: usize,
    top: usize,
    density: Option<f64>,
    maximal_filter: bool,
    stream: bool,
    json_output: bool,
    demo: bool,
    stats_only: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Tokens,
    Spmf,
    Chars,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            input: None,
            format: Format::Tokens,
            min_sup: 2,
            mode: Mode::Closed,
            top_k: None,
            min_len: None,
            min_gap: None,
            max_gap: None,
            max_window: None,
            max_len: None,
            max_patterns: None,
            threads: 1,
            top: 20,
            density: None,
            maximal_filter: false,
            stream: false,
            json_output: false,
            demo: false,
            stats_only: false,
        }
    }
}

impl Options {
    fn constraints(&self) -> GapConstraints {
        let mut constraints = GapConstraints::unbounded();
        if let Some(g) = self.min_gap {
            constraints = constraints.with_min_gap(g);
        }
        if let Some(g) = self.max_gap {
            constraints = constraints.with_max_gap(g);
        }
        if let Some(w) = self.max_window {
            constraints = constraints.with_max_window(w);
        }
        constraints
    }

    fn miner<'a>(&self, db: &'a SequenceDatabase) -> Miner<'a> {
        let mut miner = Miner::new(db)
            .min_sup(self.min_sup)
            .mode(self.mode)
            .constraints(self.constraints());
        if let Some(k) = self.top_k {
            miner = miner.top_k(k);
        }
        if let Some(len) = self.min_len {
            miner = miner.min_len(len);
        }
        if let Some(len) = self.max_len {
            miner = miner.max_pattern_length(len);
        }
        if let Some(cap) = self.max_patterns {
            miner = miner.max_patterns(cap);
        }
        miner.threads(self.threads)
    }

    fn mode_label(&self) -> String {
        let base = match self.mode {
            Mode::All => "frequent",
            Mode::Closed => "closed",
            Mode::Maximal => "maximal",
            Mode::TopK => "top-k closed",
        };
        if self.top_k.is_some() && self.mode != Mode::TopK {
            format!("top-{} {base}", self.top_k.unwrap_or(0))
        } else {
            base.to_owned()
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    let db = if options.demo {
        // The running example of the paper (Table III).
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    } else {
        let Some(path) = &options.input else {
            eprintln!("error: --input FILE or the demo subcommand is required");
            print_usage();
            return ExitCode::FAILURE;
        };
        let loaded = match options.format {
            Format::Tokens => seqio::read_tokens_file(path),
            Format::Spmf => seqio::read_spmf_file(path),
            Format::Chars => seqio::read_chars_file(path),
        };
        match loaded {
            Ok(db) => db,
            Err(err) => {
                eprintln!("error: cannot read {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    };

    if options.stats_only {
        return run_stats(&db);
    }

    eprintln!("# dataset: {}", db.stats().summary());
    let constraints = options.constraints();
    if !constraints.is_unbounded() {
        eprintln!("# constraints: {}", constraints.describe());
    }

    if options.json_output {
        return run_json(&db, &options);
    }
    if options.stream {
        return run_streaming(&db, &options);
    }

    let mut outcome = options.miner(&db).run();
    eprintln!(
        "# {} {} patterns mined in {:.3}s (visited {} nodes{})",
        outcome.len(),
        options.mode_label(),
        outcome.stats.elapsed_seconds,
        outcome.stats.visited,
        if outcome.truncated { ", TRUNCATED" } else { "" },
    );

    let patterns = if options.density.is_some() || options.maximal_filter {
        let pp = PostProcessConfig {
            min_density: options.density.unwrap_or(0.0),
            maximal_only: options.maximal_filter,
            rank_by_length: true,
        };
        postprocess(&outcome.patterns, &pp)
    } else {
        outcome.sort_for_report();
        outcome.patterns.clone()
    };

    for mined in patterns.iter().take(options.top) {
        print_pattern(&db, mined);
    }
    ExitCode::SUCCESS
}

/// `stats` subcommand: dataset summary plus the memory footprint of the
/// columnar layers (flat event store, CSR inverted index), so store-size
/// regressions show up in plain numbers instead of a profiler.
fn run_stats(db: &SequenceDatabase) -> ExitCode {
    let stats = db.stats();
    let index = db.inverted_index();
    let index_bytes = index.heap_bytes();
    println!("sequences:             {}", stats.num_sequences);
    println!("events (alphabet):     {}", stats.num_events);
    println!("total length:          {}", stats.total_length);
    println!(
        "sequence length:       min {} / avg {:.2} / median {:.1} / max {}",
        stats.min_length, stats.avg_length, stats.median_length, stats.max_length
    );
    println!("max event occurrences: {}", stats.max_event_occurrences);
    println!("avg event occurrences: {:.2}", stats.avg_event_occurrences);
    println!("store bytes (CSR):     {}", stats.store_bytes);
    println!("index bytes (CSR):     {index_bytes}");
    if stats.total_length > 0 {
        println!(
            "bytes per event:       {:.2} store + {:.2} index",
            stats.store_bytes as f64 / stats.total_length as f64,
            index_bytes as f64 / stats.total_length as f64
        );
    }
    ExitCode::SUCCESS
}

/// `--format json`: one JSON document with the `MiningReport` (search
/// statistics, truncation/cancellation flags) and the reported patterns,
/// serialized with the workspace's hand-rolled JSON writer. The `--top`,
/// `--density` and `--maximal` report filters apply as in text mode.
fn run_json(db: &SequenceDatabase, options: &Options) -> ExitCode {
    let mut collect = CollectSink::new();
    let report = options.miner(db).run_with_sink(&mut collect);
    let mut patterns = collect.into_patterns();
    if options.density.is_some() || options.maximal_filter {
        let pp = PostProcessConfig {
            min_density: options.density.unwrap_or(0.0),
            maximal_only: options.maximal_filter,
            rank_by_length: true,
        };
        patterns = postprocess(&patterns, &pp);
    } else {
        sort_patterns_for_report(&mut patterns);
    }
    patterns.truncate(options.top);

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": {},\n",
        json::escape(&options.mode_label())
    ));
    out.push_str(&format!("  \"report\": {},\n", report.to_json()));
    out.push_str("  \"patterns\": [\n");
    for (i, mined) in patterns.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pattern\": {}, \"support\": {}, \"len\": {}}}{}\n",
            json::escape(&mined.pattern.render_with(db.catalog(), " ")),
            mined.support,
            mined.pattern.len(),
            if i + 1 < patterns.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    println!("{out}");
    ExitCode::SUCCESS
}

/// `--stream`: patterns are printed the moment the engine finds them,
/// bounded by `--top` through sink cancellation.
fn run_streaming(db: &SequenceDatabase, options: &Options) -> ExitCode {
    let limit = options.top;
    if limit == 0 {
        eprintln!("# streamed 0 {} patterns (--top 0)", options.mode_label());
        return ExitCode::SUCCESS;
    }
    let mut printed = 0usize;
    let report = options.miner(db).run_with_sink(&mut |mined: MinedPattern| {
        if printed >= limit {
            return ControlFlow::Break(());
        }
        print_pattern(db, &mined);
        printed += 1;
        if printed >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    eprintln!(
        "# streamed {} {} patterns in {:.3}s (visited {} nodes{}{})",
        report.emitted,
        options.mode_label(),
        report.stats.elapsed_seconds,
        report.stats.visited,
        if report.truncated { ", TRUNCATED" } else { "" },
        if report.cancelled {
            ", cancelled at --top limit"
        } else {
            ""
        },
    );
    ExitCode::SUCCESS
}

fn print_pattern(db: &SequenceDatabase, mined: &MinedPattern) {
    println!(
        "{}\tsup={}\tlen={}",
        mined.pattern.render_with(db.catalog(), " "),
        mined.support,
        mined.pattern.len()
    );
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options::default();
    let mut explicit_all = false;
    let mut explicit_closed = false;
    let mut i = 0;

    // Optional leading subcommand.
    match args.first().map(String::as_str) {
        Some("mine") => i = 1,
        Some("topk") => {
            options.mode = Mode::Closed;
            options.top_k = Some(10);
            options.min_len = Some(2);
            options.min_sup = 1;
            i = 1;
        }
        Some("stats") => {
            options.stats_only = true;
            i = 1;
        }
        Some("demo") => {
            options.demo = true;
            i = 1;
        }
        _ => {}
    }

    while i < args.len() {
        let arg = args[i].clone();
        let next_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        let parse_num = |value: String, what: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("{what} must be an integer"))
        };
        match args[i].as_str() {
            "--help" | "-h" => {
                print_usage();
                return Ok(None);
            }
            "--input" | "-i" => options.input = Some(PathBuf::from(next_value(&mut i)?)),
            "--format" | "-f" => match next_value(&mut i)?.as_str() {
                "tokens" => options.format = Format::Tokens,
                "spmf" => options.format = Format::Spmf,
                "chars" => options.format = Format::Chars,
                // Output selector: serialize the MiningReport and the
                // patterns as one JSON document.
                "json" => options.json_output = true,
                other => return Err(format!("unknown format '{other}'")),
            },
            "--min-sup" | "-s" => {
                options.min_sup = parse_num(next_value(&mut i)?, "min-sup")?;
            }
            "--mode" => {
                options.mode = match next_value(&mut i)?.as_str() {
                    "all" => Mode::All,
                    "closed" => Mode::Closed,
                    "maximal" => Mode::Maximal,
                    "topk" => Mode::TopK,
                    other => return Err(format!("unknown mode '{other}'")),
                }
            }
            "--closed" => {
                options.mode = Mode::Closed;
                explicit_closed = true;
            }
            "--all" => {
                options.mode = Mode::All;
                explicit_all = true;
            }
            "--maximal-mode" => options.mode = Mode::Maximal,
            "--top-k" | "-k" => {
                options.top_k = Some(parse_num(next_value(&mut i)?, "top-k")? as usize);
            }
            "--min-len" => {
                options.min_len = Some(parse_num(next_value(&mut i)?, "min-len")? as usize);
            }
            "--min-gap" => {
                options.min_gap = Some(parse_num(next_value(&mut i)?, "min-gap")? as u32);
            }
            "--max-gap" => {
                options.max_gap = Some(parse_num(next_value(&mut i)?, "max-gap")? as u32);
            }
            "--max-window" => {
                options.max_window = Some(parse_num(next_value(&mut i)?, "max-window")? as u32);
            }
            "--max-len" => {
                options.max_len = Some(parse_num(next_value(&mut i)?, "max-len")? as usize);
            }
            "--max-patterns" => {
                options.max_patterns =
                    Some(parse_num(next_value(&mut i)?, "max-patterns")? as usize);
            }
            "--threads" | "-j" => {
                options.threads = parse_num(next_value(&mut i)?, "threads")?.max(1) as usize;
            }
            "--top" => {
                options.top = parse_num(next_value(&mut i)?, "top")? as usize;
            }
            "--density" => {
                options.density = Some(
                    next_value(&mut i)?
                        .parse()
                        .map_err(|_| "density must be a number".to_owned())?,
                )
            }
            "--maximal" => options.maximal_filter = true,
            "--stream" => options.stream = true,
            "--stats" => options.stats_only = true,
            "--demo" => options.demo = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if explicit_all && explicit_closed {
        return Err("--all and --closed are mutually exclusive".to_owned());
    }
    if options.stream && options.json_output {
        return Err(
            "--stream and --format json are mutually exclusive (JSON output \
                    materializes the full report)"
                .to_owned(),
        );
    }
    Ok(Some(options))
}

fn print_usage() {
    println!(
        "rgs-mine: mine (closed) repetitive gapped subsequences\n\
         \n\
         usage:\n\
           rgs-mine [mine] --input FILE [--format tokens|spmf|chars|json] --min-sup K\n\
                    [--mode all|closed|maximal] [--closed|--all|--maximal-mode]\n\
                    [--min-gap G] [--max-gap G] [--max-window W]\n\
                    [--top-k K] [--min-len L] [--max-len L] [--max-patterns N]\n\
                    [--threads N] [--top T] [--density R] [--maximal] [--stream]\n\
           rgs-mine topk --input FILE -k K [--min-sup FLOOR] [--threads N] ...\n\
           rgs-mine stats --input FILE [--format tokens|spmf|chars]\n\
           rgs-mine demo [--min-sup K] [--mode ...]\n\
         \n\
         subcommands:\n\
           mine   (default) mine the requested pattern family\n\
           topk   rank the k best closed patterns (composes with gap/window\n\
                  constraints: gap-constrained top-k mining)\n\
           stats  print dataset statistics and the memory footprint of the\n\
                  columnar store and CSR inverted index\n\
           demo   run on the paper's running example (Table III)\n\
         \n\
         notable flags:\n\
           --threads N     mine on N worker threads (default 1; the reported\n\
                           patterns are bit-identical to a sequential run)\n\
           --format json   emit one JSON document with the MiningReport and\n\
                           the reported patterns instead of text output\n"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Options {
        let args: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        parse_args(&args).expect("parse ok").expect("not --help")
    }

    #[test]
    fn default_mode_is_closed_mining() {
        let options = parse(&["--demo", "--min-sup", "3"]);
        assert_eq!(options.mode, Mode::Closed);
        assert_eq!(options.min_sup, 3);
        assert!(options.demo);
    }

    #[test]
    fn topk_subcommand_sets_ranking_defaults() {
        let options = parse(&["topk", "--demo", "-k", "7", "--max-gap", "2"]);
        assert_eq!(options.top_k, Some(7));
        assert_eq!(options.min_len, Some(2));
        assert_eq!(options.max_gap, Some(2));
        assert_eq!(options.constraints(), GapConstraints::max_gap(2));
    }

    #[test]
    fn constraint_flags_compose() {
        let options = parse(&[
            "--demo",
            "--min-gap",
            "1",
            "--max-gap",
            "4",
            "--max-window",
            "9",
        ]);
        let constraints = options.constraints();
        assert_eq!(constraints.min_gap, 1);
        assert_eq!(constraints.max_gap, Some(4));
        assert_eq!(constraints.max_window, Some(9));
    }

    #[test]
    fn mode_flag_parses_every_variant() {
        for (name, mode) in [
            ("all", Mode::All),
            ("closed", Mode::Closed),
            ("maximal", Mode::Maximal),
            ("topk", Mode::TopK),
        ] {
            let options = parse(&["--demo", "--mode", name]);
            assert_eq!(options.mode, mode);
        }
    }

    #[test]
    fn all_and_closed_remain_mutually_exclusive() {
        let args: Vec<String> = ["--demo", "--all", "--closed"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn demo_subcommand_equals_demo_flag() {
        assert!(parse(&["demo"]).demo);
        assert!(parse(&["--demo"]).demo);
    }

    #[test]
    fn stats_subcommand_and_flag_parse() {
        assert!(parse(&["stats", "--demo"]).stats_only);
        assert!(parse(&["--demo", "--stats"]).stats_only);
        assert!(!parse(&["--demo"]).stats_only);
    }

    #[test]
    fn threads_flag_parses_and_produces_identical_output() {
        let options = parse(&["--demo", "--min-sup", "2", "--threads", "4"]);
        assert_eq!(options.threads, 4);
        let sequential = parse(&["--demo", "--min-sup", "2"]);
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        assert_eq!(
            options.miner(&db).run().patterns,
            sequential.miner(&db).run().patterns
        );
    }

    #[test]
    fn topk_accepts_threads_too() {
        let options = parse(&["topk", "--demo", "-k", "5", "--threads", "2"]);
        assert_eq!(options.threads, 2);
        assert_eq!(options.top_k, Some(5));
    }

    #[test]
    fn format_json_selects_json_output_without_clobbering_input_format() {
        let options = parse(&["--demo", "--format", "json"]);
        assert!(options.json_output);
        assert_eq!(options.format, Format::Tokens);
        let options = parse(&["--input", "x", "--format", "spmf", "--format", "json"]);
        assert!(options.json_output);
        assert_eq!(options.format, Format::Spmf);
    }

    #[test]
    fn stream_and_json_output_are_mutually_exclusive() {
        let args: Vec<String> = ["--demo", "--stream", "--format", "json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn gap_constrained_topk_runs_end_to_end() {
        // The acceptance-path combination: topk + --max-gap on the demo db.
        let options = parse(&["topk", "--demo", "-k", "4", "--max-gap", "1"]);
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let outcome = options.miner(&db).run();
        assert!(outcome.len() <= 4);
        assert!(!outcome.is_empty());
        for w in outcome.patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }
}
