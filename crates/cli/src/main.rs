//! `rgs-mine` — command-line miner for (closed) repetitive gapped
//! subsequences.
//!
//! ```text
//! rgs-mine --input FILE [--format tokens|spmf|chars] --min-sup K
//!          [--closed] [--all] [--max-len L] [--max-patterns N]
//!          [--top T] [--density R] [--maximal]
//! rgs-mine --demo [--min-sup K] [--closed]
//! ```
//!
//! The miner loads a sequence database from a text file (one sequence per
//! line), runs GSgrow or CloGSgrow, optionally post-processes the result
//! (density + maximality filters, as in the paper's case study) and prints
//! the top patterns with their repetitive supports.

use std::path::PathBuf;
use std::process::ExitCode;

use rgs_core::{mine_all, mine_closed, postprocess, MiningConfig, PostProcessConfig};
use seqdb::{io as seqio, SequenceDatabase};

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    input: Option<PathBuf>,
    format: Format,
    min_sup: u64,
    closed: bool,
    max_len: Option<usize>,
    max_patterns: Option<usize>,
    top: usize,
    density: Option<f64>,
    maximal: bool,
    demo: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Tokens,
    Spmf,
    Chars,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            input: None,
            format: Format::Tokens,
            min_sup: 2,
            closed: true,
            max_len: None,
            max_patterns: None,
            top: 20,
            density: None,
            maximal: false,
            demo: false,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    let db = if options.demo {
        // The running example of the paper (Table III).
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    } else {
        let Some(path) = &options.input else {
            eprintln!("error: --input FILE or --demo is required");
            print_usage();
            return ExitCode::FAILURE;
        };
        let loaded = match options.format {
            Format::Tokens => seqio::read_tokens_file(path),
            Format::Spmf => seqio::read_spmf_file(path),
            Format::Chars => seqio::read_chars_file(path),
        };
        match loaded {
            Ok(db) => db,
            Err(err) => {
                eprintln!("error: cannot read {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    };

    eprintln!("# dataset: {}", db.stats().summary());

    let mut config = MiningConfig::new(options.min_sup);
    if let Some(len) = options.max_len {
        config = config.with_max_pattern_length(len);
    }
    if let Some(cap) = options.max_patterns {
        config = config.with_max_patterns(cap);
    }

    let mut outcome = if options.closed {
        mine_closed(&db, &config)
    } else {
        mine_all(&db, &config)
    };
    eprintln!(
        "# {} {} patterns mined in {:.3}s (visited {} nodes{})",
        outcome.len(),
        if options.closed { "closed" } else { "frequent" },
        outcome.stats.elapsed_seconds,
        outcome.stats.visited,
        if outcome.truncated { ", TRUNCATED" } else { "" },
    );

    let patterns = if options.density.is_some() || options.maximal {
        let pp = PostProcessConfig {
            min_density: options.density.unwrap_or(0.0),
            maximal_only: options.maximal,
            rank_by_length: true,
        };
        postprocess(&outcome.patterns, &pp)
    } else {
        outcome.sort_for_report();
        outcome.patterns.clone()
    };

    for mined in patterns.iter().take(options.top) {
        println!(
            "{}\tsup={}\tlen={}",
            mined.pattern.render_with(db.catalog(), " "),
            mined.support,
            mined.pattern.len()
        );
    }
    ExitCode::SUCCESS
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options::default();
    let mut explicit_all = false;
    let mut explicit_closed = false;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let next_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match args[i].as_str() {
            "--help" | "-h" => {
                print_usage();
                return Ok(None);
            }
            "--input" | "-i" => options.input = Some(PathBuf::from(next_value(&mut i)?)),
            "--format" | "-f" => {
                options.format = match next_value(&mut i)?.as_str() {
                    "tokens" => Format::Tokens,
                    "spmf" => Format::Spmf,
                    "chars" => Format::Chars,
                    other => return Err(format!("unknown format '{other}'")),
                }
            }
            "--min-sup" | "-s" => {
                options.min_sup = next_value(&mut i)?
                    .parse()
                    .map_err(|_| "min-sup must be an integer".to_owned())?
            }
            "--closed" => {
                options.closed = true;
                explicit_closed = true;
            }
            "--all" => {
                options.closed = false;
                explicit_all = true;
            }
            "--max-len" => {
                options.max_len = Some(
                    next_value(&mut i)?
                        .parse()
                        .map_err(|_| "max-len must be an integer".to_owned())?,
                )
            }
            "--max-patterns" => {
                options.max_patterns = Some(
                    next_value(&mut i)?
                        .parse()
                        .map_err(|_| "max-patterns must be an integer".to_owned())?,
                )
            }
            "--top" => {
                options.top = next_value(&mut i)?
                    .parse()
                    .map_err(|_| "top must be an integer".to_owned())?
            }
            "--density" => {
                options.density = Some(
                    next_value(&mut i)?
                        .parse()
                        .map_err(|_| "density must be a number".to_owned())?,
                )
            }
            "--maximal" => options.maximal = true,
            "--demo" => options.demo = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if explicit_all && explicit_closed {
        return Err("--all and --closed are mutually exclusive".to_owned());
    }
    Ok(Some(options))
}

fn print_usage() {
    println!(
        "rgs-mine: mine (closed) repetitive gapped subsequences\n\
         \n\
         usage:\n\
           rgs-mine --input FILE [--format tokens|spmf|chars] --min-sup K [--closed|--all]\n\
                    [--max-len L] [--max-patterns N] [--top T] [--density R] [--maximal]\n\
           rgs-mine --demo [--min-sup K]\n"
    );
}
