//! Owned-or-mapped storage: the [`SharedSlice`] backing every columnar
//! arena in this crate.
//!
//! A [`SharedSlice<T>`] is either a plain owned `Vec<T>` (the result of
//! building a database in memory) or a borrowed window into a reference-
//! counted snapshot image (the result of [`snapshot`](crate::snapshot)
//! loading — typically an `mmap`ed file). Reads go through `Deref<Target =
//! [T]>` either way, so the mining stack is oblivious to where the bytes
//! live: a store reconstructed from a snapshot hands out the **same**
//! `&[u32]` / `&[EventId]` slices as one built from text, with zero copies.
//!
//! Mutation ([`SharedSlice::to_mut`]) is copy-on-write: a mapped slice is
//! materialized into an owned `Vec` first. Builders always start owned, so
//! in practice the copy only happens if someone appends to a database that
//! was opened from a snapshot.

// The mapped variant stores a raw pointer into memory owned by the
// reference-counted image; this is the one place (besides `snapshot`)
// where seqdb needs `unsafe`. Safety arguments are local and documented.
#![allow(unsafe_code)]

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::catalog::EventId;

/// A contiguous run of `T`s that is either owned (a `Vec<T>`) or a
/// zero-copy window into a shared, immutable allocation (a snapshot image).
///
/// Cloning is cheap for mapped slices (one `Arc` bump) and a deep copy for
/// owned ones. Equality compares contents, so two stores are equal exactly
/// when they hold the same data, regardless of where the bytes live.
pub struct SharedSlice<T: Copy + 'static> {
    inner: Inner<T>,
}

enum Inner<T: Copy> {
    /// Heap-owned storage, the product of in-memory building.
    Owned(Vec<T>),
    /// A window into an immutable allocation kept alive by `_owner`
    /// (in practice an `Arc<SnapshotImage>`). Invariants upheld by the
    /// constructor: `ptr` is aligned for `T`, valid for `len` elements,
    /// and the memory is never written for the owner's whole lifetime.
    Mapped {
        _owner: Arc<dyn Any + Send + Sync>,
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: the mapped variant points into memory that is immutable and kept
// alive by the `Arc` owner, so sharing it across threads is no different
// from sharing an `Arc<[T]>`. `T: Send + Sync` carries over from the data.
unsafe impl<T: Copy + Send + Sync> Send for SharedSlice<T> {}
// SAFETY: same argument as `Send` above — shared access to immutable memory.
unsafe impl<T: Copy + Send + Sync> Sync for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    /// Wraps a window into `owner`'s allocation without copying.
    ///
    /// # Safety
    ///
    /// `ptr` must be aligned for `T` and valid for reads of `len` elements
    /// for as long as `owner` is alive, and the pointed-to memory must never
    /// be mutated. The snapshot loader is the only caller; it validates
    /// bounds and alignment against the image header before constructing.
    pub(crate) unsafe fn from_raw_parts(
        owner: Arc<dyn Any + Send + Sync>,
        ptr: *const T,
        len: usize,
    ) -> Self {
        Self {
            inner: Inner::Mapped {
                _owner: owner,
                ptr,
                len,
            },
        }
    }

    /// Returns `true` when this slice borrows a snapshot image rather than
    /// owning its storage.
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }

    /// Mutable access to the underlying `Vec`, materializing a mapped slice
    /// into owned storage first (copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if self.is_mapped() {
            self.inner = Inner::Owned(self.as_slice().to_vec());
        }
        match &mut self.inner {
            Inner::Owned(vec) => vec,
            Inner::Mapped { .. } => unreachable!("mapped slice was just materialized"),
        }
    }

    /// The elements as a plain slice (same as `Deref`).
    pub fn as_slice(&self) -> &[T] {
        self
    }
}

impl<T: Copy + Send + Sync + 'static> SharedSlice<T> {
    /// Promotes owned storage into shared (`Arc`-owned) storage so that any
    /// number of [`SharedSlice::window`]s can alias it without copying.
    ///
    /// The `Vec` is moved into an `Arc` — no element is copied — and this
    /// slice becomes a full-range window over it. Mapped slices (snapshot
    /// windows or already-promoted slices) are left untouched. This is the
    /// preparation step behind zero-copy sharding: promote the flat arena
    /// once, then hand out per-shard windows that are plain `Arc` bumps.
    pub fn share(&mut self) {
        if self.is_mapped() {
            return;
        }
        let vec = match std::mem::replace(&mut self.inner, Inner::Owned(Vec::new())) {
            Inner::Owned(vec) => vec,
            Inner::Mapped { .. } => unreachable!("checked above"),
        };
        let backing: Arc<Vec<T>> = Arc::new(vec);
        let (ptr, len) = (backing.as_ptr(), backing.len());
        let owner: Arc<dyn Any + Send + Sync> = backing;
        // SAFETY: ptr/len point into the Vec now owned by the Arc we hold;
        // the buffer is never mutated again (every mutation path goes
        // through `to_mut`, which copies first) and lives as long as the
        // owner.
        self.inner = Inner::Mapped {
            _owner: owner,
            ptr,
            len,
        };
    }

    /// A sub-window `[range.start, range.end)` of this slice.
    ///
    /// For a mapped (shared) slice the window is **zero-copy**: it aliases
    /// the same allocation and co-owns it through the `Arc`. For an owned
    /// slice the range is copied into fresh owned storage — callers that
    /// want many zero-copy windows should [`SharedSlice::share`] first.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn window(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "window {range:?} out of bounds for a slice of length {}",
            self.len()
        );
        match &self.inner {
            Inner::Owned(vec) => vec[range].to_vec().into(),
            Inner::Mapped { _owner, ptr, .. } => Self {
                inner: Inner::Mapped {
                    _owner: Arc::clone(_owner),
                    // SAFETY: the range was bounds-checked against `len`, so
                    // the derived pointer stays inside the owner's
                    // allocation, which the cloned Arc keeps alive.
                    ptr: unsafe { ptr.add(range.start) },
                    len: range.end - range.start,
                },
            },
        }
    }
}

impl<T: Copy> Deref for SharedSlice<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(vec) => vec,
            // SAFETY: constructor invariants — aligned, in-bounds, immutable,
            // kept alive by `_owner` which this value holds.
            Inner::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: Copy> Default for SharedSlice<T> {
    fn default() -> Self {
        Vec::new().into()
    }
}

impl<T: Copy> From<Vec<T>> for SharedSlice<T> {
    fn from(vec: Vec<T>) -> Self {
        Self {
            inner: Inner::Owned(vec),
        }
    }
}

impl<T: Copy> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            Inner::Owned(vec) => Self {
                inner: Inner::Owned(vec.clone()),
            },
            Inner::Mapped { _owner, ptr, len } => Self {
                inner: Inner::Mapped {
                    _owner: Arc::clone(_owner),
                    ptr: *ptr,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Copy + PartialEq> PartialEq for SharedSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Eq> Eq for SharedSlice<T> {}

impl<T: Copy + fmt::Debug> fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedSlice")
            .field("mapped", &self.is_mapped())
            .field("data", &self.as_slice())
            .finish()
    }
}

impl<T: Copy> FromIterator<T> for SharedSlice<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        iter.into_iter().collect::<Vec<T>>().into()
    }
}

/// Reinterprets a slice of [`EventId`]s as their raw `u32` values.
///
/// Sound because `EventId` is a `#[repr(transparent)]` newtype over `u32`.
/// Used by the snapshot writer so the event arena serializes as one plain
/// `u32` section.
pub(crate) fn event_ids_as_u32s(ids: &[EventId]) -> &[u32] {
    // SAFETY: EventId is repr(transparent) over u32, so layout, size, and
    // alignment are identical and every bit pattern is valid for both.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<u32>(), ids.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_round_trip_and_equality() {
        let a: SharedSlice<u32> = vec![1, 2, 3].into();
        let b: SharedSlice<u32> = vec![1, 2, 3].into();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert!(!a.is_mapped());
        assert_eq!(a.clone(), a);
    }

    #[test]
    fn mapped_slice_reads_through_owner_and_copies_on_write() {
        let backing: Arc<Vec<u32>> = Arc::new(vec![7, 8, 9]);
        let owner: Arc<dyn Any + Send + Sync> = backing.clone();
        // SAFETY: `owner` keeps `backing` alive for the slice's lifetime and
        // the Vec's buffer is aligned, initialized, and never written again.
        let mut shared =
            unsafe { SharedSlice::from_raw_parts(owner, backing.as_ptr(), backing.len()) };
        assert!(shared.is_mapped());
        assert_eq!(&shared[..], &[7, 8, 9]);
        let cloned = shared.clone();
        assert!(cloned.is_mapped());
        shared.to_mut().push(10);
        assert!(!shared.is_mapped());
        assert_eq!(&shared[..], &[7, 8, 9, 10]);
        assert_eq!(&cloned[..], &[7, 8, 9]);
    }

    #[test]
    fn share_promotes_without_copying_and_windows_alias() {
        let mut slice: SharedSlice<u32> = vec![1, 2, 3, 4, 5].into();
        assert!(!slice.is_mapped());
        slice.share();
        assert!(slice.is_mapped());
        assert_eq!(&slice[..], &[1, 2, 3, 4, 5]);
        // Sharing twice is a no-op.
        slice.share();

        let window = slice.window(1..4);
        assert!(window.is_mapped());
        assert_eq!(&window[..], &[2, 3, 4]);
        // The window points into the same allocation.
        assert_eq!(window.as_slice().as_ptr(), slice[1..].as_ptr());
        // The window keeps the data alive after the parent is dropped.
        drop(slice);
        assert_eq!(&window[..], &[2, 3, 4]);

        let empty = window.window(3..3);
        assert!(empty.is_empty());
    }

    #[test]
    fn window_of_owned_storage_copies_the_range() {
        let slice: SharedSlice<u32> = vec![7, 8, 9].into();
        let window = slice.window(0..2);
        assert!(!window.is_mapped());
        assert_eq!(&window[..], &[7, 8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn window_rejects_out_of_bounds_ranges() {
        let slice: SharedSlice<u32> = vec![1, 2].into();
        let _ = slice.window(1..3);
    }

    #[test]
    fn event_id_cast_preserves_values() {
        let ids = [EventId(0), EventId(42), EventId(u32::MAX)];
        assert_eq!(event_ids_as_u32s(&ids), &[0, 42, u32::MAX]);
    }
}
