//! The *inverted event index* of §III-D, in columnar CSR layout.
//!
//! For each sequence `Si` and event `e`, the index stores the ordered list
//! `L_{e,Si} = { j | Si[j] = e }` of 1-based positions at which `e` occurs.
//! The `next(S, e, lowest)` subroutine of Algorithm 2 is then a single
//! binary search (`O(log L)`), exactly as prescribed by the paper.
//!
//! # Layout
//!
//! All position lists live in **one** flat `positions` arena; a CSR offsets
//! table with one slot per `(sequence, event)` pair marks where each list
//! begins and ends. A posting list is therefore a plain `&[u32]` slice into
//! the arena — zero pointer chasing, one cache line per short list, and the
//! whole index is two `Vec`s (compare the seed's `Vec<Vec<Vec<u32>>>`,
//! which paid one heap allocation and one pointer hop per non-empty list).

use crate::cast::{u32_to_usize, usize_to_u32};
use crate::catalog::EventId;
use crate::database::SequenceDatabase;
use crate::shared::SharedSlice;

/// Per-database inverted event index in CSR layout.
///
/// Slot `seq * num_events + event.index()` of the offsets table delimits the
/// sorted, 1-based position list of `event` in `seq` inside the flat
/// positions arena. Lookups never hash and never chase pointers.
///
/// Both columns are [`SharedSlice`]s, so an index can be rebuilt from a
/// database ([`InvertedIndex::build`]) or reconstructed zero-copy from a
/// [`snapshot`](crate::snapshot) image
/// ([`InvertedIndex::from_shared_parts`]) — queries are identical either
/// way.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvertedIndex {
    /// CSR offsets: slot `s * num_events + e` holds the arena range
    /// `offsets[slot]..offsets[slot + 1]`. Length `slots + 1` (with a
    /// leading implicit 0 stored explicitly).
    offsets: SharedSlice<u32>,
    /// All position lists, concatenated in slot order. Length equals the
    /// database's total length.
    positions: SharedSlice<u32>,
    num_events: usize,
    num_sequences: usize,
}

impl InvertedIndex {
    /// Builds the index for `db` in two passes over the flat event arena
    /// (`O(total_length)` time and space; a counting pass sizes the CSR
    /// ranges, a fill pass scatters the positions).
    pub fn build(db: &SequenceDatabase) -> Self {
        Self::build_for_store(db.store(), db.num_events())
    }

    /// Builds the index for a bare [`SeqStore`](crate::SeqStore) over an alphabet of
    /// `num_events` events. This is the shard-level entry point: a sharded
    /// database indexes each per-shard store window independently (and in
    /// parallel) against the **global** alphabet, so slot layout and posting
    /// lists line up across shards.
    ///
    /// # Panics
    ///
    /// Panics when the store references an event id `>= num_events`.
    pub fn build_for_store(store: &crate::store::SeqStore, num_events: usize) -> Self {
        let num_sequences = store.num_sequences();
        let slots = num_sequences * num_events;
        // The CSR offsets are u32: a wrapped count would silently misalign
        // every posting list, so fail loudly instead (the store enforces
        // the same ceiling on its own offsets).
        assert!(
            usize_to_u32(store.total_length()).is_some(),
            "InvertedIndex offsets are u32: more than u32::MAX total events"
        );

        // Pass 1: count occurrences per (sequence, event) slot, shifted by
        // one so the in-place prefix sum turns counts into offsets.
        let mut offsets = vec![0u32; slots + 1];
        for (seq, view) in store.iter().enumerate() {
            let base = seq * num_events;
            for event in view.iter_events() {
                assert!(
                    event.index() < num_events,
                    "store references event id {} outside the {num_events}-event alphabet",
                    event.index()
                );
                // In bounds: asserted just above, and `base + num_events <= slots`.
                if let Some(count) = offsets.get_mut(base + event.index() + 1) {
                    *count += 1;
                }
            }
        }
        let mut running = 0u32;
        for offset in &mut offsets {
            running += *offset;
            *offset = running;
        }

        // Pass 2: scatter 1-based positions into the arena. Within one
        // sequence events are visited in position order, so every slot's
        // list comes out sorted ascending. Bounds: the cursor slot exists
        // (asserted in pass 1) and the cursor value stays below the next
        // offset, which is at most the arena length.
        let mut positions = vec![0u32; store.total_length()];
        let mut cursor: Vec<u32> = offsets.get(..slots).unwrap_or(&[]).to_vec();
        for (seq, view) in store.iter().enumerate() {
            let base = seq * num_events;
            for (pos, event) in view.iter_positions() {
                let Some(c) = cursor.get_mut(base + event.index()) else {
                    continue;
                };
                if let Some(target) = positions.get_mut(u32_to_usize(*c)) {
                    *target = usize_to_u32(pos).unwrap_or(u32::MAX);
                }
                *c += 1;
            }
        }

        Self {
            offsets: offsets.into(),
            positions: positions.into(),
            num_events,
            num_sequences,
        }
    }

    /// Reassembles an index from its two CSR columns, typically zero-copy
    /// slices of a [`snapshot`](crate::snapshot) image. Every structural
    /// invariant is checked; the error string names the violated one.
    pub fn from_shared_parts(
        offsets: SharedSlice<u32>,
        positions: SharedSlice<u32>,
        num_sequences: usize,
        num_events: usize,
    ) -> Result<Self, String> {
        let slots = num_sequences
            .checked_mul(num_events)
            .ok_or("index slot count overflows")?;
        if offsets.len() != slots + 1 {
            return Err(format!(
                "index offsets hold {} entries, expected {} ({num_sequences} sequences x \
                 {num_events} events + 1)",
                offsets.len(),
                slots + 1
            ));
        }
        if offsets.first() != Some(&0) {
            return Err(format!(
                "index offsets start at {}, not 0",
                offsets.first().copied().unwrap_or(0)
            ));
        }
        if let Some((a, b)) = offsets
            .iter()
            .zip(offsets.iter().skip(1))
            .find(|(a, b)| a > b)
        {
            return Err(format!("index offsets are not monotone ({a} > {b})"));
        }
        let last = u32_to_usize(offsets.last().copied().unwrap_or(0));
        if last != positions.len() {
            return Err(format!(
                "index offsets end at {last} but the positions arena holds {} entries",
                positions.len()
            ));
        }
        // Each slot's posting list must be strictly ascending and 1-based:
        // `next` binary-searches it, so an unsorted list would silently
        // skip occurrences instead of failing. One linear pass over the
        // arena, same cost class as the offset checks above.
        for slot in 0..slots {
            let range = match (offsets.get(slot), offsets.get(slot + 1)) {
                (Some(&a), Some(&b)) => u32_to_usize(a)..u32_to_usize(b),
                // Unreachable: offsets.len() == slots + 1 was checked above.
                _ => 0..0,
            };
            let list = positions.get(range).unwrap_or(&[]);
            if list.first() == Some(&0) {
                return Err(format!(
                    "index positions for slot {slot} start at 0 (positions are 1-based)"
                ));
            }
            if let Some((a, b)) = list.iter().zip(list.iter().skip(1)).find(|(a, b)| a >= b) {
                return Err(format!(
                    "index positions for slot {slot} are not strictly ascending \
                     ({a} then {b})"
                ));
            }
        }
        Ok(Self {
            offsets,
            positions,
            num_events,
            num_sequences,
        })
    }

    /// The CSR offsets column: slot `s * num_events + e` delimits the arena
    /// range of `(sequence s, event e)`. Exposed for snapshot serialization.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat positions arena (all posting lists concatenated in slot
    /// order). Exposed for snapshot serialization.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Number of sequences covered by the index.
    pub fn num_sequences(&self) -> usize {
        self.num_sequences
    }

    /// Number of distinct events covered by the index.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// The `next(S, e, lowest)` subroutine (Algorithm 2, line 9): the
    /// smallest 1-based position `l` in sequence `seq` with `l > lowest` and
    /// `S[l] = event`, or `None` (the paper's `∞`) when no such position
    /// exists.
    ///
    /// This is the *naive reference* probe: every call re-derives the CSR
    /// slot (one multiply plus two bounds-checked offset loads) and runs an
    /// independent `partition_point` over the whole row. Hot loops resolve
    /// the row **once** via [`InvertedIndex::cursor`] instead and advance a
    /// [`PostingCursor`] through it; the property suite pins the cursor
    /// bit-identical to this probe.
    #[inline]
    pub fn next(&self, seq: usize, event: EventId, lowest: u32) -> Option<u32> {
        let list = self.event_positions(seq, event)?;
        let idx = list.partition_point(|&p| p <= lowest);
        list.get(idx).copied()
    }

    /// All positions of `event` in sequence `seq` (sorted ascending) as a
    /// slice into the flat arena, or `None` when the sequence id or event id
    /// is out of range.
    ///
    /// This is the *cached row handle*: it pays the CSR slot derivation
    /// exactly once, and every probe a caller performs against the returned
    /// slice (or a [`PostingCursor`] over it) is a plain slice operation.
    #[inline]
    pub fn event_positions(&self, seq: usize, event: EventId) -> Option<&[u32]> {
        if seq >= self.num_sequences || event.index() >= self.num_events {
            return None;
        }
        let slot = seq * self.num_events + event.index();
        let start = u32_to_usize(*self.offsets.get(slot)?);
        let end = u32_to_usize(*self.offsets.get(slot + 1)?);
        self.positions.get(start..end)
    }

    /// Resolves the posting row of `(seq, event)` once and returns a
    /// monotone [`PostingCursor`] over it, or `None` when the ids are out
    /// of range. The growth kernel calls this once per (sequence, event)
    /// run instead of [`InvertedIndex::next`] once per instance.
    #[inline]
    pub fn cursor(&self, seq: usize, event: EventId) -> Option<PostingCursor<'_>> {
        self.event_positions(seq, event).map(PostingCursor::new)
    }

    /// Resolves the posting row of `(seq, event)` once and returns a
    /// batched [`MultiCursor`](crate::MultiCursor) over it (up to 8
    /// monotone probes per pass on the
    /// [`active_backend`](crate::simd::active_backend)), or `None` when
    /// the ids are out of range. The vectorized growth kernels use this;
    /// [`InvertedIndex::cursor`] remains the scalar path.
    #[inline]
    pub fn multi_cursor(&self, seq: usize, event: EventId) -> Option<crate::MultiCursor<'_>> {
        self.event_positions(seq, event)
            .map(crate::MultiCursor::new)
    }

    /// Number of occurrences of `event` in sequence `seq`.
    pub fn count_in_sequence(&self, seq: usize, event: EventId) -> usize {
        self.event_positions(seq, event).map_or(0, <[u32]>::len)
    }

    /// Total number of occurrences of `event` in the whole database, i.e.
    /// the repetitive support of the single-event pattern `event`.
    pub fn total_count(&self, event: EventId) -> usize {
        (0..self.num_sequences)
            .map(|s| self.count_in_sequence(s, event))
            .sum()
    }

    /// Total occurrence counts of every event in one pass: entry `i` is
    /// [`Self::total_count`] of `EventId(i)`. This is the bulk form used to
    /// prepare a database once and answer frequent-event scans per query
    /// without touching the index again.
    pub fn total_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_events];
        for seq in 0..self.num_sequences {
            let base = seq * self.num_events;
            for (event, count) in counts.iter_mut().enumerate() {
                let slot = base + event;
                if let (Some(&a), Some(&b)) = (self.offsets.get(slot), self.offsets.get(slot + 1)) {
                    *count += u64::from(b - a);
                }
            }
        }
        counts
    }

    /// Number of sequences in which `event` occurs at least once (classical
    /// sequence support of a single event).
    pub fn sequence_count(&self, event: EventId) -> usize {
        (0..self.num_sequences)
            .filter(|&s| self.count_in_sequence(s, event) > 0)
            .count()
    }

    /// Iterates over the sequences in which `event` occurs, yielding the
    /// sequence index and the sorted position list (a slice into the arena).
    pub fn sequences_with_event(
        &self,
        event: EventId,
    ) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        (0..self.num_sequences).filter_map(move |seq| {
            self.event_positions(seq, event)
                .filter(|p| !p.is_empty())
                .map(|p| (seq, p))
        })
    }

    /// Bytes of live data held by the index (positions arena + CSR offsets
    /// table) — the number the `stats` CLI and the columnar-store benchmark
    /// report, and the index's contribution to a snapshot image. Counts
    /// lengths, not capacities, so it is deterministic for a given database.
    pub fn heap_bytes(&self) -> usize {
        (self.positions.len() + self.offsets.len()) * std::mem::size_of::<u32>()
    }
}

/// A resolved posting row with a forward-only, monotone probe cursor.
///
/// Within one (sequence, event) run of a growth pass the successive
/// `lowest` watermarks are **non-decreasing**: instances arrive in
/// right-shift order (`Instance.last` non-decreasing) and the support
/// computer's `last_position` watermark only ever grows. The cursor
/// exploits this by permanently discarding the row prefix `<= lowest` on
/// every probe, so a whole run costs `O(row_len + k · log(stride))`
/// amortized instead of `k` independent `O(log row_len)` searches that
/// each re-derive the CSR slot.
///
/// Each probe **gallops** from the previous landmark (doubling strides —
/// cheap for the short strides that dominate real runs) and finishes with
/// a **branch-free binary search** inside the bracketed window (a
/// conditional-move select per halving, no hard-to-predict compare
/// branch). The returned position is *not* consumed: under gap constraints
/// a position rejected for one instance (`pos > highest`) can legitimately
/// be the answer for the next instance, whose window differs. Only the
/// prefix `<= lowest` is dropped, which is always safe because `lowest`
/// never decreases.
///
/// `next_after(lowest)` returns exactly what
/// `row.partition_point(|&p| p <= lowest)` followed by `row.get(..)` would
/// — pinned by the seeded property suite in `tests/posting_cursor.rs`.
#[derive(Debug, Clone)]
pub struct PostingCursor<'a> {
    /// The not-yet-discarded suffix of the posting row.
    rest: &'a [u32],
    /// Monotonicity guard: probes must use non-decreasing `lowest`.
    #[cfg(debug_assertions)]
    prev_lowest: u32,
}

impl<'a> PostingCursor<'a> {
    /// Wraps a sorted posting row (1-based positions, strictly ascending).
    #[inline]
    pub fn new(row: &'a [u32]) -> Self {
        Self {
            rest: row,
            #[cfg(debug_assertions)]
            prev_lowest: 0,
        }
    }

    /// Number of positions not yet discarded.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Returns `true` when every position has been discarded.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.rest.is_empty()
    }

    /// The smallest remaining position `> lowest`, or `None` when the row
    /// is exhausted past `lowest`. Equivalent to the paper's
    /// `next(S, e, lowest)` restricted to non-decreasing `lowest`.
    ///
    /// The returned position stays at the front of the cursor (it may be
    /// returned again by a later probe with the same `lowest` bound); only
    /// the prefix `<= lowest` is discarded.
    #[inline]
    pub fn next_after(&mut self, lowest: u32) -> Option<u32> {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                lowest >= self.prev_lowest,
                "PostingCursor probes must use non-decreasing lowest \
                 ({lowest} after {})",
                self.prev_lowest
            );
            self.prev_lowest = lowest;
        }
        let &front = self.rest.first()?;
        if front > lowest {
            // Fast path (~2 compares): the previous landmark already
            // cleared the prefix — by far the common case mid-run.
            return Some(front);
        }
        // Gallop: probe indices 1, 3, 7, 15, ... until one exceeds
        // `lowest` (or the row ends). On exit, index (hi - 1) / 2 was the
        // last probe known `<= lowest` (index 0 checked above), so the
        // partition point lies in ((hi - 1) / 2, min(hi + 1, len)).
        let len = self.rest.len();
        let mut hi = 1usize;
        while self.rest.get(hi).is_some_and(|&p| p <= lowest) {
            hi = hi * 2 + 1;
        }
        let mut base = (hi - 1) / 2 + 1;
        let mut size = hi.saturating_add(1).min(len) - base;
        // Branch-free binary search for the partition point inside the
        // bracket: each halving is a bounds-checked load plus a
        // conditional add the compiler lowers to a select/cmov, never a
        // data-dependent branch.
        while size > 1 {
            let half = size / 2;
            let mid = base + half;
            // In bounds: mid < base + size <= min(hi + 1, len) <= len.
            base += usize::from(self.rest.get(mid).is_some_and(|&p| p <= lowest)) * half;
            size -= half;
        }
        let idx = base + usize::from(self.rest.get(base).is_some_and(|&p| p <= lowest));
        // idx <= len, so the suffix always exists; `unwrap_or` keeps the
        // path panic-free.
        self.rest = self.rest.get(idx..).unwrap_or(&[]);
        self.rest.first().copied()
    }

    /// Consumes the `n` leading remaining positions without probing — the
    /// vectorized growth kernels' bulk advance after a whole-batch vector
    /// compare proved the next `n` positions are emitted (or accepted)
    /// consecutively, so probing each one individually would be wasted
    /// work (see `core::kernel`). The caller asserts that every skipped
    /// position is `<= ` all future probe bounds — the same contract as
    /// [`Self::next_after_consuming`], `n` positions at a time.
    #[inline]
    pub fn advance(&mut self, n: usize) {
        self.rest = self.rest.get(n..).unwrap_or(&[]);
    }

    /// [`Self::next_after`], additionally consuming the returned position.
    ///
    /// Correct only when the caller can never ask for the same position
    /// again — the unconstrained growth kernel qualifies, because its
    /// watermark makes every later bound at least the emitted position, and
    /// probes are strictly greater than their bound. Consuming keeps the
    /// cursor front strictly ahead of the watermark, so mid-run probes hit
    /// the two-compare fast path instead of re-galloping over the emitted
    /// position. Gap-constrained sweeps must keep using [`Self::next_after`]
    /// (a rejected position may be the answer for the next instance).
    #[inline]
    pub fn next_after_consuming(&mut self, lowest: u32) -> Option<u32> {
        let pos = self.next_after(lowest)?;
        self.rest = self.rest.get(1..).unwrap_or(&[]);
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SequenceDatabase;

    /// Table III of the paper: S1 = ABCACBDDB, S2 = ACDBACADD.
    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    #[test]
    fn next_returns_strictly_greater_position() {
        let db = running_example();
        let index = db.inverted_index();
        let c = db.catalog().id("C").unwrap();
        // C occurs at positions 3 and 5 in S1.
        assert_eq!(index.next(0, c, 0), Some(3));
        assert_eq!(index.next(0, c, 3), Some(5));
        assert_eq!(index.next(0, c, 5), None);
    }

    #[test]
    fn next_matches_example_3_3() {
        // In INSgrow(SeqDB, AC, I, B) the paper computes
        // next(S1, B, max{6,5}) = 9.
        let db = running_example();
        let index = db.inverted_index();
        let b = db.catalog().id("B").unwrap();
        assert_eq!(index.next(0, b, 6), Some(9));
    }

    #[test]
    fn counts_match_manual_inspection() {
        let db = running_example();
        let index = db.inverted_index();
        let a = db.catalog().id("A").unwrap();
        let d = db.catalog().id("D").unwrap();
        // A: positions {1,4} in S1 and {1,5,7} in S2.
        assert_eq!(index.count_in_sequence(0, a), 2);
        assert_eq!(index.count_in_sequence(1, a), 3);
        assert_eq!(index.total_count(a), 5);
        assert_eq!(index.sequence_count(a), 2);
        // D: positions {7,8} in S1 and {3,8,9} in S2.
        assert_eq!(index.total_count(d), 5);
    }

    #[test]
    fn total_counts_agree_with_per_event_totals() {
        let db = running_example();
        let index = db.inverted_index();
        let counts = index.total_counts();
        assert_eq!(counts.len(), db.num_events());
        for event in db.catalog().ids() {
            assert_eq!(counts[event.index()], index.total_count(event) as u64);
        }
    }

    #[test]
    fn out_of_range_lookups_are_none_or_zero() {
        let db = running_example();
        let index = db.inverted_index();
        assert_eq!(index.next(10, EventId(0), 0), None);
        assert_eq!(index.next(0, EventId(99), 0), None);
        assert_eq!(index.count_in_sequence(0, EventId(99)), 0);
    }

    #[test]
    fn sequences_with_event_skips_sequences_without_it() {
        let db = SequenceDatabase::from_str_rows(&["AAB", "CC", "BA"]);
        let index = db.inverted_index();
        let a = db.catalog().id("A").unwrap();
        let hits: Vec<usize> = index.sequences_with_event(a).map(|(s, _)| s).collect();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn positions_are_sorted_and_one_based() {
        let db = running_example();
        let index = db.inverted_index();
        for seq in 0..db.num_sequences() {
            for event in db.catalog().ids() {
                let positions = index.event_positions(seq, event).unwrap();
                assert!(positions.windows(2).all(|w| w[0] < w[1]));
                for &p in positions {
                    assert_eq!(db.sequence(seq).unwrap().at(p as usize), Some(event));
                }
            }
        }
    }

    #[test]
    fn csr_arena_covers_the_whole_database_exactly_once() {
        let db = running_example();
        let index = db.inverted_index();
        // Every position of every sequence appears in exactly one list.
        let total: usize = db
            .catalog()
            .ids()
            .map(|event| index.total_count(event))
            .sum();
        assert_eq!(total, db.total_length());
        assert!(index.heap_bytes() >= db.total_length() * 4);
    }

    #[test]
    fn cursor_matches_naive_next_over_the_running_example() {
        let db = running_example();
        let index = db.inverted_index();
        for seq in 0..db.num_sequences() {
            for event in db.catalog().ids() {
                let mut cursor = index.cursor(seq, event).unwrap();
                for lowest in 0..=12u32 {
                    assert_eq!(
                        cursor.next_after(lowest),
                        index.next(seq, event, lowest),
                        "seq {seq} event {event} lowest {lowest}"
                    );
                }
                assert!(cursor.is_exhausted());
            }
        }
        assert!(index.cursor(99, EventId(0)).is_none());
    }

    #[test]
    fn cursor_does_not_consume_the_returned_position() {
        let db = running_example();
        let index = db.inverted_index();
        let d = db.catalog().id("D").unwrap();
        // D occurs at {7, 8} in S1: a rejected probe (same lowest) must see
        // the same front again, as constrained growth depends on it.
        let mut cursor = index.cursor(0, d).unwrap();
        assert_eq!(cursor.next_after(3), Some(7));
        assert_eq!(cursor.next_after(3), Some(7));
        assert_eq!(cursor.next_after(7), Some(8));
        assert_eq!(cursor.remaining(), 1);
        assert_eq!(cursor.next_after(8), None);
        assert_eq!(cursor.next_after(12), None);
    }

    #[test]
    fn empty_and_ghost_event_databases_index_cleanly() {
        let empty = SequenceDatabase::new();
        let index = empty.inverted_index();
        assert_eq!(index.num_sequences(), 0);
        assert_eq!(index.total_counts(), Vec::<u64>::new());

        // A catalog entry that never occurs gets an empty list everywhere.
        let mut builder = crate::database::DatabaseBuilder::new();
        builder.intern("GHOST");
        builder.push_tokens(["A", "B"]);
        let db = builder.finish();
        let index = db.inverted_index();
        let ghost = db.catalog().id("GHOST").unwrap();
        assert_eq!(index.total_count(ghost), 0);
        assert_eq!(index.event_positions(0, ghost), Some(&[][..]));
        assert_eq!(index.sequences_with_event(ghost).count(), 0);
    }
}
