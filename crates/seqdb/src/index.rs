//! The *inverted event index* of §III-D.
//!
//! For each sequence `Si` and event `e`, the index stores the ordered list
//! `L_{e,Si} = { j | Si[j] = e }` of 1-based positions at which `e` occurs.
//! The `next(S, e, lowest)` subroutine of Algorithm 2 is then a single
//! binary search (`O(log L)`), exactly as prescribed by the paper.

use crate::catalog::EventId;
use crate::database::SequenceDatabase;

/// Per-database inverted event index.
///
/// The index is laid out as `positions[seq][event] = Vec<u32>` where the
/// inner vectors are strictly increasing 1-based positions. The per-sequence
/// outer vector is indexed densely by event id, so lookups never hash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvertedIndex {
    /// `positions[seq][event.index()]` = sorted positions of `event` in `seq`.
    positions: Vec<Vec<Vec<u32>>>,
    num_events: usize,
}

impl InvertedIndex {
    /// Builds the index for `db` in a single pass over the data
    /// (`O(total_length)` time and space).
    pub fn build(db: &SequenceDatabase) -> Self {
        let num_events = db.num_events();
        let mut positions = Vec::with_capacity(db.num_sequences());
        for sequence in db.sequences() {
            let mut per_event: Vec<Vec<u32>> = vec![Vec::new(); num_events];
            for (pos, event) in sequence.iter_positions() {
                per_event[event.index()].push(pos as u32);
            }
            positions.push(per_event);
        }
        Self {
            positions,
            num_events,
        }
    }

    /// Number of sequences covered by the index.
    pub fn num_sequences(&self) -> usize {
        self.positions.len()
    }

    /// Number of distinct events covered by the index.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// The `next(S, e, lowest)` subroutine (Algorithm 2, line 9): the
    /// smallest 1-based position `l` in sequence `seq` with `l > lowest` and
    /// `S[l] = event`, or `None` (the paper's `∞`) when no such position
    /// exists.
    #[inline]
    pub fn next(&self, seq: usize, event: EventId, lowest: u32) -> Option<u32> {
        let list = self.event_positions(seq, event)?;
        let idx = list.partition_point(|&p| p <= lowest);
        list.get(idx).copied()
    }

    /// All positions of `event` in sequence `seq` (sorted ascending), or
    /// `None` when the sequence id or event id is out of range.
    pub fn event_positions(&self, seq: usize, event: EventId) -> Option<&[u32]> {
        self.positions
            .get(seq)?
            .get(event.index())
            .map(Vec::as_slice)
    }

    /// Number of occurrences of `event` in sequence `seq`.
    pub fn count_in_sequence(&self, seq: usize, event: EventId) -> usize {
        self.event_positions(seq, event).map_or(0, <[u32]>::len)
    }

    /// Total number of occurrences of `event` in the whole database, i.e.
    /// the repetitive support of the single-event pattern `event`.
    pub fn total_count(&self, event: EventId) -> usize {
        (0..self.positions.len())
            .map(|s| self.count_in_sequence(s, event))
            .sum()
    }

    /// Total occurrence counts of every event in one pass: entry `i` is
    /// [`Self::total_count`] of `EventId(i)`. This is the bulk form used to
    /// prepare a database once and answer frequent-event scans per query
    /// without touching the index again.
    pub fn total_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_events];
        for per_event in &self.positions {
            for (event, positions) in per_event.iter().enumerate() {
                counts[event] += positions.len() as u64;
            }
        }
        counts
    }

    /// Number of sequences in which `event` occurs at least once (classical
    /// sequence support of a single event).
    pub fn sequence_count(&self, event: EventId) -> usize {
        (0..self.positions.len())
            .filter(|&s| self.count_in_sequence(s, event) > 0)
            .count()
    }

    /// Iterates over the sequences in which `event` occurs, yielding the
    /// sequence index and the sorted position list.
    pub fn sequences_with_event(
        &self,
        event: EventId,
    ) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        self.positions
            .iter()
            .enumerate()
            .filter_map(move |(seq, per_event)| {
                per_event
                    .get(event.index())
                    .filter(|v| !v.is_empty())
                    .map(|v| (seq, v.as_slice()))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SequenceDatabase;

    /// Table III of the paper: S1 = ABCACBDDB, S2 = ACDBACADD.
    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    #[test]
    fn next_returns_strictly_greater_position() {
        let db = running_example();
        let index = db.inverted_index();
        let c = db.catalog().id("C").unwrap();
        // C occurs at positions 3 and 5 in S1.
        assert_eq!(index.next(0, c, 0), Some(3));
        assert_eq!(index.next(0, c, 3), Some(5));
        assert_eq!(index.next(0, c, 5), None);
    }

    #[test]
    fn next_matches_example_3_3() {
        // In INSgrow(SeqDB, AC, I, B) the paper computes
        // next(S1, B, max{6,5}) = 9.
        let db = running_example();
        let index = db.inverted_index();
        let b = db.catalog().id("B").unwrap();
        assert_eq!(index.next(0, b, 6), Some(9));
    }

    #[test]
    fn counts_match_manual_inspection() {
        let db = running_example();
        let index = db.inverted_index();
        let a = db.catalog().id("A").unwrap();
        let d = db.catalog().id("D").unwrap();
        // A: positions {1,4} in S1 and {1,5,7} in S2.
        assert_eq!(index.count_in_sequence(0, a), 2);
        assert_eq!(index.count_in_sequence(1, a), 3);
        assert_eq!(index.total_count(a), 5);
        assert_eq!(index.sequence_count(a), 2);
        // D: positions {7,8} in S1 and {3,8,9} in S2.
        assert_eq!(index.total_count(d), 5);
    }

    #[test]
    fn total_counts_agree_with_per_event_totals() {
        let db = running_example();
        let index = db.inverted_index();
        let counts = index.total_counts();
        assert_eq!(counts.len(), db.num_events());
        for event in db.catalog().ids() {
            assert_eq!(counts[event.index()], index.total_count(event) as u64);
        }
    }

    #[test]
    fn out_of_range_lookups_are_none_or_zero() {
        let db = running_example();
        let index = db.inverted_index();
        assert_eq!(index.next(10, EventId(0), 0), None);
        assert_eq!(index.next(0, EventId(99), 0), None);
        assert_eq!(index.count_in_sequence(0, EventId(99)), 0);
    }

    #[test]
    fn sequences_with_event_skips_sequences_without_it() {
        let db = SequenceDatabase::from_str_rows(&["AAB", "CC", "BA"]);
        let index = db.inverted_index();
        let a = db.catalog().id("A").unwrap();
        let hits: Vec<usize> = index.sequences_with_event(a).map(|(s, _)| s).collect();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn positions_are_sorted_and_one_based() {
        let db = running_example();
        let index = db.inverted_index();
        for seq in 0..db.num_sequences() {
            for event in db.catalog().ids() {
                let positions = index.event_positions(seq, event).unwrap();
                assert!(positions.windows(2).all(|w| w[0] < w[1]));
                for &p in positions {
                    assert_eq!(db.sequence(seq).unwrap().at(p as usize), Some(event));
                }
            }
        }
    }
}
