//! Sequence-boundary sharding: partitioned stores and shard-routed indexes.
//!
//! The paper's repetitive support is a **per-sequence sum**: every instance
//! lives inside one sequence, so a database partitioned at sequence
//! boundaries answers any support query exactly by summing per-shard
//! answers — no approximation, no cross-shard instances. This module
//! provides the storage side of that observation:
//!
//! * [`ShardMap`] — the partition itself: `N` half-open sequence-id ranges,
//!   chosen by **event mass** (total events per shard), not sequence count,
//!   so skewed corpora still balance;
//! * [`ShardedSeqStore`] — the flat CSR [`SeqStore`] split into per-shard
//!   windows. After [`SeqStore::share`] every window's event arena is a
//!   zero-copy [`SharedSlice`](crate::SharedSlice) view into the parent
//!   arena;
//! * [`ShardedIndex`] — one [`InvertedIndex`] per shard over the global
//!   alphabet, built in parallel, answering every query of the flat index
//!   API with **global** sequence ids (a single-shard instance routes with
//!   zero overhead, so the unsharded path is unchanged).
//!
//! Because each shard's posting lists are exactly the corresponding rows of
//! the global index, every routed query returns bit-identical answers —
//! which is what makes sharded mining bit-identical to unsharded mining
//! upstream in `rgs-core`.

use crate::cast::{u32_to_usize, usize_to_u32};
use crate::catalog::EventId;
use crate::index::{InvertedIndex, PostingCursor};
use crate::store::SeqStore;

/// Narrows a sequence count/boundary to the `u32` a [`ShardMap`] stores,
/// failing loudly (instead of wrapping) past the documented store ceiling.
fn seq_id_u32(n: usize) -> u32 {
    let narrowed = usize_to_u32(n);
    assert!(
        narrowed.is_some(),
        "shard maps hold u32 sequence ids: more than u32::MAX sequences"
    );
    narrowed.unwrap_or(u32::MAX) // unreachable fallback: asserted Some above
}

/// A partition of `0..num_sequences` into consecutive half-open ranges.
///
/// `bounds` has one entry per shard plus a trailing sentinel: shard `k`
/// covers sequences `bounds[k]..bounds[k + 1]`. Invariants: starts at 0,
/// monotone non-decreasing (empty shards are allowed), ends at the sequence
/// count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    bounds: Vec<u32>,
}

impl ShardMap {
    /// The trivial single-shard map over `num_sequences` sequences.
    pub fn single(num_sequences: usize) -> Self {
        Self {
            bounds: vec![0, seq_id_u32(num_sequences)],
        }
    }

    /// Builds a map from explicit boundaries, validating every invariant;
    /// the error string names the violated one.
    pub fn from_bounds(bounds: Vec<u32>, num_sequences: usize) -> Result<Self, String> {
        if bounds.len() < 2 {
            return Err(format!(
                "shard map holds {} boundaries, needs at least 2",
                bounds.len()
            ));
        }
        if bounds.first() != Some(&0) {
            return Err(format!(
                "shard map starts at {}, not 0",
                bounds.first().copied().unwrap_or(0)
            ));
        }
        if let Some((a, b)) = bounds
            .iter()
            .zip(bounds.iter().skip(1))
            .find(|(a, b)| a > b)
        {
            return Err(format!("shard map boundaries are not monotone ({a} > {b})"));
        }
        let last = u32_to_usize(bounds.last().copied().unwrap_or(0));
        if last != num_sequences {
            return Err(format!(
                "shard map ends at {last} but the store holds {num_sequences} sequences"
            ));
        }
        Ok(Self { bounds })
    }

    /// Partitions by **event mass**: boundary `k` is placed where the
    /// cumulative event count first reaches `k/n` of the total, using the
    /// store's CSR `offsets` table (which *is* the cumulative event count).
    /// Deterministic for a given store; shards of a skewed corpus come out
    /// byte-balanced rather than row-balanced. `shards` is clamped to
    /// `[1, max(1, num_sequences)]`.
    pub fn by_event_mass(offsets: &[u32], shards: usize) -> Self {
        let num_sequences = offsets.len().saturating_sub(1);
        let last_seq = seq_id_u32(num_sequences);
        let shards = shards.clamp(1, num_sequences.max(1));
        let total = u64::from(*offsets.last().unwrap_or(&0));
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u32);
        for k in 1..shards {
            let ideal = total * crate::cast::usize_to_u64(k) / crate::cast::usize_to_u64(shards);
            let cut = offsets.partition_point(|&o| u64::from(o) < ideal);
            // `cut <= offsets.len() - 1 = num_sequences` once clamped, and
            // `num_sequences` fits u32 (checked above).
            let cut = usize_to_u32(cut).unwrap_or(last_seq);
            let prev = bounds.last().copied().unwrap_or(0);
            bounds.push(cut.clamp(prev, last_seq));
        }
        bounds.push(last_seq);
        Self { bounds }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of sequences covered by the map.
    pub fn num_sequences(&self) -> usize {
        u32_to_usize(self.bounds.last().copied().unwrap_or(0))
    }

    /// The sequence-id range of shard `k`, empty when `k` is out of range.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        match (self.bounds.get(shard), self.bounds.get(shard + 1)) {
            (Some(&start), Some(&end)) => u32_to_usize(start)..u32_to_usize(end),
            _ => 0..0,
        }
    }

    /// The first global sequence id of shard `k` (the offset added to
    /// shard-local ids), or 0 when `k` is out of range.
    pub fn seq_base(&self, shard: usize) -> usize {
        self.bounds.get(shard).map_or(0, |&b| u32_to_usize(b))
    }

    /// The shard containing global sequence `seq`, or `None` when out of
    /// range. With empty shards present, the *last* shard whose range
    /// contains `seq` wins — consistent with [`ShardMap::range`] since
    /// empty ranges contain nothing.
    pub fn shard_of(&self, seq: usize) -> Option<usize> {
        if seq >= self.num_sequences() {
            return None;
        }
        // In range (checked above), so it fits the u32 boundary width.
        let seq = usize_to_u32(seq)?;
        // First boundary strictly greater than seq, minus one; `bounds[0]`
        // is 0 <= seq, so the partition point is at least 1.
        self.bounds.partition_point(|&b| b <= seq).checked_sub(1)
    }

    /// The raw boundaries (one per shard plus a sentinel).
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }
}

/// A flat CSR [`SeqStore`] split into per-shard windows at sequence
/// boundaries.
///
/// The full store is kept alongside the windows (after
/// [`SeqStore::share`] the windows alias its arena, so this costs one
/// offsets table, not a copy of the events) — it serves whole-database
/// reads and is what [`ShardedSeqStore::rebalance`] re-partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedSeqStore {
    full: SeqStore,
    shards: Vec<SeqStore>,
    map: ShardMap,
}

impl ShardedSeqStore {
    /// Splits `store` into `shards` windows at event-mass-balanced sequence
    /// boundaries. The store's columns are promoted to shared storage
    /// first, so every window's event arena is a zero-copy view.
    pub fn from_store(mut store: SeqStore, shards: usize) -> Self {
        store.share();
        let map = ShardMap::by_event_mass(store.offsets(), shards);
        Self::from_store_with_map(store, map)
    }

    /// Splits an (already shared) store along an explicit map.
    pub fn from_store_with_map(store: SeqStore, map: ShardMap) -> Self {
        assert_eq!(
            map.num_sequences(),
            store.num_sequences(),
            "shard map covers {} sequences but the store holds {}",
            map.num_sequences(),
            store.num_sequences()
        );
        let shards = (0..map.num_shards())
            .map(|k| store.window(map.range(k)))
            .collect();
        Self {
            full: store,
            shards,
            map,
        }
    }

    /// Reassembles a sharded store from already-validated parts (the
    /// snapshot loader's constructor). The windows must renumber their
    /// sequences locally and concatenate, in map order, to exactly `full`;
    /// the error string names the violated invariant.
    pub fn from_parts(
        full: SeqStore,
        shards: Vec<SeqStore>,
        map: ShardMap,
    ) -> Result<Self, String> {
        if shards.len() != map.num_shards() {
            return Err(format!(
                "{} shard stores but the map describes {} shards",
                shards.len(),
                map.num_shards()
            ));
        }
        if map.num_sequences() != full.num_sequences() {
            return Err(format!(
                "shard map covers {} sequences but the store holds {}",
                map.num_sequences(),
                full.num_sequences()
            ));
        }
        for (k, shard) in shards.iter().enumerate() {
            let range = map.range(k);
            if shard.num_sequences() != range.len() {
                return Err(format!(
                    "shard {k} holds {} sequences but its range {range:?} spans {}",
                    shard.num_sequences(),
                    range.len()
                ));
            }
            let expected: usize = range.clone().map(|s| full.seq_len(s)).sum();
            if shard.total_length() != expected {
                return Err(format!(
                    "shard {k} holds {} events but range {range:?} of the store holds {expected}",
                    shard.total_length()
                ));
            }
        }
        Ok(Self { full, shards, map })
    }

    /// Re-partitions the same store into `shards` event-mass-balanced
    /// windows — the rebalance path after skewed appends or a changed
    /// deployment size. Zero-copy: windows are re-derived from the shared
    /// full store.
    pub fn rebalance(&self, shards: usize) -> Self {
        Self::from_store(self.full.clone(), shards)
    }

    /// The underlying flat store (all shards concatenated).
    pub fn full(&self) -> &SeqStore {
        &self.full
    }

    /// The per-shard store windows, in shard order.
    pub fn shards(&self) -> &[SeqStore] {
        &self.shards
    }

    /// The window of shard `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k >= num_shards()`.
    pub fn shard(&self, k: usize) -> &SeqStore {
        // Documented panic on an out-of-range shard id at the API
        // boundary; never called from a mining loop.
        // audit:allow(indexing): see above
        &self.shards[k]
    }

    /// The sequence-boundary partition.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Bytes of the per-shard window tables **in addition to** the full
    /// store: the windows alias the shared event arena, so only their
    /// (possibly rebased) offsets columns and the shard map are extra.
    pub fn window_overhead_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| (s.num_sequences() + 1) * std::mem::size_of::<u32>())
            .sum::<usize>()
            + std::mem::size_of_val(self.map.bounds())
    }
}

/// One [`InvertedIndex`] per shard over the **global** alphabet, answering
/// the flat index's query API with global sequence ids.
///
/// Shard `k` indexes the sequences `map.range(k)` renumbered to
/// `0..range.len()`; a global query locates the shard through a
/// precomputed per-sequence routing table (O(1), one 4-byte load — the
/// `next` call this sits under is *the* hot operation of instance growth)
/// and offsets the id. Posting lists are identical to the global index's,
/// so every routed answer is bit-identical — the property the
/// sharded-equivalence suite pins end to end.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    shards: Vec<InvertedIndex>,
    map: ShardMap,
    /// `seq_shard[seq]` = shard owning global sequence `seq` (derived from
    /// `map`; 4 bytes per sequence, rebuilt on open, never serialized).
    seq_shard: Vec<u32>,
    num_events: usize,
}

impl PartialEq for ShardedIndex {
    fn eq(&self, other: &Self) -> bool {
        // `seq_shard` is derived from `map` (and lazily absent on the
        // single-shard fast path), so it carries no information of its own.
        self.shards == other.shards && self.map == other.map && self.num_events == other.num_events
    }
}

impl Eq for ShardedIndex {}

/// Expands a [`ShardMap`] into the per-sequence routing table.
fn routing_table(map: &ShardMap) -> Vec<u32> {
    let mut table = vec![0u32; map.num_sequences()];
    for shard in 0..map.num_shards() {
        // `num_shards <= num_sequences + 1` and ranges stay inside
        // `0..num_sequences` by the map invariants.
        let id = usize_to_u32(shard).unwrap_or(u32::MAX);
        if let Some(slots) = table.get_mut(map.range(shard)) {
            for slot in slots {
                *slot = id;
            }
        }
    }
    table
}

/// Below this many total events, [`ShardedIndex::build`] always builds its
/// shard indexes inline even when asked for threads: spawning scoped
/// workers costs tens of microseconds, while a two-pass CSR build over a
/// corpus this small finishes in single-digit microseconds per shard
/// (BENCH_shard.json measured `prepare_speedup: 0.451` — a 2.2× *slowdown* —
/// on a 10k-event corpus before this cutoff existed).
pub const PARALLEL_BUILD_MIN_EVENTS: usize = 1 << 16;

impl ShardedIndex {
    /// Wraps a flat index as a single shard (zero routing overhead).
    pub fn single(index: InvertedIndex) -> Self {
        let map = ShardMap::single(index.num_sequences());
        let num_events = index.num_events();
        Self {
            shards: vec![index],
            // The single-shard fast path never consults the table.
            seq_shard: Vec::new(),
            map,
            num_events,
        }
    }

    /// Builds one index per shard of `store`, on up to `threads` worker
    /// threads (shards are independent two-pass builds over disjoint
    /// windows). `threads <= 1` builds inline, as does any store below
    /// [`PARALLEL_BUILD_MIN_EVENTS`] total events (thread spawn overhead
    /// dwarfs the build at that scale). The result is identical regardless
    /// of thread count.
    pub fn build(store: &ShardedSeqStore, num_events: usize, threads: usize) -> Self {
        let map = store.map().clone();
        let shards = store.shards();
        let threads = threads.clamp(1, shards.len().max(1));
        let tiny = store.full().total_length() < PARALLEL_BUILD_MIN_EVENTS;
        let indexes: Vec<InvertedIndex> = if threads <= 1 || shards.len() <= 1 || tiny {
            shards
                .iter()
                .map(|s| InvertedIndex::build_for_store(s, num_events))
                .collect()
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let mut indexed: Vec<(usize, InvertedIndex)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(shard) = shards.get(k) else {
                                    break;
                                };
                                out.push((k, InvertedIndex::build_for_store(shard, num_events)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| {
                        let joined = h.join();
                        assert!(joined.is_ok(), "index build worker panicked");
                        joined.unwrap_or_default()
                    })
                    .collect()
            });
            indexed.sort_unstable_by_key(|(k, _)| *k);
            indexed.into_iter().map(|(_, index)| index).collect()
        };
        Self {
            shards: indexes,
            seq_shard: routing_table(&map),
            map,
            num_events,
        }
    }

    /// Reassembles a sharded index from already-validated parts (the
    /// snapshot loader's constructor); the error string names the violated
    /// invariant.
    pub fn from_parts(
        shards: Vec<InvertedIndex>,
        map: ShardMap,
        num_events: usize,
    ) -> Result<Self, String> {
        if shards.len() != map.num_shards() {
            return Err(format!(
                "{} shard indexes but the map describes {} shards",
                shards.len(),
                map.num_shards()
            ));
        }
        for (k, index) in shards.iter().enumerate() {
            if index.num_events() != num_events {
                return Err(format!(
                    "shard {k} indexes {} events, expected {num_events}",
                    index.num_events()
                ));
            }
            if index.num_sequences() != map.range(k).len() {
                return Err(format!(
                    "shard {k} indexes {} sequences but its range spans {}",
                    index.num_sequences(),
                    map.range(k).len()
                ));
            }
        }
        Ok(Self {
            shards,
            seq_shard: routing_table(&map),
            map,
            num_events,
        })
    }

    /// Routes a global sequence id to `(shard, local sequence id)`.
    #[inline]
    fn locate(&self, seq: usize) -> Option<(usize, usize)> {
        if self.shards.len() == 1 {
            // Unsharded fast path: not even a table load.
            return (seq < self.map.num_sequences()).then_some((0, seq));
        }
        let shard = u32_to_usize(*self.seq_shard.get(seq)?);
        Some((shard, seq - self.map.seq_base(shard)))
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard indexes, in shard order.
    pub fn shards(&self) -> &[InvertedIndex] {
        &self.shards
    }

    /// The index of shard `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k >= num_shards()`.
    pub fn shard(&self, k: usize) -> &InvertedIndex {
        // Documented panic on an out-of-range shard id at the API
        // boundary; never called from a mining loop.
        // audit:allow(indexing): see above
        &self.shards[k]
    }

    /// The sequence-boundary partition the routing uses.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of sequences covered (sum over shards).
    pub fn num_sequences(&self) -> usize {
        self.map.num_sequences()
    }

    /// Number of distinct events in the (global) alphabet.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// The `next(S, e, lowest)` subroutine with a global sequence id: the
    /// smallest 1-based position `l` in sequence `seq` with `l > lowest`
    /// and `S[l] = event` (see [`InvertedIndex::next`]).
    #[inline]
    pub fn next(&self, seq: usize, event: EventId, lowest: u32) -> Option<u32> {
        let (shard, local) = self.locate(seq)?;
        self.shards.get(shard)?.next(local, event, lowest)
    }

    /// All positions of `event` in global sequence `seq`, sorted ascending.
    ///
    /// Like [`InvertedIndex::event_positions`], this is the cached row
    /// handle: routing (one table load) and CSR slot derivation happen
    /// once, and the caller probes the returned slice directly.
    #[inline]
    pub fn event_positions(&self, seq: usize, event: EventId) -> Option<&[u32]> {
        let (shard, local) = self.locate(seq)?;
        self.shards.get(shard)?.event_positions(local, event)
    }

    /// Resolves the posting row of `(seq, event)` once — one routing-table
    /// load plus one CSR slot derivation — and returns a monotone
    /// [`PostingCursor`] over it. The growth kernel calls this once per
    /// (sequence, event) run instead of [`ShardedIndex::next`] once per
    /// instance.
    #[inline]
    pub fn cursor(&self, seq: usize, event: EventId) -> Option<PostingCursor<'_>> {
        let (shard, local) = self.locate(seq)?;
        self.shards.get(shard)?.cursor(local, event)
    }

    /// The batched sibling of [`ShardedIndex::cursor`]: resolves the
    /// posting row once and returns a [`MultiCursor`](crate::MultiCursor)
    /// answering up to 8 monotone probes per vectorized pass (see
    /// [`simd`](crate::simd)). The vectorized growth kernels call this
    /// once per (sequence, event) run.
    #[inline]
    pub fn multi_cursor(&self, seq: usize, event: EventId) -> Option<crate::MultiCursor<'_>> {
        self.event_positions(seq, event)
            .map(crate::MultiCursor::new)
    }

    /// Number of occurrences of `event` in global sequence `seq`.
    pub fn count_in_sequence(&self, seq: usize, event: EventId) -> usize {
        self.event_positions(seq, event).map_or(0, <[u32]>::len)
    }

    /// Total occurrences of `event` across the whole database (the
    /// repetitive support of the single-event pattern).
    pub fn total_count(&self, event: EventId) -> usize {
        self.shards.iter().map(|s| s.total_count(event)).sum()
    }

    /// Total occurrence counts of every event in one pass over the shards;
    /// entry `i` is [`Self::total_count`] of `EventId(i)`.
    pub fn total_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_events];
        for shard in &self.shards {
            for (total, partial) in counts.iter_mut().zip(shard.total_counts()) {
                *total += partial;
            }
        }
        counts
    }

    /// Number of sequences in which `event` occurs at least once.
    pub fn sequence_count(&self, event: EventId) -> usize {
        self.shards.iter().map(|s| s.sequence_count(event)).sum()
    }

    /// Iterates over the sequences containing `event` — **global** ids,
    /// ascending — with the sorted position list of each (a slice into the
    /// owning shard's arena). Shard-local iteration concatenated in shard
    /// order is exactly global ascending order, so this matches the flat
    /// index's iteration bit for bit.
    pub fn sequences_with_event(
        &self,
        event: EventId,
    ) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        self.shards.iter().enumerate().flat_map(move |(k, shard)| {
            let base = self.map.seq_base(k);
            shard
                .sequences_with_event(event)
                .map(move |(local, positions)| (base + local, positions))
        })
    }

    /// Shard-scoped variant of [`Self::sequences_with_event`]: only the
    /// sequences of shard `k`, still with global ids. This is what the
    /// two-level (shard × seed) work queue fans out over.
    pub fn shard_sequences_with_event(
        &self,
        shard: usize,
        event: EventId,
    ) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        let base = self.map.seq_base(shard);
        self.shard(shard)
            .sequences_with_event(event)
            .map(move |(local, positions)| (base + local, positions))
    }

    /// Bytes of live data held across all shard indexes (positions arenas +
    /// CSR offset tables).
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(InvertedIndex::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::SequenceDatabase;

    fn db() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&[
            "ABCACBDDB",
            "ACDBACADD",
            "AAAA",
            "BC",
            "DDDDDDDD",
            "ABAB",
            "C",
        ])
    }

    #[test]
    fn event_mass_partition_balances_bytes_not_rows() {
        // One huge sequence followed by many tiny ones: a row-count split
        // would put the huge one plus half the tiny ones in shard 0.
        let rows: Vec<String> = std::iter::once("A".repeat(100))
            .chain((0..10).map(|_| "B".to_string()))
            .collect();
        let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
        let store = SequenceDatabase::from_str_rows(&refs).store().clone();
        let map = ShardMap::by_event_mass(store.offsets(), 2);
        assert_eq!(map.num_shards(), 2);
        // The huge sequence alone is shard 0; all tiny rows are shard 1.
        assert_eq!(map.range(0), 0..1);
        assert_eq!(map.range(1), 1..11);
    }

    #[test]
    fn shard_map_invariants_and_routing() {
        let map = ShardMap::from_bounds(vec![0, 2, 2, 5], 5).expect("valid");
        assert_eq!(map.num_shards(), 3);
        assert_eq!(map.num_sequences(), 5);
        assert_eq!(map.range(1), 2..2);
        assert_eq!(map.shard_of(0), Some(0));
        assert_eq!(map.shard_of(1), Some(0));
        assert_eq!(map.shard_of(2), Some(2));
        assert_eq!(map.shard_of(4), Some(2));
        assert_eq!(map.shard_of(5), None);
        assert_eq!(map.seq_base(2), 2);

        assert!(ShardMap::from_bounds(vec![1, 5], 5).is_err());
        assert!(ShardMap::from_bounds(vec![0, 3, 2, 5], 5).is_err());
        assert!(ShardMap::from_bounds(vec![0, 4], 5).is_err());
        assert!(ShardMap::from_bounds(vec![0], 5).is_err());
    }

    #[test]
    fn clamping_handles_degenerate_shard_counts() {
        let map = ShardMap::by_event_mass(&[0], 4);
        assert_eq!(map.num_shards(), 1);
        assert_eq!(map.num_sequences(), 0);
        let map = ShardMap::by_event_mass(&[0, 3, 5], 99);
        assert_eq!(map.num_shards(), 2);
        let map = ShardMap::by_event_mass(&[0, 3, 5], 0);
        assert_eq!(map.num_shards(), 1);
    }

    #[test]
    fn sharded_store_windows_reassemble_the_database() {
        let store = db().store().clone();
        let total = store.total_length();
        for shards in [1, 2, 3, 7] {
            let sharded = ShardedSeqStore::from_store(store.clone(), shards);
            assert_eq!(sharded.num_shards(), shards);
            assert_eq!(
                sharded
                    .shards()
                    .iter()
                    .map(SeqStore::total_length)
                    .sum::<usize>(),
                total
            );
            // Window k sequence j == full sequence (base + j).
            for k in 0..shards {
                let base = sharded.map().seq_base(k);
                for (j, view) in sharded.shard(k).iter().enumerate() {
                    assert_eq!(view, sharded.full().view(base + j).unwrap());
                }
            }
            // Windows alias the shared full arena (zero copy), at the
            // parent's width (a str-rows alphabet is always narrow).
            for (k, shard) in sharded.shards().iter().enumerate() {
                if shard.total_length() > 0 {
                    let base = sharded.full().offsets()[sharded.map().seq_base(k)] as usize;
                    assert_eq!(
                        shard.event_column().narrow_slice().unwrap().as_ptr(),
                        sharded.full().event_column().narrow_slice().unwrap()[base..].as_ptr(),
                        "shard {k} copied its events"
                    );
                }
            }
            assert!(sharded.window_overhead_bytes() > 0);
        }
    }

    #[test]
    fn rebalance_repartitions_the_same_data() {
        let sharded = ShardedSeqStore::from_store(db().store().clone(), 2);
        let rebalanced = sharded.rebalance(3);
        assert_eq!(rebalanced.num_shards(), 3);
        assert_eq!(rebalanced.full(), sharded.full());
        let reunified = rebalanced.rebalance(1);
        assert_eq!(reunified.num_shards(), 1);
        assert_eq!(reunified.shard(0).offsets(), sharded.full().offsets());
    }

    #[test]
    fn sharded_index_answers_match_the_flat_index() {
        let db = db();
        let flat = db.inverted_index();
        for shards in [1, 2, 3, 7] {
            for threads in [1, 3] {
                let sharded_store = ShardedSeqStore::from_store(db.store().clone(), shards);
                let index = ShardedIndex::build(&sharded_store, db.num_events(), threads);
                assert_eq!(index.num_shards(), shards);
                assert_eq!(index.num_sequences(), flat.num_sequences());
                assert_eq!(index.num_events(), flat.num_events());
                assert_eq!(index.total_counts(), flat.total_counts());
                for event in db.catalog().ids() {
                    assert_eq!(index.total_count(event), flat.total_count(event));
                    assert_eq!(index.sequence_count(event), flat.sequence_count(event));
                    let routed: Vec<(usize, &[u32])> = index.sequences_with_event(event).collect();
                    let direct: Vec<(usize, &[u32])> = flat.sequences_with_event(event).collect();
                    assert_eq!(routed, direct);
                    for seq in 0..db.num_sequences() {
                        assert_eq!(
                            index.event_positions(seq, event),
                            flat.event_positions(seq, event)
                        );
                        let mut cursor = index.cursor(seq, event);
                        for lowest in 0..=10u32 {
                            assert_eq!(
                                index.next(seq, event, lowest),
                                flat.next(seq, event, lowest),
                                "next({seq}, {event:?}, {lowest}) diverges at {shards} shards"
                            );
                            // The routed cursor agrees probe by probe.
                            if let Some(cursor) = cursor.as_mut() {
                                assert_eq!(
                                    cursor.next_after(lowest),
                                    flat.next(seq, event, lowest)
                                );
                            }
                        }
                    }
                }
                // Out-of-range lookups stay None.
                assert_eq!(index.next(db.num_sequences(), EventId(0), 0), None);
                assert_eq!(index.event_positions(99, EventId(0)), None);
                assert!(index.cursor(99, EventId(0)).is_none());
            }
        }
    }

    #[test]
    fn shard_scoped_iteration_covers_each_sequence_once() {
        let db = db();
        let sharded_store = ShardedSeqStore::from_store(db.store().clone(), 3);
        let index = ShardedIndex::build(&sharded_store, db.num_events(), 1);
        let a = db.catalog().id("A").unwrap();
        let merged: Vec<usize> = (0..index.num_shards())
            .flat_map(|k| {
                index
                    .shard_sequences_with_event(k, a)
                    .map(|(seq, _)| seq)
                    .collect::<Vec<_>>()
            })
            .collect();
        let direct: Vec<usize> = index.sequences_with_event(a).map(|(s, _)| s).collect();
        assert_eq!(merged, direct);
    }

    #[test]
    fn from_parts_rejects_mismatched_shapes() {
        let db = db();
        let sharded_store = ShardedSeqStore::from_store(db.store().clone(), 2);
        let index = ShardedIndex::build(&sharded_store, db.num_events(), 1);
        let map = sharded_store.map().clone();

        assert!(ShardedIndex::from_parts(index.shards().to_vec(), map.clone(), 99).is_err());
        assert!(ShardedIndex::from_parts(
            vec![index.shard(0).clone()],
            map.clone(),
            db.num_events()
        )
        .is_err());
        assert!(ShardedSeqStore::from_parts(
            sharded_store.full().clone(),
            vec![sharded_store.shard(0).clone()],
            map
        )
        .is_err());
    }

    #[test]
    fn tiny_stores_build_identically_whatever_the_thread_count() {
        // Every corpus in this suite sits far below PARALLEL_BUILD_MIN_EVENTS,
        // so a threaded build request takes the inline path — and must still
        // produce exactly the same indexes as an explicit threads=1 build.
        let db = db();
        assert!(db.store().total_length() < PARALLEL_BUILD_MIN_EVENTS);
        let sharded_store = ShardedSeqStore::from_store(db.store().clone(), 3);
        let inline = ShardedIndex::build(&sharded_store, db.num_events(), 1);
        let threaded = ShardedIndex::build(&sharded_store, db.num_events(), 8);
        assert_eq!(inline, threaded);
    }

    #[test]
    fn single_shard_index_routes_with_identity() {
        let db = db();
        let index = ShardedIndex::single(db.inverted_index());
        assert_eq!(index.num_shards(), 1);
        let a = db.catalog().id("A").unwrap();
        assert_eq!(index.next(0, a, 0), db.inverted_index().next(0, a, 0));
        assert_eq!(index.heap_bytes(), db.inverted_index().heap_bytes());
    }
}
