//! Summary statistics for sequence databases.
//!
//! The experiment harness reports these statistics alongside every dataset
//! so that a run can be compared against the figures quoted in the paper
//! (e.g. "the Gazelle dataset contains 29369 sequences and 1423 distinct
//! events, average sequence length 3, maximum length 651").

use std::collections::HashMap;

use crate::catalog::EventId;
use crate::database::SequenceDatabase;

/// Summary statistics of a [`SequenceDatabase`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseStats {
    /// Number of sequences `N`.
    pub num_sequences: usize,
    /// Number of distinct events `|E|`.
    pub num_events: usize,
    /// Total number of events across all sequences.
    pub total_length: usize,
    /// Minimum sequence length (0 for an empty database).
    pub min_length: usize,
    /// Maximum sequence length.
    pub max_length: usize,
    /// Mean sequence length.
    pub avg_length: f64,
    /// Median sequence length.
    pub median_length: f64,
    /// Maximum number of occurrences of any single event (the paper's
    /// `sup_max` for size-1 patterns, used in the space bound of Theorem 7).
    pub max_event_occurrences: usize,
    /// Mean number of occurrences per distinct event.
    pub avg_event_occurrences: f64,
    /// Heap bytes held by the columnar event store (arena + CSR offsets) —
    /// makes store-size regressions visible without a profiler. A narrow
    /// (`u16`) arena counts 2 bytes per event.
    pub store_bytes: usize,
    /// Physical size of one event-arena element in bytes: 2 when the
    /// alphabet fits a narrow (`u16`) column, 4 otherwise.
    pub event_elem_bytes: usize,
    /// What `store_bytes` would be at the legacy wide (`u32`) width —
    /// `store_bytes_wide - store_bytes` is the narrow-column saving the
    /// stats CLI prints.
    pub store_bytes_wide: usize,
    /// Number of shards the store is partitioned into (1 for a flat,
    /// unsharded database; [`DatabaseStats::compute`] always reports 1 —
    /// callers holding a sharded store fill it via
    /// [`DatabaseStats::with_shards`]).
    pub num_shards: usize,
}

impl DatabaseStats {
    /// Computes the statistics for `db`.
    pub fn compute(db: &SequenceDatabase) -> Self {
        let mut lengths: Vec<usize> = db.sequences().map(super::store::SeqView::len).collect();
        lengths.sort_unstable();
        let num_sequences = lengths.len();
        let total_length: usize = lengths.iter().sum();
        let mut event_counts: HashMap<EventId, usize> = HashMap::new();
        for sequence in db.sequences() {
            for event in sequence.iter_events() {
                *event_counts.entry(event).or_insert(0) += 1;
            }
        }
        let max_event_occurrences = event_counts.values().copied().max().unwrap_or(0);
        let avg_event_occurrences = if event_counts.is_empty() {
            0.0
        } else {
            total_length as f64 / event_counts.len() as f64
        };
        let median_length = if num_sequences == 0 {
            0.0
        } else if num_sequences % 2 == 1 {
            lengths[num_sequences / 2] as f64
        } else {
            (lengths[num_sequences / 2 - 1] + lengths[num_sequences / 2]) as f64 / 2.0
        };
        Self {
            num_sequences,
            num_events: db.num_events(),
            total_length,
            min_length: lengths.first().copied().unwrap_or(0),
            max_length: lengths.last().copied().unwrap_or(0),
            avg_length: if num_sequences == 0 {
                0.0
            } else {
                total_length as f64 / num_sequences as f64
            },
            median_length,
            max_event_occurrences,
            avg_event_occurrences,
            store_bytes: db.store().heap_bytes(),
            event_elem_bytes: db.store().element_bytes(),
            store_bytes_wide: total_length * 4 + (num_sequences + 1) * 4,
            num_shards: 1,
        }
    }

    /// Marks the statistics as describing a store partitioned into
    /// `num_shards` shards (clamped to at least 1).
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards.max(1);
        self
    }

    /// Renders the statistics as a short single-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} sequences, {} events, total length {}, avg length {:.2}, max length {}",
            self.num_sequences,
            self.num_events,
            self.total_length,
            self.avg_length,
            self.max_length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_running_example() {
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let stats = db.stats();
        assert_eq!(stats.num_sequences, 2);
        assert_eq!(stats.num_events, 4);
        assert_eq!(stats.total_length, 18);
        assert_eq!(stats.min_length, 9);
        assert_eq!(stats.max_length, 9);
        assert!((stats.avg_length - 9.0).abs() < 1e-9);
        assert!((stats.median_length - 9.0).abs() < 1e-9);
        // A and D both occur 5 times.
        assert_eq!(stats.max_event_occurrences, 5);
    }

    #[test]
    fn stats_of_empty_database() {
        let db = SequenceDatabase::new();
        let stats = db.stats();
        assert_eq!(stats.num_sequences, 0);
        assert_eq!(stats.total_length, 0);
        assert_eq!(stats.avg_length, 0.0);
        assert_eq!(stats.max_event_occurrences, 0);
    }

    #[test]
    fn median_with_even_number_of_sequences() {
        let db = SequenceDatabase::from_str_rows(&["A", "AB", "ABC", "ABCD"]);
        let stats = db.stats();
        assert!((stats.median_length - 2.5).abs() < 1e-9);
        assert_eq!(stats.min_length, 1);
        assert_eq!(stats.max_length, 4);
    }

    #[test]
    fn narrow_store_halves_arena_bytes() {
        let mut db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let stats = db.stats();
        assert_eq!(stats.event_elem_bytes, 2);
        assert_eq!(stats.store_bytes, 18 * 2 + 3 * 4);
        assert_eq!(stats.store_bytes_wide, 18 * 4 + 3 * 4);
        db.widen_store();
        let wide = db.stats();
        assert_eq!(wide.event_elem_bytes, 4);
        assert_eq!(wide.store_bytes, wide.store_bytes_wide);
    }

    #[test]
    fn summary_is_human_readable() {
        let db = SequenceDatabase::from_str_rows(&["AB", "BA"]);
        let summary = db.stats().summary();
        assert!(summary.contains("2 sequences"));
        assert!(summary.contains("2 events"));
    }
}
