//! The single-file snapshot image: a versioned, little-endian, 64-byte-
//! aligned on-disk format for the columnar arenas, opened with zero copies.
//!
//! A prepared database is a handful of contiguous arrays (the
//! [`crate::SeqStore`] event arena and CSR offsets, the
//! [`crate::InvertedIndex`] positions arena and
//! per-`(sequence, event)` ranges, the per-event counts, the catalog — see
//! [`crate::SeqStore`], [`crate::InvertedIndex`]). This module serializes
//! those arrays into **one file** and maps them back as borrowed slices, so
//! a cold start is an `mmap` plus one checksum scan instead of re-tokenizing
//! and re-indexing the corpus. `ARCHITECTURE.md` at the repository root
//! walks the format byte by byte.
//!
//! # File layout (versions 1 through 3)
//!
//! The container layout is identical across versions; only the section
//! *composition* differs. Version 1 images carry one global inverted-index
//! pair ([`section_id::INDEX_OFFSETS`] / [`section_id::INDEX_POSITIONS`]);
//! version 2 images carry a [`section_id::SHARD_TABLE`] plus, per shard,
//! local store offsets and an index pair (ids from
//! [`section_id::shard_store_offsets`] and friends), so one file can hand
//! each process — or, later, each node — a shard subset. Version 3 adds
//! **width-tagged event sections**: [`section_id::STORE_EVENTS`] may carry
//! 2-byte elements (a narrow `u16` arena, written when the alphabet fits)
//! — the existing per-section `elem_size` field *is* the width tag, so no
//! new header fields are needed and the narrow arena maps back zero-copy.
//! Old images still open (as a single shard, at the wide `u32` width); the
//! composition rules live in `rgs-core::snapshot`.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     8  magic  "RGS1SNAP"
//!      8     4  format version (u32 LE) = 1, 2, or 3
//!     12     4  endianness marker (u32 LE) = 0x0A0B_0C0D
//!     16     8  file length in bytes (u64 LE)
//!     24     8  FNV-1a 64 checksum (u64 LE) of every file byte EXCEPT
//!               this field itself (bytes [0, 24) and [32, file_len))
//!     32     4  section count (u32 LE)
//!     36    28  reserved, must be zero
//!     64   32n  section table: n entries of
//!               { id: u32, elem_size: u32 (1|2|4|8), offset: u64,
//!                 byte_len: u64, count: u64 }
//!      -     -  section payloads, each starting at a 64-byte-aligned
//!               offset, zero-padded in between
//! ```
//!
//! All integers are little-endian. Payload offsets are 64-byte aligned so
//! that a page-aligned `mmap` (or the 8-byte-aligned read fallback) can
//! reinterpret a `u32`/`u64` section in place, without copying — the
//! alignment is rechecked defensively on every typed access. The checksum
//! makes corruption detection exhaustive: any single bit flip anywhere in
//! the file is rejected with a descriptive [`SnapshotError`] (pinned by
//! `tests/snapshot_corruption.rs`).
//!
//! # Who writes what
//!
//! This module provides the format-level [`SnapshotWriter`] /
//! [`SnapshotImage`] plus the section-id registry ([`section_id`]) for the
//! whole stack. The composition — which sections a prepared database
//! consists of — lives in `rgs-core` (`PreparedDb::write_snapshot` /
//! `PreparedDb::open_snapshot`).

// mmap, the aligned read buffer, and in-place slice reinterpretation are
// inherently `unsafe`; every use carries a local safety argument, and all
// offsets/lengths/alignments are validated against the header first.
#![allow(unsafe_code)]

use std::any::Any;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::cast::{u32_to_usize, u64_to_usize, usize_to_u32, usize_to_u64};
use crate::catalog::{EventCatalog, EventId};
use crate::shared::{event_ids_as_u32s, SharedSlice};

/// The 8-byte magic at offset 0 of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RGS1SNAP";

/// The newest format version this build writes and reads.
///
/// Version 2 adds the shard layer: a [`section_id::SHARD_TABLE`] section
/// with the sequence-boundary partition, per-shard store-offset sections,
/// and per-shard index sections in place of the global index pair. Version
/// 3 adds narrow event columns: [`section_id::STORE_EVENTS`] may carry
/// 2-byte (`u16`) elements when the alphabet fits, tagged by the section's
/// `elem_size` field. Version 1 files (single global index, no shard
/// table) still open — the reader treats them as one shard — and v1/v2
/// event arenas are always 4-byte.
pub const SNAPSHOT_VERSION: u32 = 3;

/// The oldest format version this build still reads.
pub const SNAPSHOT_VERSION_MIN: u32 = 1;

/// Alignment (bytes) of every section payload within the file.
pub const SECTION_ALIGN: u64 = 64;

/// Value of the endianness marker field when read on a matching host.
const ENDIAN_MARKER: u32 = 0x0A0B_0C0D;

/// Byte length of the fixed header.
const HEADER_LEN: u64 = 64;

/// Byte length of one section-table entry.
const ENTRY_LEN: u64 = 32;

/// Well-known section identifiers.
///
/// The format itself is agnostic to ids; this registry fixes what the
/// prepared-database composition in `rgs-core` writes. Ids are stable
/// across versions — new sections get new ids.
pub mod section_id {
    /// `u64` triple `[num_sequences, num_events, total_length]`.
    pub const META: u32 = 1;
    /// The [`SeqStore`](crate::SeqStore) event arena. Element size 4
    /// (`u32` per event) in every version; format v3 additionally allows
    /// element size 2 (`u16` per event) when the alphabet fits a narrow
    /// column — the section's `elem_size` field is the width tag.
    pub const STORE_EVENTS: u32 = 2;
    /// The [`SeqStore`](crate::SeqStore) CSR offsets (`u32`, one per
    /// sequence plus a sentinel).
    pub const STORE_OFFSETS: u32 = 3;
    /// The [`InvertedIndex`](crate::InvertedIndex) CSR offsets (`u32`, one
    /// per `(sequence, event)` slot plus a sentinel).
    pub const INDEX_OFFSETS: u32 = 4;
    /// The [`InvertedIndex`](crate::InvertedIndex) positions arena (`u32`).
    pub const INDEX_POSITIONS: u32 = 5;
    /// The serialized [`EventCatalog`](crate::EventCatalog) (length-prefixed
    /// UTF-8 labels; see [`catalog_to_bytes`](crate::snapshot::catalog_to_bytes)).
    pub const CATALOG: u32 = 6;
    /// Per-event total occurrence counts (`u64`, indexed by event id).
    pub const EVENT_COUNTS: u32 = 7;
    /// The frequency-pruned candidate event order (`u32` event ids).
    pub const EVENT_ORDER: u32 = 8;
    /// Format v2: the [`ShardMap`](crate::ShardMap) boundaries (`u64`, one
    /// per shard plus a sentinel).
    pub const SHARD_TABLE: u32 = 9;

    /// First id of the per-shard section range; shard `k` owns the three
    /// ids `SHARD_BASE + 3k .. SHARD_BASE + 3k + 3`.
    pub const SHARD_BASE: u32 = 0x1000;

    /// Format v2: shard `k`'s local CSR store offsets (`u32`, rebased to
    /// start at 0; the shard's events are a window of
    /// [`STORE_EVENTS`]).
    pub fn shard_store_offsets(k: u32) -> u32 {
        SHARD_BASE + 3 * k
    }

    /// Format v2: shard `k`'s inverted-index CSR offsets (`u32`).
    pub fn shard_index_offsets(k: u32) -> u32 {
        SHARD_BASE + 3 * k + 1
    }

    /// Format v2: shard `k`'s inverted-index positions arena (`u32`).
    pub fn shard_index_positions(k: u32) -> u32 {
        SHARD_BASE + 3 * k + 2
    }

    /// Human-readable name of a well-known section id (for `snapshot info`).
    pub fn name(id: u32) -> &'static str {
        match id {
            META => "meta",
            STORE_EVENTS => "store.events",
            STORE_OFFSETS => "store.offsets",
            INDEX_OFFSETS => "index.offsets",
            INDEX_POSITIONS => "index.positions",
            CATALOG => "catalog",
            EVENT_COUNTS => "event.counts",
            EVENT_ORDER => "event.order",
            SHARD_TABLE => "shard.table",
            id if id >= SHARD_BASE => match (id - SHARD_BASE) % 3 {
                0 => "shard.store.offsets",
                1 => "shard.index.offsets",
                _ => "shard.index.positions",
            },
            _ => "unknown",
        }
    }

    /// The shard number a per-shard section id belongs to, if any.
    pub fn shard_of(id: u32) -> Option<u32> {
        (id >= SHARD_BASE).then(|| (id - SHARD_BASE) / 3)
    }
}

/// Why a snapshot could not be written or opened.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying filesystem error.
    Io(io::Error),
    /// The file is not a valid snapshot: bad magic, failed checksum,
    /// truncation, out-of-bounds or misaligned sections, or inconsistent
    /// content.
    Corrupt(String),
    /// The file is a snapshot, but this build cannot read it (format
    /// version or endianness mismatch).
    Unsupported(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot I/O error: {err}"),
            SnapshotError::Corrupt(detail) => write!(f, "corrupt snapshot: {detail}"),
            SnapshotError::Unsupported(detail) => write!(f, "unsupported snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(err: io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// Shorthand constructor for [`SnapshotError::Corrupt`] — also used by the
/// composition layer in `rgs-core` for its cross-section validation.
pub fn corrupt(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(detail.into())
}

// ---------------------------------------------------------------------------
// FNV-1a 64
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher over raw bytes.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        self.0 = hash;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// The FNV-1a 64 checksum of a whole image, computed exactly as the header
/// records it: every file byte except the checksum field itself (bytes
/// `[24, 32)`). Data shorter than the 32-byte prefix is hashed as-is.
///
/// Exposed for the [`verify`] layer and its mutation-sweep tests, which
/// need to re-seal deliberately corrupted images to tell layout violations
/// apart from checksum failures.
pub fn checksum_of(data: &[u8]) -> u64 {
    let mut hash = Fnv1a::new();
    match (data.get(..24), data.get(32..)) {
        (Some(head), Some(tail)) => {
            hash.update(head);
            hash.update(tail);
        }
        _ => hash.update(data),
    }
    hash.finish()
}

#[path = "snapshot_verify.rs"]
pub mod verify;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// One section's data, borrowed from the caller for the duration of the
/// write. Typed variants serialize as packed little-endian arrays.
#[derive(Debug, Clone, Copy)]
pub enum SectionPayload<'a> {
    /// Raw bytes (`elem_size` 1).
    Bytes(&'a [u8]),
    /// Packed `u16`s (`elem_size` 2) — the narrow event arena of format v3.
    U16s(&'a [u16]),
    /// Packed `u32`s (`elem_size` 4).
    U32s(&'a [u32]),
    /// Packed `u64`s (`elem_size` 8).
    U64s(&'a [u64]),
    /// Packed [`EventId`]s, serialized as their raw `u32`s (`elem_size` 4).
    EventIds(&'a [EventId]),
}

impl SectionPayload<'_> {
    fn elem_size(&self) -> u64 {
        match self {
            SectionPayload::Bytes(_) => 1,
            SectionPayload::U16s(_) => 2,
            SectionPayload::U32s(_) | SectionPayload::EventIds(_) => 4,
            SectionPayload::U64s(_) => 8,
        }
    }

    fn count(&self) -> u64 {
        match self {
            SectionPayload::Bytes(b) => usize_to_u64(b.len()),
            SectionPayload::U16s(v) => usize_to_u64(v.len()),
            SectionPayload::U32s(v) => usize_to_u64(v.len()),
            SectionPayload::U64s(v) => usize_to_u64(v.len()),
            SectionPayload::EventIds(v) => usize_to_u64(v.len()),
        }
    }

    fn byte_len(&self) -> u64 {
        self.count() * self.elem_size()
    }

    /// Writes the payload as little-endian bytes into `out`.
    fn write_le(&self, out: &mut HashingWriter<impl Write>) -> io::Result<()> {
        match self {
            SectionPayload::Bytes(bytes) => out.write_hashed(bytes),
            SectionPayload::U16s(values) => write_u16s_le(values, out),
            SectionPayload::U32s(values) => write_u32s_le(values, out),
            SectionPayload::EventIds(ids) => write_u32s_le(event_ids_as_u32s(ids), out),
            SectionPayload::U64s(values) => write_u64s_le(values, out),
        }
    }
}

#[cfg(target_endian = "little")]
fn write_u16s_le(values: &[u16], out: &mut HashingWriter<impl Write>) -> io::Result<()> {
    // SAFETY: reinterpreting an initialized &[u16] as bytes is always valid;
    // on a little-endian host the in-memory bytes ARE the wire format.
    let bytes =
        unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 2) };
    out.write_hashed(bytes)
}

#[cfg(not(target_endian = "little"))]
fn write_u16s_le(values: &[u16], out: &mut HashingWriter<impl Write>) -> io::Result<()> {
    for value in values {
        out.write_hashed(&value.to_le_bytes())?;
    }
    Ok(())
}

#[cfg(target_endian = "little")]
fn write_u32s_le(values: &[u32], out: &mut HashingWriter<impl Write>) -> io::Result<()> {
    // SAFETY: reinterpreting an initialized &[u32] as bytes is always valid;
    // on a little-endian host the in-memory bytes ARE the wire format.
    let bytes =
        unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 4) };
    out.write_hashed(bytes)
}

#[cfg(not(target_endian = "little"))]
fn write_u32s_le(values: &[u32], out: &mut HashingWriter<impl Write>) -> io::Result<()> {
    for value in values {
        out.write_hashed(&value.to_le_bytes())?;
    }
    Ok(())
}

#[cfg(target_endian = "little")]
fn write_u64s_le(values: &[u64], out: &mut HashingWriter<impl Write>) -> io::Result<()> {
    // SAFETY: as in `write_u32s_le`.
    let bytes =
        unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 8) };
    out.write_hashed(bytes)
}

#[cfg(not(target_endian = "little"))]
fn write_u64s_le(values: &[u64], out: &mut HashingWriter<impl Write>) -> io::Result<()> {
    for value in values {
        out.write_hashed(&value.to_le_bytes())?;
    }
    Ok(())
}

/// A writer that feeds everything it writes into the running checksum.
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }

    /// Writes bytes that are covered by the checksum.
    fn write_hashed(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }

    /// Writes bytes that are excluded from the checksum (the checksum field
    /// itself).
    fn write_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_all(bytes)
    }
}

/// Builds and writes one snapshot image.
///
/// Add sections with [`SnapshotWriter::section`] (ids must be unique), then
/// serialize everything in one pass with [`SnapshotWriter::write_to_path`].
/// Payloads are borrowed, so writing a multi-gigabyte prepared database
/// never copies an arena.
#[derive(Debug)]
pub struct SnapshotWriter<'a> {
    sections: Vec<(u32, SectionPayload<'a>)>,
    version: u32,
}

impl Default for SnapshotWriter<'_> {
    fn default() -> Self {
        Self {
            sections: Vec::new(),
            version: SNAPSHOT_VERSION,
        }
    }
}

impl<'a> SnapshotWriter<'a> {
    /// Creates an empty writer targeting the current format version.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the format version stamped into the header. The payload
    /// layout is entirely the caller's (the format layer is agnostic to
    /// section composition); this exists so compatibility tests and
    /// downgrade tooling can emit version-1 images.
    ///
    /// # Panics
    ///
    /// Panics on a version outside
    /// `[SNAPSHOT_VERSION_MIN, SNAPSHOT_VERSION]`.
    pub fn with_version(mut self, version: u32) -> Self {
        assert!(
            (SNAPSHOT_VERSION_MIN..=SNAPSHOT_VERSION).contains(&version),
            "unsupported snapshot version {version}"
        );
        self.version = version;
        self
    }

    /// Appends a section. Panics on a duplicate id — that is a programming
    /// error in the composition, not a runtime condition.
    pub fn section(&mut self, id: u32, payload: SectionPayload<'a>) -> &mut Self {
        assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "duplicate snapshot section id {id}"
        );
        self.sections.push((id, payload));
        self
    }

    /// Serializes header, section table, and payloads to `path` in one
    /// pass, then patches the checksum into the header. Returns the number
    /// of bytes written.
    ///
    /// The write is **atomic**: everything goes to a temporary file in the
    /// destination's directory, synced, and then renamed over `path`. A
    /// crash or full disk mid-write therefore never destroys a previous
    /// good image — and because the old inode stays alive until unmapped,
    /// it is safe to rebuild a snapshot onto its own source file while
    /// payloads still borrow its mapping.
    pub fn write_to_path(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        // pid + process-wide counter: concurrent writers to the same
        // destination (even from different threads) get distinct temp
        // files, so the last rename wins with a complete image.
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let tmp = std::path::PathBuf::from(tmp);
        let result = self.write_to_tmp(&tmp).and_then(|file_len| {
            std::fs::rename(&tmp, path)?;
            Ok(file_len)
        });
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    fn write_to_tmp(&self, tmp: &Path) -> Result<u64, SnapshotError> {
        // Lay out the file: header, table, then payloads at aligned offsets.
        let table_end = HEADER_LEN + ENTRY_LEN * usize_to_u64(self.sections.len());
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = table_end;
        for (_, payload) in &self.sections {
            cursor = align_up(cursor, SECTION_ALIGN);
            offsets.push(cursor);
            cursor += payload.byte_len();
        }
        let file_len = cursor;

        let file = File::create(tmp)?;
        let mut out = HashingWriter::new(io::BufWriter::new(file));

        // Header. The checksum field is written as a placeholder and patched
        // after the pass; it is the only region excluded from the hash.
        out.write_hashed(&SNAPSHOT_MAGIC)?;
        out.write_hashed(&self.version.to_le_bytes())?;
        out.write_hashed(&ENDIAN_MARKER.to_le_bytes())?;
        out.write_hashed(&file_len.to_le_bytes())?;
        out.write_raw(&0u64.to_le_bytes())?;
        let section_count = usize_to_u32(self.sections.len())
            .ok_or_else(|| corrupt("more than u32::MAX sections"))?;
        out.write_hashed(&section_count.to_le_bytes())?;
        out.write_hashed(&[0u8; 28])?;

        // Section table.
        for ((id, payload), offset) in self.sections.iter().zip(&offsets) {
            out.write_hashed(&id.to_le_bytes())?;
            let elem_size = crate::cast::u64_to_u32(payload.elem_size())
                .ok_or_else(|| corrupt("element size overflows"))?;
            out.write_hashed(&elem_size.to_le_bytes())?;
            out.write_hashed(&offset.to_le_bytes())?;
            out.write_hashed(&payload.byte_len().to_le_bytes())?;
            out.write_hashed(&payload.count().to_le_bytes())?;
        }

        // Payloads, zero-padded to their aligned offsets.
        let mut written = table_end;
        for ((_, payload), offset) in self.sections.iter().zip(&offsets) {
            let pad = u64_to_usize(offset - written)
                .ok_or_else(|| corrupt("section padding exceeds the address space"))?;
            out.write_hashed(&vec![0u8; pad])?;
            payload.write_le(&mut out)?;
            written = offset + payload.byte_len();
        }

        let checksum = out.hash.finish();
        let mut file = out
            .inner
            .into_inner()
            .map_err(|err| SnapshotError::Io(err.into_error()))?;
        file.seek(SeekFrom::Start(24))?;
        file.write_all(&checksum.to_le_bytes())?;
        file.sync_all()?;
        Ok(file_len)
    }
}

fn align_up(value: u64, align: u64) -> u64 {
    value.div_ceil(align) * align
}

// ---------------------------------------------------------------------------
// Image bytes: mmap on unix, aligned read everywhere
// ---------------------------------------------------------------------------

/// A read-only `mmap` of a whole file (64-bit unix only: the extern
/// declaration hardcodes a 64-bit `off_t`, which matches the C ABI only
/// there; 32-bit targets use the read fallback). Unmapped on drop.
#[cfg(all(unix, target_pointer_width = "64", not(miri)))]
mod mapping {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    use core::ffi::c_void;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A page-aligned read-only view of a file, courtesy of the kernel.
    #[derive(Debug)]
    pub struct MmapRegion {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared
    // memory, valid until munmap in Drop.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Maps `len` bytes of `file` read-only. `len` must be non-zero.
        pub fn map(file: &File, len: usize) -> io::Result<Self> {
            debug_assert!(len > 0, "caller rejects empty files first");
            // SAFETY: plain read-only mapping of an open fd; failure is
            // reported as MAP_FAILED (-1) and turned into an io::Error.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.addr() == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len come from a successful mmap that lives until
            // Drop; the mapping is never written.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: exact ptr/len pair returned by mmap.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Fallback storage: the whole file read into one 8-byte-aligned buffer
/// (`Vec<u64>` backing), so typed section access works exactly as it does
/// on a mapping.
#[derive(Debug)]
struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    fn read(file: &mut File, len: usize) -> io::Result<Self> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec<u64> allocation is valid for `len` bytes
        // (len <= words.len() * 8) and u8 has no validity requirements.
        let buf = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(buf)?;
        Ok(Self { words, len })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: as in `read`; every byte was initialized (zeroed, then
        // overwritten by read_exact).
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

#[derive(Debug)]
enum ImageBytes {
    #[cfg(all(unix, target_pointer_width = "64", not(miri)))]
    Mapped(mapping::MmapRegion),
    Owned(AlignedBytes),
}

impl ImageBytes {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64", not(miri)))]
            ImageBytes::Mapped(region) => region.bytes(),
            ImageBytes::Owned(buffer) => buffer.bytes(),
        }
    }
}

// ---------------------------------------------------------------------------
// Image
// ---------------------------------------------------------------------------

/// One entry of the section table, as validated at open time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section identifier (see [`section_id`]).
    pub id: u32,
    /// Bytes per element: 1, 4, or 8.
    pub elem_size: u32,
    /// Byte offset of the payload from the start of the file (64-aligned).
    pub offset: u64,
    /// Exact payload length in bytes (`count * elem_size`).
    pub byte_len: u64,
    /// Number of elements.
    pub count: u64,
}

/// An opened, validated snapshot file: the byte image (mapped or read) plus
/// its parsed section table.
///
/// Opening validates the magic, version, endianness, recorded file length,
/// full-file checksum, and every table entry (bounds, alignment, element
/// size, id uniqueness) before any data is handed out — a snapshot that
/// opens successfully cannot carry a single flipped bit. Typed accessors
/// then reinterpret payloads in place; the
/// [`shared_u32s`](SnapshotImage::shared_u32s) family wraps them as
/// [`SharedSlice`]s that keep the image alive via `Arc`.
#[derive(Debug)]
pub struct SnapshotImage {
    bytes: ImageBytes,
    sections: Vec<SectionEntry>,
    version: u32,
}

impl SnapshotImage {
    /// Opens and fully validates a snapshot file. On unix the file is
    /// `mmap`ed (zero-copy); elsewhere, or when mapping fails, it is read
    /// into one aligned buffer.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        #[cfg(target_endian = "big")]
        {
            return Err(SnapshotError::Unsupported(
                "snapshot images are little-endian; this host is big-endian".to_owned(),
            ));
        }
        #[cfg(not(target_endian = "big"))]
        {
            let mut file = File::open(path)?;
            let actual_len = file.metadata()?.len();
            if actual_len < HEADER_LEN {
                return Err(corrupt(format!(
                    "file is {actual_len} bytes, shorter than the {HEADER_LEN}-byte header"
                )));
            }
            let Some(len) = u64_to_usize(actual_len) else {
                return Err(SnapshotError::Unsupported(
                    "file does not fit in this platform's address space".to_owned(),
                ));
            };

            #[cfg(all(unix, target_pointer_width = "64", not(miri)))]
            let bytes = match mapping::MmapRegion::map(&file, len) {
                Ok(region) => ImageBytes::Mapped(region),
                Err(_) => ImageBytes::Owned(AlignedBytes::read(&mut file, len)?),
            };
            #[cfg(not(all(unix, target_pointer_width = "64", not(miri))))]
            let bytes = ImageBytes::Owned(AlignedBytes::read(&mut file, len)?);

            let (sections, version) = Self::validate(bytes.bytes(), actual_len)?;
            Ok(Self {
                bytes,
                sections,
                version,
            })
        }
    }

    /// Header + table + checksum validation; returns the parsed table and
    /// the format version.
    fn validate(data: &[u8], actual_len: u64) -> Result<(Vec<SectionEntry>, u32), SnapshotError> {
        if data[..8] != SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic: not a snapshot file"));
        }
        let version = read_u32(data, 8);
        if !(SNAPSHOT_VERSION_MIN..=SNAPSHOT_VERSION).contains(&version) {
            return Err(SnapshotError::Unsupported(format!(
                "format version {version}; this build reads versions \
                 {SNAPSHOT_VERSION_MIN} through {SNAPSHOT_VERSION}"
            )));
        }
        let endian = read_u32(data, 12);
        if endian != ENDIAN_MARKER {
            return Err(SnapshotError::Unsupported(format!(
                "endianness marker {endian:#010x} (expected {ENDIAN_MARKER:#010x}); \
                 the file was written on an incompatible host"
            )));
        }
        let recorded_len = read_u64(data, 16);
        if recorded_len != actual_len {
            return Err(corrupt(format!(
                "truncated or padded: header records {recorded_len} bytes, file has {actual_len}"
            )));
        }
        if data[36..64].iter().any(|&b| b != 0) {
            return Err(corrupt("reserved header bytes are not zero"));
        }

        // The checksum covers every byte except its own field, so a flip in
        // any unvalidated region (table, padding, payloads, reserved bits of
        // the header) is still caught here.
        let recorded_checksum = read_u64(data, 24);
        let mut hash = Fnv1a::new();
        hash.update(&data[..24]);
        hash.update(&data[32..]);
        let computed = hash.finish();
        if computed != recorded_checksum {
            return Err(corrupt(format!(
                "checksum mismatch: header records {recorded_checksum:#018x}, \
                 file hashes to {computed:#018x} (bit corruption)"
            )));
        }

        let section_count = u64::from(read_u32(data, 32));
        let table_end = HEADER_LEN
            .checked_add(ENTRY_LEN.checked_mul(section_count).ok_or_else(|| {
                corrupt(format!("section count {section_count} overflows the table"))
            })?)
            .ok_or_else(|| corrupt("section table overflows"))?;
        if table_end > actual_len {
            return Err(corrupt(format!(
                "section table ({section_count} entries) exceeds the file length"
            )));
        }

        let mut sections: Vec<SectionEntry> =
            Vec::with_capacity(u64_to_usize(section_count).unwrap_or(0));
        for i in 0..section_count {
            // In bounds: `table_end <= actual_len` fits usize (checked at open).
            let base = u64_to_usize(HEADER_LEN + i * ENTRY_LEN)
                .ok_or_else(|| corrupt("section table exceeds the address space"))?;
            let entry = SectionEntry {
                id: read_u32(data, base),
                elem_size: read_u32(data, base + 4),
                offset: read_u64(data, base + 8),
                byte_len: read_u64(data, base + 16),
                count: read_u64(data, base + 24),
            };
            if !matches!(entry.elem_size, 1 | 2 | 4 | 8) {
                return Err(corrupt(format!(
                    "section {}: element size {} is not 1, 2, 4, or 8",
                    entry.id, entry.elem_size
                )));
            }
            if !entry.offset.is_multiple_of(SECTION_ALIGN) {
                return Err(corrupt(format!(
                    "section {}: payload offset {} is not {SECTION_ALIGN}-byte aligned",
                    entry.id, entry.offset
                )));
            }
            if entry.offset < table_end {
                return Err(corrupt(format!(
                    "section {}: payload overlaps the header or table",
                    entry.id
                )));
            }
            let end = entry
                .offset
                .checked_add(entry.byte_len)
                .ok_or_else(|| corrupt(format!("section {}: payload overflows", entry.id)))?;
            if end > actual_len {
                return Err(corrupt(format!(
                    "section {}: payload [{}, {end}) exceeds the {actual_len}-byte file",
                    entry.id, entry.offset
                )));
            }
            if entry
                .count
                .checked_mul(u64::from(entry.elem_size))
                .is_none_or(|expected| entry.byte_len != expected)
            {
                return Err(corrupt(format!(
                    "section {}: byte length {} != count {} x element size {}",
                    entry.id, entry.byte_len, entry.count, entry.elem_size
                )));
            }
            if sections.iter().any(|s| s.id == entry.id) {
                return Err(corrupt(format!("duplicate section id {}", entry.id)));
            }
            sections.push(entry);
        }
        Ok((sections, version))
    }

    /// The format version stamped into the header (1 through 3).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The FNV-1a 64 checksum recorded in the header and verified at open
    /// time. Because the image is immutable while mapped, this value is a
    /// stable identity for the corpus bytes — downstream layers (the serve
    /// result cache, `/stats`) reuse it instead of re-hashing the file.
    pub fn checksum(&self) -> u64 {
        read_u64(self.bytes.bytes(), 24)
    }

    /// The validated section table, in file order.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.sections
    }

    /// Looks up a section by id.
    pub fn section(&self, id: u32) -> Option<&SectionEntry> {
        self.sections.iter().find(|entry| entry.id == id)
    }

    fn require(&self, id: u32) -> Result<&SectionEntry, SnapshotError> {
        self.section(id)
            .ok_or_else(|| corrupt(format!("missing section {id} ({})", section_id::name(id))))
    }

    /// Total size of the image in bytes.
    pub fn len_bytes(&self) -> usize {
        self.bytes.bytes().len()
    }

    /// `true` when the image is an `mmap` rather than an in-memory copy.
    pub fn is_mapped(&self) -> bool {
        #[cfg(all(unix, target_pointer_width = "64", not(miri)))]
        {
            matches!(self.bytes, ImageBytes::Mapped(_))
        }
        #[cfg(not(all(unix, target_pointer_width = "64", not(miri))))]
        {
            false
        }
    }

    /// The raw bytes of section `id`.
    pub fn section_bytes(&self, id: u32) -> Result<&[u8], SnapshotError> {
        let entry = self.require(id)?;
        let (Some(start), Some(len)) = (u64_to_usize(entry.offset), u64_to_usize(entry.byte_len))
        else {
            return Err(corrupt(format!(
                "section {id} does not fit in this platform's address space"
            )));
        };
        Ok(&self.bytes.bytes()[start..start + len])
    }

    /// Reinterprets section `id` as `&[T]` in place. `T` is one of the wire
    /// element types (u32/u64); bounds were validated at open, element size
    /// and alignment are rechecked here.
    fn typed<T: Copy>(&self, id: u32) -> Result<&[T], SnapshotError> {
        let entry = self.require(id)?;
        let size = std::mem::size_of::<T>();
        if u32_to_usize(entry.elem_size) != size {
            return Err(corrupt(format!(
                "section {id} ({}) holds {}-byte elements, expected {size}",
                section_id::name(id),
                entry.elem_size
            )));
        }
        let bytes = self.section_bytes(id)?;
        let ptr = bytes.as_ptr();
        if ptr.align_offset(std::mem::align_of::<T>()) != 0 {
            return Err(corrupt(format!(
                "section {id} payload is not aligned for {size}-byte elements"
            )));
        }
        let count = u64_to_usize(entry.count)
            .ok_or_else(|| corrupt(format!("section {id} count overflows usize")))?;
        // SAFETY: bounds validated at open, alignment just checked, u32/u64
        // accept every bit pattern, and the image is immutable while alive.
        Ok(unsafe { std::slice::from_raw_parts(ptr.cast::<T>(), count) })
    }

    /// Section `id` as a borrowed `&[u16]` (a v3 narrow event arena).
    pub fn u16s(&self, id: u32) -> Result<&[u16], SnapshotError> {
        self.typed::<u16>(id)
    }

    /// Section `id` as a borrowed `&[u32]`.
    pub fn u32s(&self, id: u32) -> Result<&[u32], SnapshotError> {
        self.typed::<u32>(id)
    }

    /// Section `id` as a borrowed `&[u64]`.
    pub fn u64s(&self, id: u32) -> Result<&[u64], SnapshotError> {
        self.typed::<u64>(id)
    }

    /// Section `id` as a zero-copy [`SharedSlice<u16>`] that co-owns this
    /// image (a v3 narrow event arena).
    pub fn shared_u16s(self: &Arc<Self>, id: u32) -> Result<SharedSlice<u16>, SnapshotError> {
        let slice = self.u16s(id)?;
        let (ptr, len) = (slice.as_ptr(), slice.len());
        let owner: Arc<dyn Any + Send + Sync> = self.clone();
        // SAFETY: ptr/len were validated by `typed`; the SharedSlice holds
        // the Arc, so the mapping outlives every reader.
        Ok(unsafe { SharedSlice::from_raw_parts(owner, ptr, len) })
    }

    /// Section `id` as a zero-copy [`SharedSlice<u32>`] that co-owns this
    /// image.
    pub fn shared_u32s(self: &Arc<Self>, id: u32) -> Result<SharedSlice<u32>, SnapshotError> {
        let slice = self.u32s(id)?;
        let (ptr, len) = (slice.as_ptr(), slice.len());
        let owner: Arc<dyn Any + Send + Sync> = self.clone();
        // SAFETY: ptr/len were validated by `typed`; the SharedSlice holds
        // the Arc, so the mapping outlives every reader.
        Ok(unsafe { SharedSlice::from_raw_parts(owner, ptr, len) })
    }

    /// Section `id` as a zero-copy [`SharedSlice<u64>`].
    pub fn shared_u64s(self: &Arc<Self>, id: u32) -> Result<SharedSlice<u64>, SnapshotError> {
        let slice = self.u64s(id)?;
        let (ptr, len) = (slice.as_ptr(), slice.len());
        let owner: Arc<dyn Any + Send + Sync> = self.clone();
        // SAFETY: as in `shared_u32s`.
        Ok(unsafe { SharedSlice::from_raw_parts(owner, ptr, len) })
    }

    /// Section `id` as a zero-copy [`SharedSlice<EventId>`] (the wire format
    /// stores raw `u32` ids; `EventId` is `repr(transparent)` over `u32`).
    pub fn shared_event_ids(
        self: &Arc<Self>,
        id: u32,
    ) -> Result<SharedSlice<EventId>, SnapshotError> {
        let slice = self.u32s(id)?;
        let (ptr, len) = (slice.as_ptr().cast::<EventId>(), slice.len());
        let owner: Arc<dyn Any + Send + Sync> = self.clone();
        // SAFETY: as in `shared_u32s`, plus EventId is repr(transparent)
        // over u32, so the cast preserves layout and validity.
        Ok(unsafe { SharedSlice::from_raw_parts(owner, ptr, len) })
    }
}

fn read_u32(data: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes"))
}

fn read_u64(data: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(data[offset..offset + 8].try_into().expect("8 bytes"))
}

// ---------------------------------------------------------------------------
// Catalog codec
// ---------------------------------------------------------------------------

/// Serializes an [`EventCatalog`] for the [`section_id::CATALOG`] section:
/// a `u32` label count followed by, per label in id order, a `u32` byte
/// length and the UTF-8 bytes. Labels are owned data either way — unlike
/// the arenas, the catalog is copied out of the image on open (it is tiny
/// next to the event data, and the id→label vector plus the label→id map
/// want owned strings anyway).
pub fn catalog_to_bytes(catalog: &EventCatalog) -> Vec<u8> {
    let mut out = Vec::new();
    let count = usize_to_u32(catalog.len()).expect("catalog label count fits u32");
    out.extend_from_slice(&count.to_le_bytes());
    for (_, label) in catalog.iter() {
        let len = usize_to_u32(label.len()).expect("catalog label length fits u32");
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(label.as_bytes());
    }
    out
}

/// Deserializes the [`section_id::CATALOG`] section. Rejects truncated
/// data, invalid UTF-8, trailing garbage, and duplicate labels (which would
/// silently renumber every event).
pub fn catalog_from_bytes(bytes: &[u8]) -> Result<EventCatalog, SnapshotError> {
    let mut cursor = 0usize;
    let mut take = |n: usize| -> Result<&[u8], SnapshotError> {
        let end = cursor
            .checked_add(n)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| corrupt("catalog section is truncated"))?;
        let slice = &bytes[cursor..end];
        cursor = end;
        Ok(slice)
    };
    let count = u32_to_usize(u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")));
    let mut catalog = EventCatalog::new();
    for i in 0..count {
        let len = u32_to_usize(u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")));
        let label = std::str::from_utf8(take(len)?)
            .map_err(|_| corrupt(format!("catalog label {i} is not valid UTF-8")))?;
        catalog.intern(label);
        if catalog.len() != i + 1 {
            return Err(corrupt(format!(
                "catalog label {i} ({label:?}) is a duplicate"
            )));
        }
    }
    if cursor != bytes.len() {
        return Err(corrupt(format!(
            "catalog section has {} trailing bytes",
            bytes.len() - cursor
        )));
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("seqdb-snapshot-{}-{tag}.bin", std::process::id()))
    }

    fn sample_file(tag: &str) -> std::path::PathBuf {
        let path = temp_path(tag);
        let mut writer = SnapshotWriter::new();
        let words = [1u64, 2, 3];
        writer.section(section_id::META, SectionPayload::U64s(&words));
        writer.section(7, SectionPayload::U32s(&[10, 20, 30, 40]));
        writer.section(9, SectionPayload::Bytes(b"hello"));
        writer.section(11, SectionPayload::EventIds(&[EventId(5), EventId(6)]));
        writer.write_to_path(&path).expect("write snapshot");
        path
    }

    #[test]
    fn round_trip_preserves_every_section() {
        let path = sample_file("roundtrip");
        let image = Arc::new(SnapshotImage::open(&path).expect("open"));
        assert_eq!(image.sections().len(), 4);
        assert_eq!(image.u64s(section_id::META).unwrap(), &[1, 2, 3]);
        assert_eq!(image.u32s(7).unwrap(), &[10, 20, 30, 40]);
        assert_eq!(image.section_bytes(9).unwrap(), b"hello");
        let ids = image.shared_event_ids(11).unwrap();
        assert_eq!(&ids[..], &[EventId(5), EventId(6)]);
        let shared = image.shared_u32s(7).unwrap();
        assert!(shared.is_mapped());
        assert_eq!(&shared[..], &[10, 20, 30, 40]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn u16_sections_round_trip_zero_copy() {
        let path = temp_path("u16");
        let narrow = [7u16, 0, 65_535, 42];
        let mut writer = SnapshotWriter::new();
        writer.section(section_id::STORE_EVENTS, SectionPayload::U16s(&narrow));
        writer.write_to_path(&path).expect("write snapshot");

        let image = Arc::new(SnapshotImage::open(&path).expect("open"));
        let entry = image.section(section_id::STORE_EVENTS).unwrap();
        assert_eq!(entry.elem_size, 2);
        assert_eq!(entry.byte_len, 8);
        assert_eq!(image.u16s(section_id::STORE_EVENTS).unwrap(), &narrow);
        let shared = image.shared_u16s(section_id::STORE_EVENTS).unwrap();
        assert!(shared.is_mapped());
        assert_eq!(&shared[..], &narrow);
        // A u16 section is not a u32 section.
        assert!(image.u32s(section_id::STORE_EVENTS).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_slices_keep_the_image_alive() {
        let path = sample_file("keepalive");
        let shared = {
            let image = Arc::new(SnapshotImage::open(&path).expect("open"));
            image.shared_u32s(7).unwrap()
        };
        // The Arc<SnapshotImage> went out of scope; the slice still reads.
        assert_eq!(&shared[..], &[10, 20, 30, 40]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_offsets_are_aligned() {
        let path = sample_file("aligned");
        let image = SnapshotImage::open(&path).expect("open");
        for entry in image.sections() {
            assert_eq!(entry.offset % SECTION_ALIGN, 0, "{entry:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_mistyped_sections_error() {
        let path = sample_file("missing");
        let image = SnapshotImage::open(&path).expect("open");
        assert!(matches!(image.u32s(99), Err(SnapshotError::Corrupt(_))));
        // Section 7 holds u32s; asking for u64s must fail loudly.
        assert!(matches!(image.u64s(7), Err(SnapshotError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn catalog_codec_round_trips_and_rejects_garbage() {
        let catalog = EventCatalog::from_labels(["lock", "unlock", "naïve-label"]);
        let bytes = catalog_to_bytes(&catalog);
        let back = catalog_from_bytes(&bytes).expect("round trip");
        assert_eq!(back, catalog);

        assert!(catalog_from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(catalog_from_bytes(&trailing).is_err());
        let dup = catalog_to_bytes(&EventCatalog::from_labels(["a", "b"]));
        let mut dup_bytes = dup.clone();
        // Rewrite label 1 ("b") to "a" to forge a duplicate.
        let pos = dup_bytes.len() - 1;
        dup_bytes[pos] = b'a';
        assert!(catalog_from_bytes(&dup_bytes).is_err());
    }

    #[test]
    fn empty_writer_produces_a_valid_header_only_image() {
        let path = temp_path("empty");
        SnapshotWriter::new().write_to_path(&path).expect("write");
        let image = SnapshotImage::open(&path).expect("open");
        assert!(image.sections().is_empty());
        assert_eq!(image.len_bytes(), 64);
        std::fs::remove_file(&path).ok();
    }
}
