//! Event interning: mapping between human-readable event labels and dense
//! integer identifiers.
//!
//! The mining algorithms never look at event labels; they operate on
//! [`EventId`]s (dense `u32`s). The [`EventCatalog`] owns the bidirectional
//! mapping and is stored alongside the sequences inside a
//! [`SequenceDatabase`](crate::SequenceDatabase).

use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an event (an element of the alphabet `E`).
///
/// Identifiers are assigned in first-seen order starting from `0`, so a
/// catalog with `n` distinct events uses exactly the ids `0..n`. This makes
/// it possible to use plain vectors indexed by event id in hot paths.
///
/// The type is `repr(transparent)` over `u32`: an `&[EventId]` has the
/// exact layout of an `&[u32]`, which is what lets the
/// [`snapshot`](crate::snapshot) layer serialize event arenas as plain
/// `u32` sections and map them back without copying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct EventId(pub u32);

impl EventId {
    /// Returns the id as a `usize`, convenient for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EventId {
    fn from(value: u32) -> Self {
        EventId(value)
    }
}

/// Bidirectional mapping between event labels and [`EventId`]s.
///
/// Interning is append-only: once a label has been assigned an id, the id
/// never changes. Lookup by label is `O(1)` (hash map); lookup by id is
/// `O(1)` (vector index).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCatalog {
    labels: Vec<String>,
    by_label: HashMap<String, EventId>,
}

impl EventCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog pre-populated with `labels`, in order.
    ///
    /// Duplicate labels are interned once; the returned catalog therefore may
    /// contain fewer entries than `labels.len()`.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut catalog = Self::new();
        for label in labels {
            catalog.intern(label.as_ref());
        }
        catalog
    }

    /// Interns `label`, returning its id. Returns the existing id if the
    /// label was interned before.
    pub fn intern(&mut self, label: &str) -> EventId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = EventId(
            crate::cast::usize_to_u32(self.labels.len()).expect("more than u32::MAX event labels"),
        );
        self.labels.push(label.to_owned());
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Returns the id of `label` if it has been interned.
    pub fn id(&self, label: &str) -> Option<EventId> {
        self.by_label.get(label).copied()
    }

    /// Returns the label of `id`, or `None` if the id is out of range.
    pub fn label(&self, id: EventId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Returns the label of `id`, falling back to the `e<id>` notation when
    /// the id is unknown (useful for display of synthetic ids).
    pub fn label_or_default(&self, id: EventId) -> String {
        self.label(id)
            .map(str::to_owned)
            .unwrap_or_else(|| id.to_string())
    }

    /// Number of distinct events interned so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when no event has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over `(id, label)` pairs in id order.
    // `intern` bounds the catalog to u32::MAX labels, so `i` always fits.
    #[allow(clippy::cast_possible_truncation)]
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (EventId(i as u32), l.as_str()))
    }

    /// All ids currently in the catalog, in ascending order.
    // `intern` bounds the catalog to u32::MAX labels, so `len` always fits.
    #[allow(clippy::cast_possible_truncation)]
    pub fn ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.labels.len() as u32).map(EventId)
    }

    /// Renders a pattern (a slice of event ids) with this catalog's labels,
    /// joined by `sep`.
    pub fn render(&self, pattern: &[EventId], sep: &str) -> String {
        pattern
            .iter()
            .map(|&e| self.label_or_default(e))
            .collect::<Vec<_>>()
            .join(sep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_first_seen_order() {
        let mut catalog = EventCatalog::new();
        assert_eq!(catalog.intern("A"), EventId(0));
        assert_eq!(catalog.intern("B"), EventId(1));
        assert_eq!(catalog.intern("A"), EventId(0));
        assert_eq!(catalog.intern("C"), EventId(2));
        assert_eq!(catalog.len(), 3);
    }

    #[test]
    fn lookup_by_label_and_id_are_inverse() {
        let catalog = EventCatalog::from_labels(["lock", "unlock", "commit"]);
        for (id, label) in catalog.iter() {
            assert_eq!(catalog.id(label), Some(id));
            assert_eq!(catalog.label(id), Some(label));
        }
    }

    #[test]
    fn from_labels_deduplicates() {
        let catalog = EventCatalog::from_labels(["A", "B", "A", "B", "C"]);
        assert_eq!(catalog.len(), 3);
        assert_eq!(catalog.id("C"), Some(EventId(2)));
    }

    #[test]
    fn unknown_lookups_return_none() {
        let catalog = EventCatalog::from_labels(["A"]);
        assert_eq!(catalog.id("Z"), None);
        assert_eq!(catalog.label(EventId(7)), None);
        assert_eq!(catalog.label_or_default(EventId(7)), "e7");
    }

    #[test]
    fn render_joins_labels() {
        let catalog = EventCatalog::from_labels(["A", "B", "C"]);
        let pattern = vec![EventId(0), EventId(2), EventId(1)];
        assert_eq!(catalog.render(&pattern, ""), "ACB");
        assert_eq!(catalog.render(&pattern, " -> "), "A -> C -> B");
    }

    #[test]
    fn display_of_event_id_uses_e_prefix() {
        assert_eq!(EventId(42).to_string(), "e42");
    }

    #[test]
    fn empty_catalog_reports_empty() {
        let catalog = EventCatalog::new();
        assert!(catalog.is_empty());
        assert_eq!(catalog.ids().count(), 0);
    }
}
