//! Event-column element widths: the u16/u32 axis of the storage layer.
//!
//! The paper's workloads live on small alphabets (Gazelle ~1.4k items,
//! TCAS ~80 events), so the flat event arena of a
//! [`SeqStore`](crate::SeqStore) rarely needs all 32 bits of an
//! [`EventId`]. This module defines the [`EventWidth`] trait — the two
//! physical element types an event column may use — so storage code can be
//! written once, monomorphized per width, and always compare events at
//! their *native* width (no per-element widening inside scans).
//!
//! Only the **store's event column** narrows. CSR offsets and the inverted
//! index's posting rows stay `u32`: positions index into sequences (not the
//! alphabet) and the growth kernel consumes them as `&[u32]` regardless of
//! how the arena is stored.

use crate::catalog::EventId;

/// Largest event id a narrow (`u16`) column can hold: `u16::MAX`.
pub const NARROW_MAX_EVENT: u32 = 65_535;

/// A physical element type for the event column: narrow `u16` or wide
/// `u32` (via the transparent [`EventId`] newtype).
///
/// The trait is deliberately tiny — a width tag plus lossless conversions
/// to and from [`EventId`] — so generic column code monomorphizes into the
/// same machine loops a hand-written `&[u16]` / `&[u32]` version would get.
pub trait EventWidth: Copy + Eq + Ord + Send + Sync + std::fmt::Debug + 'static {
    /// Size of one element in bytes (2 or 4).
    const BYTES: usize;
    /// Human-readable width name, as printed by `rgs-mine stats` and
    /// `snapshot info` ("u16" / "u32").
    const NAME: &'static str;

    /// Widens this element to the logical [`EventId`]. Always lossless.
    fn to_event(self) -> EventId;

    /// Narrows an [`EventId`] to this width, or `None` when it does not
    /// fit (only possible for `u16`).
    fn from_event(event: EventId) -> Option<Self>;
}

impl EventWidth for u16 {
    const BYTES: usize = 2;
    const NAME: &'static str = "u16";

    #[inline]
    fn to_event(self) -> EventId {
        EventId(u32::from(self))
    }

    #[inline]
    fn from_event(event: EventId) -> Option<Self> {
        u16::try_from(event.0).ok()
    }
}

impl EventWidth for EventId {
    const BYTES: usize = 4;
    const NAME: &'static str = "u32";

    #[inline]
    fn to_event(self) -> EventId {
        self
    }

    #[inline]
    fn from_event(event: EventId) -> Option<Self> {
        Some(event)
    }
}

/// Returns `true` when every id below `num_events` fits a narrow column.
///
/// Alphabets are dense (`EventId`s are interned consecutively from 0), so
/// the whole-alphabet check is a single comparison against the catalog
/// size rather than a scan of the arena.
#[inline]
pub fn alphabet_fits_narrow(num_events: usize) -> bool {
    // `num_events` ids occupy 0..num_events, so the largest is num_events-1.
    num_events <= crate::cast::u32_to_usize(NARROW_MAX_EVENT) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_round_trips_within_range() {
        assert_eq!(u16::from_event(EventId(0)), Some(0u16));
        assert_eq!(u16::from_event(EventId(65_535)), Some(u16::MAX));
        assert_eq!(u16::from_event(EventId(65_536)), None);
        assert_eq!(7u16.to_event(), EventId(7));
    }

    #[test]
    fn wide_conversions_are_identity() {
        let e = EventId(u32::MAX);
        assert_eq!(EventId::from_event(e), Some(e));
        assert_eq!(e.to_event(), e);
    }

    #[test]
    fn alphabet_fit_boundary() {
        assert!(alphabet_fits_narrow(0));
        assert!(alphabet_fits_narrow(65_536));
        assert!(!alphabet_fits_narrow(65_537));
    }

    #[test]
    fn width_constants() {
        assert_eq!(<u16 as EventWidth>::BYTES, 2);
        assert_eq!(<EventId as EventWidth>::BYTES, 4);
        assert_eq!(<u16 as EventWidth>::NAME, "u16");
        assert_eq!(<EventId as EventWidth>::NAME, "u32");
    }
}
