//! SIMD/SWAR batched posting probes: the [`MultiCursor`] behind the
//! vectorized growth kernels, plus kernel-backend detection.
//!
//! A [`PostingCursor`](crate::PostingCursor) answers one monotone
//! `next_after(lowest)` probe at a time. One growth pass, however, extends a
//! whole *run* of instances against the same `(sequence, event)` posting
//! row, and the successive bounds along that run are non-decreasing — so up
//! to [`MAX_LANES`] probes can be answered in one sweep over the row. The
//! [`MultiCursor`] does exactly that: it resolves a row once and turns a
//! batch of sorted bounds into absolute *partition points* (`pp(t)` = number
//! of row positions `<= t`), from which the kernels in `rgs-core` rebuild
//! the scalar cursor's answers bit-for-bit (see `core::kernel` for the
//! fix-up chains that re-introduce the per-instance watermark).
//!
//! The inner primitive is `count_le_from`: count the row elements `<= t`
//! starting at a resume index, scanning forward in vector-width chunks with
//! a branchless compare-and-popcount per chunk and an early exit on the
//! first chunk that contains an element `> t` (the row is sorted, so every
//! later element is `> t` too). Four interchangeable backends implement it:
//!
//! * **`avx2`** — 8 x `u32` lanes per 256-bit compare (16 x `u16` when the
//!   row packs narrow), behind runtime detection;
//! * **`sse2`** — 4 x `u32` lanes per 128-bit compare (8 x `u16` packed
//!   narrow), always available on `x86_64`;
//! * **`swar`** — portable `u64` SWAR: 4 x `u16` or 2 x `u32` lanes per
//!   64-bit word using the carry-trick unsigned compare, no intrinsics;
//! * **`scalar`** — `partition_point` on the remaining suffix, the pinned
//!   reference the other three must match exactly.
//!
//! On top of the counting primitive sits the whole-batch fast path
//! [`gt_mask8`]: one vector compare of the next [`MAX_LANES`] row positions
//! against a full batch of lane bounds. When every lane passes, the growth
//! kernels prove (see `core::kernel`) that the serial watermark chain
//! dominates every lane's partition point, so the whole batch advances
//! through consecutive row slots — eight probes collapse into a single
//! 256-bit (or two 128-bit) compare with no per-lane search at all. That
//! is the common case on dense rows and the source of the vectorized
//! kernels' speedup; the counting sweep is the general-case fallback.
//!
//! Backend choice is a process-wide property ([`active_backend`]): runtime
//! CPU detection via `is_x86_feature_detected!`, overridable by the
//! `RGS_FORCE_SCALAR` environment variable (any value but `0`) or
//! programmatically by [`force_backend`] — the override keeps the scalar
//! kernels first-class so scalar/vector equivalence is testable on every
//! machine. All four backends are bit-identical by contract; the adversarial
//! suite in `tests/posting_cursor.rs` pins them against each other and
//! against the naive probe on seeded rows.

// This is the third module (after `shared` and `snapshot`) that opts in to
// `unsafe`: x86 intrinsics and their raw-pointer vector loads. Safety
// arguments are local and documented on every block, and the xtask audit
// enforces `// SAFETY:` on each unsafe block and `#[target_feature]` fn.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Maximum number of probes one [`MultiCursor::partition_points`] batch
/// answers — sized so a whole batch of `u32` bounds fits one 256-bit lane.
pub const MAX_LANES: usize = 8;

/// The compare-and-count implementation the growth kernels run on.
///
/// Ordered fastest-first; [`active_backend`] picks the best one the CPU
/// supports. Every backend produces bit-identical results — the choice is
/// purely a throughput decision, which is what makes [`force_backend`] and
/// the `RGS_FORCE_SCALAR` override safe to flip at any time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// 256-bit AVX2 compares (8 x `u32` / 16 x packed `u16` lanes).
    Avx2,
    /// 128-bit SSE2 compares (4 x `u32` / 8 x packed `u16` lanes);
    /// baseline on `x86_64`.
    Sse2,
    /// Portable `u64` SWAR compares (2 x `u32` / 4 x `u16` lanes); the
    /// non-x86 fallback, no intrinsics.
    Swar,
    /// One `partition_point` per probe — the pinned reference path.
    Scalar,
}

impl KernelBackend {
    /// The lowercase name reported in stats and bench JSON
    /// (`avx2`/`sse2`/`swar`/`scalar`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Avx2 => "avx2",
            Self::Sse2 => "sse2",
            Self::Swar => "swar",
            Self::Scalar => "scalar",
        }
    }

    /// All backends, fastest first.
    pub fn all() -> [Self; 4] {
        [Self::Avx2, Self::Sse2, Self::Swar, Self::Scalar]
    }

    /// Whether this process can actually execute the backend. `Swar` and
    /// `Scalar` run everywhere; the x86 backends require the matching
    /// instruction set (SSE2 is part of the `x86_64` baseline, AVX2 is
    /// runtime-detected).
    pub fn is_available(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Self::Sse2 => true,
            #[cfg(not(target_arch = "x86_64"))]
            Self::Avx2 | Self::Sse2 => false,
            Self::Swar | Self::Scalar => true,
        }
    }

    /// This backend if the CPU supports it, otherwise the fastest available
    /// one. [`MultiCursor`] routes every requested backend through this so
    /// a forced-but-unsupported choice degrades instead of faulting.
    pub fn available_or_best(self) -> Self {
        if self.is_available() {
            self
        } else {
            detect_hardware()
        }
    }

    fn encode(self) -> u8 {
        match self {
            Self::Avx2 => 1,
            Self::Sse2 => 2,
            Self::Swar => 3,
            Self::Scalar => 4,
        }
    }

    fn decode(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Avx2),
            2 => Some(Self::Sse2),
            3 => Some(Self::Swar),
            4 => Some(Self::Scalar),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Programmatic override slot: 0 = none, else `KernelBackend::encode + 0`.
static FORCED: AtomicU8 = AtomicU8::new(0);
/// The environment + CPU decision, computed once per process.
static DETECTED: OnceLock<KernelBackend> = OnceLock::new();
/// Human-readable CPU feature summary, computed once per process.
static FEATURES: OnceLock<String> = OnceLock::new();

/// The fastest backend this CPU can execute, ignoring every override.
fn detect_hardware() -> KernelBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            KernelBackend::Avx2
        } else {
            KernelBackend::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        KernelBackend::Swar
    }
}

fn detect() -> KernelBackend {
    if std::env::var_os("RGS_FORCE_SCALAR").is_some_and(|v| v != "0") {
        return KernelBackend::Scalar;
    }
    detect_hardware()
}

/// The backend the growth kernels dispatch on right now: the
/// [`force_backend`] override if one is set, else the once-per-process
/// decision (`RGS_FORCE_SCALAR` environment override, then CPU detection).
pub fn active_backend() -> KernelBackend {
    KernelBackend::decode(FORCED.load(Ordering::Relaxed))
        .unwrap_or_else(|| *DETECTED.get_or_init(detect))
}

/// Forces every subsequent [`active_backend`] call to report `backend`
/// (clamped to an available one), or clears the override with `None`.
///
/// This is the programmatic twin of the `RGS_FORCE_SCALAR` environment
/// variable: the equivalence suites use it to run the same mining pass
/// under two backends in one process, and the bench harness uses it to
/// measure the scalar path on vector-capable hardware. Because all
/// backends are bit-identical, flipping the override concurrently with
/// running kernels changes throughput only, never results.
pub fn force_backend(backend: Option<KernelBackend>) {
    let code = backend.map_or(0, |b| b.available_or_best().encode());
    FORCED.store(code, Ordering::Relaxed);
}

/// The CPU features relevant to kernel dispatch that this process detected
/// at startup, as a space-separated list (for example `"sse2 avx2"`), or
/// `"portable"` off x86. Reported in `rgs-mine stats`, the serve `/stats`
/// endpoint, and `BENCH_growth_kernel.json` so cross-machine numbers stop
/// being ambiguous.
pub fn detected_features() -> &'static str {
    FEATURES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let mut features = String::from("sse2");
            if std::arch::is_x86_feature_detected!("avx2") {
                features.push_str(" avx2");
            }
            features
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            String::from("portable")
        }
    })
}

/// A resolved posting row answering batches of monotone probes — the
/// vectorized sibling of [`PostingCursor`](crate::PostingCursor).
///
/// Like the scalar cursor it exploits the run invariant (successive bounds
/// never decrease) to scan the row strictly forward: `base` is the number
/// of positions already known `<= ` every future bound, and each batch
/// resumes counting there. Unlike the scalar cursor it answers in
/// *absolute partition points* rather than positions, because the growth
/// kernels need the index form to thread their per-instance watermark
/// through a batch (see `core::kernel`). [`MultiCursor::next_after_batch`]
/// is the position-form convenience the property suite pins directly
/// against [`PostingCursor::next_after`](crate::PostingCursor::next_after).
#[derive(Debug, Clone)]
pub struct MultiCursor<'a> {
    /// The full posting row (1-based positions, strictly ascending).
    row: &'a [u32],
    /// Resume index: every element below it is known `<= ` all future
    /// probe bounds, so counting restarts here. Never decreases.
    base: usize,
    /// The compare backend, guaranteed executable on this CPU.
    backend: KernelBackend,
}

impl<'a> MultiCursor<'a> {
    /// Wraps a sorted posting row, dispatching on [`active_backend`].
    #[inline]
    pub fn new(row: &'a [u32]) -> Self {
        Self::with_backend(row, active_backend())
    }

    /// Wraps a sorted posting row with an explicit backend (clamped to an
    /// available one — requesting AVX2 on a CPU without it silently uses
    /// the best supported path, which is bit-identical anyway).
    #[inline]
    pub fn with_backend(row: &'a [u32], backend: KernelBackend) -> Self {
        Self {
            row,
            base: 0,
            backend: backend.available_or_best(),
        }
    }

    /// The wrapped row.
    #[inline]
    pub fn row(&self) -> &'a [u32] {
        self.row
    }

    /// The current resume index (number of positions permanently skipped).
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// The backend this cursor compares with (after availability clamping).
    #[inline]
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Advances the resume index. The caller asserts that every row element
    /// below `base` is `<= ` every future probe bound — the unconstrained
    /// kernel uses this to fold its consuming watermark into the cursor
    /// (the emitted index + 1 always dominates the batch's last partition
    /// point). Moving backwards is a contract violation and is ignored.
    #[inline]
    pub fn set_base(&mut self, base: usize) {
        debug_assert!(
            base >= self.base,
            "MultiCursor base must not move backwards ({base} after {})",
            self.base
        );
        self.base = base.max(self.base).min(self.row.len());
    }

    /// The next [`MAX_LANES`] row positions at the resume index as a full
    /// vector lane array, or `None` when fewer than a whole window
    /// remains. This is the operand of the growth kernels' whole-batch
    /// fast path: one [`gt_mask8`] compare of a gathered bound batch
    /// against this window decides how many leading lanes advance through
    /// consecutive row slots with no per-lane search at all
    /// (`core::kernel` carries the induction proof).
    #[inline]
    #[must_use]
    pub fn window(&self) -> Option<&'a [u32; MAX_LANES]> {
        self.row
            .get(self.base..self.base.checked_add(MAX_LANES)?)?
            .try_into()
            .ok()
    }

    /// Answers up to [`MAX_LANES`] probes in one forward sweep: writes the
    /// absolute partition point `pp(t)` (number of row positions `<= t`,
    /// clamped to at least the resume index) for each bound into `out`, and
    /// advances the resume index to the last batch member's partition
    /// point. Returns the number of lanes written.
    ///
    /// Bounds must be non-decreasing (the run invariant); each lane resumes
    /// the count where the previous lane stopped, so a whole batch costs
    /// one monotone pass over the row regardless of lane count. The clamp
    /// to the resume index is exact whenever the caller's contract holds
    /// (`base <= pp(t)` for every future `t`), and deliberately saturating
    /// when a kernel has already consumed past `pp(t)` — the kernels take
    /// `max(watermark, pp)` anyway, so a clamped value never changes their
    /// answer (pinned by the equivalence suites).
    #[inline]
    pub fn partition_points(&mut self, bounds: &[u32], out: &mut [usize; MAX_LANES]) -> usize {
        debug_assert!(bounds.len() <= MAX_LANES, "at most {MAX_LANES} lanes");
        debug_assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "MultiCursor bounds must be non-decreasing"
        );
        let mut from = self.base;
        let lanes = bounds.len().min(MAX_LANES);
        for (&t, slot) in bounds.iter().zip(out.iter_mut()).take(lanes) {
            from += count_le_from(self.row, from, t, self.backend);
            *slot = from;
        }
        self.base = from;
        lanes
    }

    /// Position-form convenience over [`Self::partition_points`]: the
    /// smallest row position `> bound` for each non-decreasing bound, or
    /// `None` where the row is exhausted — exactly what a fresh
    /// [`PostingCursor`](crate::PostingCursor) answers for the same probe
    /// chain, pinned by the seeded property suite.
    #[inline]
    pub fn next_after_batch(
        &mut self,
        bounds: &[u32],
        out: &mut [Option<u32>; MAX_LANES],
    ) -> usize {
        let mut points = [0usize; MAX_LANES];
        let lanes = self.partition_points(bounds, &mut points);
        for (slot, &pp) in out.iter_mut().zip(points.iter()).take(lanes) {
            *slot = self.row.get(pp).copied();
        }
        lanes
    }
}

/// Counts the elements of `row[from..]` that are `<= bound`, early-exiting
/// at the first element `> bound` (sound because rows are sorted). This is
/// the primitive every backend implements; the scalar arm is the reference
/// the vector arms must match bit-for-bit.
#[inline]
fn count_le_from(row: &[u32], from: usize, bound: u32, backend: KernelBackend) -> usize {
    let rest = row.get(from..).unwrap_or(&[]);
    // The scalar cursor's two-compare shortcut, shared by every backend:
    // mid-run probes overwhelmingly advance by 0 or 1 positions, and one
    // or two compares answer those outright.
    match rest.first() {
        None => return 0,
        Some(&head) if head > bound => return 0,
        _ => {}
    }
    if rest.get(1).is_none_or(|&next| next > bound) {
        return 1;
    }
    if rest.len() < 16 {
        // Too short for the vector sweep to beat a branch-free binary
        // search — and short suffixes would pay the dispatch (the AVX2 arm
        // is an outlined call: `#[target_feature]` blocks inlining into
        // baseline code) without ever filling a vector step.
        return count_le_scalar(rest, bound);
    }
    match backend {
        KernelBackend::Scalar => count_le_scalar(rest, bound),
        KernelBackend::Swar => count_le_swar(rest, bound),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline instruction set, so
        // the target-feature function is always executable here.
        KernelBackend::Sse2 => unsafe { count_le_sse2(rest, bound) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `MultiCursor::with_backend` clamps the backend through
        // `available_or_best`, so Avx2 here implies
        // `is_x86_feature_detected!("avx2")` returned true in this process.
        KernelBackend::Avx2 => unsafe { count_le_avx2(rest, bound) },
        #[cfg(not(target_arch = "x86_64"))]
        // Unreachable after availability clamping; keep it total and
        // bit-identical rather than panicking in a hot path.
        KernelBackend::Sse2 | KernelBackend::Avx2 => count_le_swar(rest, bound),
    }
}

/// Reference implementation: one branch-free `partition_point` over the
/// remaining suffix. Every vector backend below must return exactly this.
#[inline]
fn count_le_scalar(rest: &[u32], bound: u32) -> usize {
    rest.partition_point(|&p| p <= bound)
}

/// Reinterpret a `u32` bit pattern as `i32` (what the x86 compare
/// intrinsics take) without a lossy-looking `as` cast.
#[cfg(target_arch = "x86_64")]
#[inline]
fn bits_i32(x: u32) -> i32 {
    i32::from_ne_bytes(x.to_ne_bytes())
}

/// Reinterpret an `i32` movemask result (always non-negative here) as
/// `u32` for popcounts.
#[cfg(target_arch = "x86_64")]
#[inline]
fn bits_u32(x: i32) -> u32 {
    u32::from_ne_bytes(x.to_ne_bytes())
}

/// Portable SWAR backend: packs posting positions into `u64` words —
/// 4 x `u16` lanes when the row fits narrow, 2 x `u32` lanes below
/// `2^31`, scalar otherwise — and counts `<= bound` lanes with the
/// carry-trick unsigned compare (`((t | H) - x) & H` has the lane-top bit
/// set exactly when `x <= t`, for lane values below the top bit).
#[inline]
fn count_le_swar(rest: &[u32], bound: u32) -> usize {
    let Some(&max) = rest.last() else { return 0 };
    if max >= 0x8000_0000 {
        // The carry trick needs the top bit clear; 1-based positions this
        // large mean a > 2 GiB-event sequence — correctness over speed.
        return count_le_scalar(rest, bound);
    }
    // All elements are < 2^31, so clamping the bound there preserves the
    // count exactly (any bound >= max counts the whole suffix either way).
    let bound = bound.min(0x7FFF_FFFF);
    if max < 0x8000 {
        count_le_swar16(rest, bound.min(0x7FFF))
    } else {
        count_le_swar32(rest, bound)
    }
}

/// SWAR over 4 x `u16` lanes per `u64` word. Caller guarantees every
/// element and the bound are below `0x8000` (lane top bit clear).
#[inline]
fn count_le_swar16(rest: &[u32], bound: u32) -> usize {
    const LANE_TOP: u64 = 0x8000_8000_8000_8000;
    let spread = u64::from(bound) * 0x0001_0001_0001_0001;
    let mut chunks = rest.chunks_exact(4);
    let mut count = 0usize;
    for chunk in chunks.by_ref() {
        let (Some(&a), Some(&b), Some(&c), Some(&d)) =
            (chunk.first(), chunk.get(1), chunk.get(2), chunk.get(3))
        else {
            break;
        };
        let packed = u64::from(a) | u64::from(b) << 16 | u64::from(c) << 32 | u64::from(d) << 48;
        // Lane-wise `x <= bound`: (bound | top) - x keeps the lane top bit
        // iff no borrow, i.e. iff x <= bound; lanes never borrow into each
        // other because both operands have the top bit pattern arranged so
        // each 16-bit subtraction stays within its lane.
        let le = ((spread | LANE_TOP).wrapping_sub(packed)) & LANE_TOP;
        if le == LANE_TOP {
            count += 4;
        } else {
            // Sorted chunk: the `<=` lanes form a prefix, so the popcount
            // is the exact number of qualifying elements — stop here.
            return count + le.count_ones() as usize;
        }
    }
    for &x in chunks.remainder() {
        if x <= bound {
            count += 1;
        } else {
            break;
        }
    }
    count
}

/// SWAR over 2 x `u32` lanes per `u64` word. Caller guarantees every
/// element and the bound are below `2^31` (lane top bit clear).
#[inline]
fn count_le_swar32(rest: &[u32], bound: u32) -> usize {
    const LANE_TOP: u64 = 0x8000_0000_8000_0000;
    let spread = u64::from(bound) * 0x0000_0001_0000_0001;
    let mut chunks = rest.chunks_exact(2);
    let mut count = 0usize;
    for chunk in chunks.by_ref() {
        let (Some(&a), Some(&b)) = (chunk.first(), chunk.get(1)) else {
            break;
        };
        let packed = u64::from(a) | u64::from(b) << 32;
        // Same carry-trick compare as the u16 variant, 32-bit lanes.
        let le = ((spread | LANE_TOP).wrapping_sub(packed)) & LANE_TOP;
        if le == LANE_TOP {
            count += 2;
        } else {
            return count + le.count_ones() as usize;
        }
    }
    for &x in chunks.remainder() {
        if x <= bound {
            count += 1;
        } else {
            break;
        }
    }
    count
}

/// SSE2 backend: 128-bit compares, always available on `x86_64`. Wide rows
/// compare 4 x `u32` lanes per step (unsigned order restored by XOR-ing the
/// sign bit before the signed compare); rows whose positions fit `u16`
/// pack 8 positions per step with `packssdw` first.
// SAFETY: SSE2 is part of the x86_64 baseline, so this function is
// executable on every x86_64 CPU; the attribute exists only to let the
// intrinsics be called without per-call unsafe blocks.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[inline]
fn count_le_sse2(rest: &[u32], bound: u32) -> usize {
    use std::arch::x86_64::{
        _mm_castsi128_ps, _mm_cmpgt_epi16, _mm_cmpgt_epi32, _mm_loadu_si128, _mm_movemask_epi8,
        _mm_movemask_ps, _mm_packs_epi32, _mm_set1_epi16, _mm_set1_epi32, _mm_xor_si128,
    };
    let Some(&max) = rest.last() else { return 0 };
    let len = rest.len();
    let mut count = 0usize;
    if max < 0x8000 {
        // Narrow-packable row: `packssdw` is exact for inputs <= 0x7FFF,
        // giving 8 x u16 lanes per compare. Clamping the bound to 0x7FFF
        // preserves the count (no element exceeds it), and both sides
        // being non-negative makes the signed compare already unsigned.
        let probe = _mm_set1_epi16(i16::try_from(bound.min(0x7FFF)).unwrap_or(i16::MAX));
        while count + 8 <= len {
            // SAFETY: count + 8 <= len, so both 16-byte loads read inside
            // the `rest` slice.
            let (lo, hi) = unsafe {
                (
                    _mm_loadu_si128(rest.as_ptr().add(count).cast()),
                    _mm_loadu_si128(rest.as_ptr().add(count + 4).cast()),
                )
            };
            let packed = _mm_packs_epi32(lo, hi);
            let gt = _mm_cmpgt_epi16(packed, probe);
            let mask = bits_u32(_mm_movemask_epi8(gt));
            if mask == 0 {
                count += 8;
            } else {
                // Sorted chunk: `<=` lanes form a prefix; each u16 lane
                // contributes two mask bits, so halve the popcount.
                return count + (16 - mask.count_ones() as usize) / 2;
            }
        }
    } else {
        let probe = _mm_xor_si128(_mm_set1_epi32(bits_i32(bound)), _mm_set1_epi32(i32::MIN));
        while count + 4 <= len {
            // SAFETY: count + 4 <= len, so the 16-byte load reads inside
            // the `rest` slice.
            let x = unsafe { _mm_loadu_si128(rest.as_ptr().add(count).cast()) };
            let biased = _mm_xor_si128(x, _mm_set1_epi32(i32::MIN));
            let gt = _mm_cmpgt_epi32(biased, probe);
            let mask = bits_u32(_mm_movemask_ps(_mm_castsi128_ps(gt)));
            if mask == 0 {
                count += 4;
            } else {
                return count + (4 - mask.count_ones() as usize);
            }
        }
    }
    for &x in rest.get(count..).unwrap_or(&[]) {
        if x <= bound {
            count += 1;
        } else {
            break;
        }
    }
    count
}

/// AVX2 backend: 256-bit compares — 8 x `u32` lanes per step, or 16 x
/// packed `u16` lanes for narrow rows (`packssdw` interleaves 128-bit
/// halves, which is irrelevant here because only the popcount is used,
/// never lane order).
///
// SAFETY: callers must ensure AVX2 is available (`count_le_from` only
// reaches this arm after `available_or_best` confirmed runtime detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn count_le_avx2(rest: &[u32], bound: u32) -> usize {
    use std::arch::x86_64::{
        _mm256_castsi256_ps, _mm256_cmpgt_epi16, _mm256_cmpgt_epi32, _mm256_loadu_si256,
        _mm256_movemask_epi8, _mm256_movemask_ps, _mm256_packs_epi32, _mm256_set1_epi16,
        _mm256_set1_epi32, _mm256_xor_si256,
    };
    let Some(&max) = rest.last() else { return 0 };
    let len = rest.len();
    let mut count = 0usize;
    if max < 0x8000 {
        // Same non-negative-signed-compare shortcut as the SSE2 narrow
        // path, 16 packed u16 lanes per step.
        let probe = _mm256_set1_epi16(i16::try_from(bound.min(0x7FFF)).unwrap_or(i16::MAX));
        while count + 16 <= len {
            // SAFETY: count + 16 <= len, so both 32-byte loads read inside
            // the `rest` slice.
            let (lo, hi) = unsafe {
                (
                    _mm256_loadu_si256(rest.as_ptr().add(count).cast()),
                    _mm256_loadu_si256(rest.as_ptr().add(count + 8).cast()),
                )
            };
            let packed = _mm256_packs_epi32(lo, hi);
            let gt = _mm256_cmpgt_epi16(packed, probe);
            let mask = bits_u32(_mm256_movemask_epi8(gt));
            if mask == 0 {
                count += 16;
            } else {
                return count + (32 - mask.count_ones() as usize) / 2;
            }
        }
    } else {
        let probe = _mm256_xor_si256(
            _mm256_set1_epi32(bits_i32(bound)),
            _mm256_set1_epi32(i32::MIN),
        );
        while count + 8 <= len {
            // SAFETY: count + 8 <= len, so the 32-byte load reads inside
            // the `rest` slice.
            let x = unsafe { _mm256_loadu_si256(rest.as_ptr().add(count).cast()) };
            let biased = _mm256_xor_si256(x, _mm256_set1_epi32(i32::MIN));
            let gt = _mm256_cmpgt_epi32(biased, probe);
            let mask = bits_u32(_mm256_movemask_ps(_mm256_castsi256_ps(gt)));
            if mask == 0 {
                count += 8;
            } else {
                return count + (8 - mask.count_ones() as usize);
            }
        }
    }
    for &x in rest.get(count..).unwrap_or(&[]) {
        if x <= bound {
            count += 1;
        } else {
            break;
        }
    }
    count
}

/// All [`MAX_LANES`] mask bits set — the "every lane passed" result of
/// [`gt_mask8`].
pub const FULL_MASK8: u32 = (1 << MAX_LANES) - 1;

/// Per-lane unsigned `a[i] > b[i]` over one full batch of [`MAX_LANES`]
/// `u32` lanes, as a bitmask (bit `i` set iff lane `i` compares greater).
///
/// This is the growth kernels' whole-batch fast path: with `a` = the next
/// [`MAX_LANES`] row positions at the watermark and `b` = the batch's lane
/// bounds, a result of [`FULL_MASK8`] proves every lane's partition point
/// is dominated by the serial watermark chain, so the batch advances
/// through consecutive row slots with no per-lane search (`core::kernel`
/// carries the induction proof). The same primitive with the roles of the
/// operands swapped answers the constrained kernels' "all lanes inside the
/// window" acceptance test (`mask == 0` for `a[i] <= b[i]` everywhere).
#[inline]
#[must_use]
pub fn gt_mask8(a: &[u32; MAX_LANES], b: &[u32; MAX_LANES], backend: KernelBackend) -> u32 {
    match backend {
        KernelBackend::Scalar | KernelBackend::Swar => gt_mask8_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline instruction set, so
        // the target-feature function is always executable here.
        KernelBackend::Sse2 => unsafe { gt_mask8_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: kernels only pass backends clamped through
        // `available_or_best`, so Avx2 here implies
        // `is_x86_feature_detected!("avx2")` returned true in this process.
        KernelBackend::Avx2 => unsafe { gt_mask8_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        // Unreachable after availability clamping; keep it total.
        KernelBackend::Sse2 | KernelBackend::Avx2 => gt_mask8_scalar(a, b),
    }
}

/// Reference implementation: eight branchless compare-and-shift lanes.
/// This is also the SWAR-backend path — with full-range `u32` lanes a
/// carry-trick compare would first have to clear both operands' top bits,
/// costing more than the eight `setcc`s the compiler emits for this loop.
#[inline]
fn gt_mask8_scalar(a: &[u32; MAX_LANES], b: &[u32; MAX_LANES]) -> u32 {
    let mut mask = 0u32;
    for (lane, (&x, &t)) in a.iter().zip(b.iter()).enumerate() {
        mask |= u32::from(x > t) << lane;
    }
    mask
}

/// SSE2 batch compare: two 128-bit compares cover the eight lanes.
/// Unsigned order is restored by XOR-ing the sign bit into both operands
/// before the signed compare. Fully inlinable into baseline callers.
// SAFETY: SSE2 is part of the x86_64 baseline, so this function is
// executable on every x86_64 CPU; the attribute exists only to let the
// intrinsics be called without per-call unsafe blocks.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[inline]
fn gt_mask8_sse2(a: &[u32; MAX_LANES], b: &[u32; MAX_LANES]) -> u32 {
    use std::arch::x86_64::{
        _mm_castsi128_ps, _mm_cmpgt_epi32, _mm_loadu_si128, _mm_movemask_ps, _mm_set1_epi32,
        _mm_xor_si128,
    };
    let bias = _mm_set1_epi32(i32::MIN);
    // SAFETY: both arrays are exactly MAX_LANES = 8 u32s (32 bytes), so
    // each 16-byte load reads inside its array.
    let (a_lo, a_hi, b_lo, b_hi) = unsafe {
        (
            _mm_loadu_si128(a.as_ptr().cast()),
            _mm_loadu_si128(a.as_ptr().add(4).cast()),
            _mm_loadu_si128(b.as_ptr().cast()),
            _mm_loadu_si128(b.as_ptr().add(4).cast()),
        )
    };
    let gt_lo = _mm_cmpgt_epi32(_mm_xor_si128(a_lo, bias), _mm_xor_si128(b_lo, bias));
    let gt_hi = _mm_cmpgt_epi32(_mm_xor_si128(a_hi, bias), _mm_xor_si128(b_hi, bias));
    bits_u32(_mm_movemask_ps(_mm_castsi128_ps(gt_lo)))
        | bits_u32(_mm_movemask_ps(_mm_castsi128_ps(gt_hi))) << 4
}

/// AVX2 batch compare: one 256-bit compare covers all eight lanes, with
/// the same sign-bias trick as the SSE2 variant. One outlined call per
/// batch (the attribute blocks inlining into baseline callers), amortized
/// over eight probes.
// SAFETY: callers must ensure AVX2 is available (`gt_mask8` only reaches
// this arm after `available_or_best` confirmed runtime detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn gt_mask8_avx2(a: &[u32; MAX_LANES], b: &[u32; MAX_LANES]) -> u32 {
    use std::arch::x86_64::{
        _mm256_castsi256_ps, _mm256_cmpgt_epi32, _mm256_loadu_si256, _mm256_movemask_ps,
        _mm256_set1_epi32, _mm256_xor_si256,
    };
    let bias = _mm256_set1_epi32(i32::MIN);
    // SAFETY: both arrays are exactly MAX_LANES = 8 u32s (32 bytes), so
    // each 32-byte load reads the whole array and nothing else.
    let (av, bv) = unsafe {
        (
            _mm256_loadu_si256(a.as_ptr().cast()),
            _mm256_loadu_si256(b.as_ptr().cast()),
        )
    };
    let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(av, bias), _mm256_xor_si256(bv, bias));
    bits_u32(_mm256_movemask_ps(_mm256_castsi256_ps(gt)))
}

/// Lanes in one block-mode compare: eight [`gt_mask8`] batches fused into a
/// single call so long instance runs amortize the per-batch bookkeeping
/// (gather, dispatch, watermark update) over 64 lanes instead of 8.
pub const BLOCK_LANES: usize = 8 * MAX_LANES;

/// Per-lane unsigned `a[i] > b[i]` over one [`BLOCK_LANES`] block, as a
/// 64-bit mask (bit `i` set iff lane `i` compares greater).
///
/// The wide sibling of [`gt_mask8`]: the unconstrained growth kernel uses
/// it when at least [`BLOCK_LANES`] instances of one run and as many row
/// positions remain, where the dominated prefix regularly spans whole
/// blocks and the 8-lane batch loop's fixed costs stop paying for
/// themselves. `u64::MAX` proves all 64 lanes advance through consecutive
/// row slots.
#[inline]
#[must_use]
pub fn gt_mask64(a: &[u32; BLOCK_LANES], b: &[u32; BLOCK_LANES], backend: KernelBackend) -> u64 {
    match backend {
        KernelBackend::Scalar | KernelBackend::Swar => gt_mask64_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline instruction set, so
        // the target-feature function is always executable here.
        KernelBackend::Sse2 => unsafe { gt_mask64_sse2(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: kernels only pass backends clamped through
        // `available_or_best`, so Avx2 here implies
        // `is_x86_feature_detected!("avx2")` returned true in this process.
        KernelBackend::Avx2 => unsafe { gt_mask64_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        // Unreachable after availability clamping; keep it total.
        KernelBackend::Sse2 | KernelBackend::Avx2 => gt_mask64_scalar(a, b),
    }
}

/// Reference implementation: 64 branchless compare-and-shift lanes (also
/// the SWAR-backend path, for the same full-range-`u32` reason as
/// [`gt_mask8_scalar`]).
#[inline]
fn gt_mask64_scalar(a: &[u32; BLOCK_LANES], b: &[u32; BLOCK_LANES]) -> u64 {
    let mut mask = 0u64;
    for (lane, (&x, &t)) in a.iter().zip(b.iter()).enumerate() {
        mask |= u64::from(x > t) << lane;
    }
    mask
}

/// SSE2 block compare: the eight [`gt_mask8_sse2`] batches, fused. Inside
/// a matching `#[target_feature]` context the per-batch calls are safe and
/// inline cleanly.
// SAFETY: SSE2 is part of the x86_64 baseline, so this function is
// executable on every x86_64 CPU; the attribute exists only to let the
// per-batch target-feature helpers be called without unsafe blocks.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[inline]
fn gt_mask64_sse2(a: &[u32; BLOCK_LANES], b: &[u32; BLOCK_LANES]) -> u64 {
    let (a_batches, _) = a.as_chunks::<MAX_LANES>();
    let (b_batches, _) = b.as_chunks::<MAX_LANES>();
    let mut mask = 0u64;
    for (batch, (x, t)) in a_batches.iter().zip(b_batches.iter()).enumerate() {
        mask |= u64::from(gt_mask8_sse2(x, t)) << (batch * MAX_LANES);
    }
    mask
}

/// AVX2 block compare: eight 256-bit compares, one outlined call per
/// 64-lane block.
// SAFETY: callers must ensure AVX2 is available (`gt_mask64` only reaches
// this arm after `available_or_best` confirmed runtime detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn gt_mask64_avx2(a: &[u32; BLOCK_LANES], b: &[u32; BLOCK_LANES]) -> u64 {
    let (a_batches, _) = a.as_chunks::<MAX_LANES>();
    let (b_batches, _) = b.as_chunks::<MAX_LANES>();
    let mut mask = 0u64;
    for (batch, (x, t)) in a_batches.iter().zip(b_batches.iter()).enumerate() {
        mask |= u64::from(gt_mask8_avx2(x, t)) << (batch * MAX_LANES);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so the sweep is reproducible without `rand`.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    fn backends_under_test() -> Vec<KernelBackend> {
        KernelBackend::all()
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    }

    /// Strictly ascending row with pseudo-random strides, max value capped
    /// to exercise the narrow (u16) and wide (u32) packing paths.
    fn seeded_row(seed: u64, len: usize, stride_cap: u64) -> Vec<u32> {
        let mut rng = Lcg(seed);
        let mut row = Vec::with_capacity(len);
        let mut pos = 0u64;
        for _ in 0..len {
            pos += 1 + rng.next() % stride_cap;
            if pos > u64::from(u32::MAX) {
                break;
            }
            row.push(u32::try_from(pos).expect("capped above"));
        }
        row
    }

    #[test]
    fn every_backend_matches_partition_point_on_seeded_rows() {
        for backend in backends_under_test() {
            for (seed, len, stride) in [
                (1u64, 0usize, 3u64),
                (2, 1, 3),
                (3, 7, 3),
                (4, 33, 5),
                (5, 64, 2),
                (6, 129, 1000),       // wide values past u16
                (7, 200, 40_000_000), // values past 2^31 -> scalar clamp path
            ] {
                let row = seeded_row(seed, len, stride);
                let mut rng = Lcg(seed ^ 0xBEEF);
                let mut bound = 0u32;
                let mut from = 0usize;
                for _ in 0..50 {
                    bound = bound.saturating_add(u32::try_from(rng.next() % 97).expect("< 97"));
                    let expected = row.partition_point(|&p| p <= bound);
                    let got = from + count_le_from(&row, from, bound, backend);
                    assert_eq!(got, expected, "{backend} len {len} bound {bound}");
                    from = expected;
                }
            }
        }
    }

    #[test]
    fn multi_cursor_matches_naive_next_per_lane() {
        for backend in backends_under_test() {
            let row = seeded_row(42, 61, 7);
            let mut cursor = MultiCursor::with_backend(&row, backend);
            let bounds = [0u32, 3, 3, 10, 50, 51, 52, 600];
            let mut out = [None; MAX_LANES];
            assert_eq!(cursor.next_after_batch(&bounds, &mut out), 8);
            for (lane, &bound) in bounds.iter().enumerate() {
                let expected = row
                    .get(row.partition_point(|&p| p <= bound)..)
                    .and_then(<[u32]>::first)
                    .copied();
                assert_eq!(out[lane], expected, "{backend} lane {lane}");
            }
        }
    }

    #[test]
    fn partition_points_resume_and_clamp_to_base() {
        let row = [2u32, 4, 6, 8, 10];
        let mut cursor = MultiCursor::with_backend(&row, KernelBackend::Scalar);
        let mut out = [0usize; MAX_LANES];
        assert_eq!(cursor.partition_points(&[5], &mut out), 1);
        assert_eq!(out[0], 2);
        assert_eq!(cursor.base(), 2);
        // A consuming kernel can push the base past the next bound's true
        // partition point; the clamp saturates instead of moving back.
        cursor.set_base(4);
        assert_eq!(cursor.partition_points(&[5, 20], &mut out), 2);
        assert_eq!(&out[..2], &[4, 5]);
        assert_eq!(cursor.base(), 5);
    }

    #[test]
    fn force_backend_round_trips_and_clamps() {
        let before = active_backend();
        force_backend(Some(KernelBackend::Scalar));
        assert_eq!(active_backend(), KernelBackend::Scalar);
        force_backend(Some(KernelBackend::Swar));
        assert_eq!(active_backend(), KernelBackend::Swar);
        // An unavailable request degrades to the best available backend
        // rather than faulting mid-mine.
        let clamped = KernelBackend::Avx2.available_or_best();
        assert!(clamped.is_available());
        force_backend(None);
        assert_eq!(active_backend(), before);
    }

    #[test]
    fn detected_features_and_names_are_stable() {
        let features = detected_features();
        assert!(!features.is_empty());
        for backend in KernelBackend::all() {
            assert_eq!(backend.to_string(), backend.name());
        }
        #[cfg(target_arch = "x86_64")]
        assert!(features.contains("sse2"));
    }

    #[test]
    fn gt_mask8_matches_scalar_across_backends_and_ranges() {
        let mut rng = Lcg(0xFACE);
        for round in 0..200 {
            let mut a = [0u32; MAX_LANES];
            let mut b = [0u32; MAX_LANES];
            // Mix small values, near-equal pairs, and values past 2^31 so
            // the sign-bias trick is exercised on both sides of the bit.
            for lane in 0..MAX_LANES {
                let scale = match rng.next() % 3 {
                    0 => 1,
                    1 => 1 << 16,
                    _ => 1 << 28,
                };
                a[lane] = u32::try_from(rng.next() % 97)
                    .expect("< 97")
                    .wrapping_mul(scale);
                b[lane] = match rng.next() % 4 {
                    0 => a[lane],
                    1 => a[lane].wrapping_add(1),
                    2 => a[lane].wrapping_sub(1),
                    _ => u32::try_from(rng.next() % 97)
                        .expect("< 97")
                        .wrapping_mul(scale),
                };
            }
            let expected = gt_mask8_scalar(&a, &b);
            for backend in backends_under_test() {
                assert_eq!(
                    gt_mask8(&a, &b, backend),
                    expected,
                    "round {round} backend {backend} a {a:?} b {b:?}"
                );
            }
            assert!(expected <= FULL_MASK8);
        }
        let max = [u32::MAX; MAX_LANES];
        let zero = [0u32; MAX_LANES];
        for backend in backends_under_test() {
            assert_eq!(gt_mask8(&max, &zero, backend), FULL_MASK8, "{backend}");
            assert_eq!(gt_mask8(&zero, &max, backend), 0, "{backend}");
            assert_eq!(gt_mask8(&max, &max, backend), 0, "{backend}");
        }
    }

    #[test]
    fn gt_mask64_matches_scalar_across_backends_and_ranges() {
        let mut rng = Lcg(0xB10C);
        for round in 0..100 {
            let mut a = [0u32; BLOCK_LANES];
            let mut b = [0u32; BLOCK_LANES];
            for lane in 0..BLOCK_LANES {
                let scale = match rng.next() % 3 {
                    0 => 1,
                    1 => 1 << 16,
                    _ => 1 << 28,
                };
                a[lane] = u32::try_from(rng.next() % 97)
                    .expect("< 97")
                    .wrapping_mul(scale);
                b[lane] = match rng.next() % 4 {
                    0 => a[lane],
                    1 => a[lane].wrapping_add(1),
                    2 => a[lane].wrapping_sub(1),
                    _ => u32::try_from(rng.next() % 97)
                        .expect("< 97")
                        .wrapping_mul(scale),
                };
            }
            let expected = gt_mask64_scalar(&a, &b);
            for backend in backends_under_test() {
                assert_eq!(
                    gt_mask64(&a, &b, backend),
                    expected,
                    "round {round} backend {backend}"
                );
            }
        }
        let max = [u32::MAX; BLOCK_LANES];
        let zero = [0u32; BLOCK_LANES];
        for backend in backends_under_test() {
            assert_eq!(gt_mask64(&max, &zero, backend), u64::MAX, "{backend}");
            assert_eq!(gt_mask64(&zero, &max, backend), 0, "{backend}");
            assert_eq!(gt_mask64(&max, &max, backend), 0, "{backend}");
        }
    }

    #[test]
    fn empty_and_single_element_rows_are_safe_everywhere() {
        for backend in backends_under_test() {
            let mut empty = MultiCursor::with_backend(&[], backend);
            let mut out = [Some(0u32); MAX_LANES];
            assert_eq!(empty.next_after_batch(&[0, 1, 2], &mut out), 3);
            assert_eq!(&out[..3], &[None, None, None]);

            let row = [7u32];
            let mut single = MultiCursor::with_backend(&row, backend);
            let mut pts = [0usize; MAX_LANES];
            assert_eq!(single.partition_points(&[0, 6, 7, 8], &mut pts), 4);
            assert_eq!(&pts[..4], &[0, 0, 1, 1]);
        }
    }
}
