//! # seqdb — sequence database substrate
//!
//! This crate implements the input model of the ICDE'09 paper *"Efficient
//! Mining of Closed Repetitive Gapped Subsequences from a Sequence
//! Database"*: a database `SeqDB = {S1, S2, ..., SN}` of sequences, where
//! each sequence is an ordered list of events drawn from a finite alphabet.
//!
//! The crate provides:
//!
//! * [`EventCatalog`] — interning of event labels to dense [`EventId`]s so
//!   that the mining algorithms work on small integers,
//! * [`SeqStore`] and [`SeqView`] — flat columnar event storage: one
//!   contiguous arena plus a CSR offsets table, with sequences read as
//!   borrowed slices; the arena is an [`EventColumn`] that picks the
//!   narrowest element width ([`width`]: `u16` when the alphabet fits,
//!   `u32` otherwise) and compares events at that native width,
//! * [`Sequence`] and [`SequenceDatabase`] — the database model (a thin
//!   facade over the store) with builders and statistics,
//! * [`InvertedIndex`] — the *inverted event index* of §III-D of the paper
//!   in the same CSR layout (flat positions arena + per-`(sequence, event)`
//!   ranges), answering `next(S, e, lowest)` queries in `O(log L)` time
//!   and handing growth kernels a [`PostingCursor`] that resolves a
//!   `(sequence, event)` row once and advances through a whole extension
//!   pass with galloping + branch-free search,
//! * [`simd`] — the vectorized sibling of the cursor: a [`MultiCursor`]
//!   answers up to 8 monotone probes per pass with runtime-dispatched
//!   AVX2/SSE2 intrinsics or a portable u64 SWAR fallback
//!   ([`KernelBackend`]), bit-identical to the scalar path by contract and
//!   overridable via `RGS_FORCE_SCALAR` / [`simd::force_backend`],
//! * [`ShardMap`], [`ShardedSeqStore`], [`ShardedIndex`] — the
//!   [`shard`] layer: the store split at sequence boundaries into zero-copy
//!   per-shard windows (boundaries chosen by event mass), with per-shard
//!   indexes built in parallel and queried through global sequence ids,
//! * [`SharedSlice`] — the owned-or-mapped buffer backing every columnar
//!   arena, so the same read path serves in-memory builds and zero-copy
//!   snapshot loads,
//! * [`snapshot`] — the versioned, checksummed, 64-byte-aligned single-file
//!   image format ([`SnapshotWriter`] / [`SnapshotImage`]) behind
//!   `PreparedDb::write_snapshot` / `open_snapshot` in `rgs-core`,
//! * [`io`] — readers and writers for common on-disk text formats (SPMF
//!   integer format, whitespace-token format, single-character string
//!   format, CSV),
//! * [`stats`] — dataset summary statistics used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use seqdb::SequenceDatabase;
//!
//! // The running example of Table II in the paper.
//! let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]);
//! assert_eq!(db.num_sequences(), 2);
//! assert_eq!(db.num_events(), 3);
//! assert_eq!(db.total_length(), 14);
//!
//! let index = db.inverted_index();
//! // the first 'C' in S1 strictly after position 0 (1-based positions)
//! let a = db.catalog().id("C").unwrap();
//! assert_eq!(index.next(0, a, 0), Some(3));
//! ```
//!
//! # Example — snapshot a store and map it back
//!
//! The format layer is generic over sections; this round-trips the two
//! columns of a store through one image file with zero copies on the way
//! back. A small alphabet builds a narrow (`u16`) arena, which format v3
//! writes and maps at 2 bytes per event (see `rgs-core::PreparedDb` for
//! the full prepared-database composition):
//!
//! ```
//! use std::sync::Arc;
//! use seqdb::snapshot::{section_id, SectionPayload, SnapshotImage, SnapshotWriter};
//! use seqdb::{EventColumn, SeqStore, SequenceDatabase};
//!
//! let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]);
//! let path = std::env::temp_dir().join(format!("seqdb-doc-{}.snap", std::process::id()));
//!
//! let narrow = db.store().event_column().narrow_slice().expect("3-event alphabet");
//! let mut writer = SnapshotWriter::new();
//! writer.section(section_id::STORE_EVENTS, SectionPayload::U16s(narrow));
//! writer.section(section_id::STORE_OFFSETS, SectionPayload::U32s(db.store().offsets()));
//! writer.write_to_path(&path)?;
//!
//! let image = Arc::new(SnapshotImage::open(&path)?);
//! let store = SeqStore::from_shared_parts(
//!     EventColumn::Narrow(image.shared_u16s(section_id::STORE_EVENTS)?),
//!     image.shared_u32s(section_id::STORE_OFFSETS)?,
//! ).expect("validated by the image checksum");
//! assert_eq!(&store, db.store());
//! std::fs::remove_file(&path)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `shared` and `snapshot` need `unsafe` for mmap and in-place slice
// reinterpretation; they opt in locally with documented safety arguments.
// Everything else stays forbidden.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::cast_possible_truncation)]

pub mod cast;
pub mod catalog;
pub mod database;
pub mod index;
pub mod io;
pub mod sequence;
pub mod shard;
pub mod shared;
pub mod simd;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod width;

pub use catalog::{EventCatalog, EventId};
pub use database::{DatabaseBuilder, SequenceDatabase};
pub use index::{InvertedIndex, PostingCursor};
pub use sequence::Sequence;
pub use shard::{ShardMap, ShardedIndex, ShardedSeqStore};
pub use shared::SharedSlice;
pub use simd::{KernelBackend, MultiCursor};
pub use snapshot::{SnapshotError, SnapshotImage, SnapshotWriter};
pub use stats::DatabaseStats;
pub use store::{EventColumn, EventsIter, SeqStore, SeqView};
pub use width::{EventWidth, NARROW_MAX_EVENT};
