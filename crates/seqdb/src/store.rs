//! Columnar event storage: the flat CSR [`SeqStore`] and its borrowed
//! per-sequence [`SeqView`].
//!
//! All events of all sequences live in **one** contiguous `Vec<EventId>`;
//! a CSR (compressed sparse row) offsets table marks where each sequence
//! begins and ends. A sequence is therefore just a `&[EventId]` slice into
//! the arena — no per-sequence heap allocation, no pointer chasing, and the
//! whole store is trivially mmap- and slice-shardable.
//!
//! [`SequenceDatabase`](crate::SequenceDatabase) is a thin facade over a
//! `SeqStore` plus an [`EventCatalog`](crate::EventCatalog); the owned
//! [`Sequence`] type remains as the *construction* unit
//! (builders flatten it into the store), while all *access* goes through
//! [`SeqView`] slices.
//!
//! Both columns are [`SharedSlice`]s: built in memory they are plain
//! `Vec`s, reconstructed from a [`snapshot`](crate::snapshot) they are
//! zero-copy windows into the mapped image — the read path is identical
//! either way.

use crate::cast::{u32_to_usize, usize_to_u32};
use crate::catalog::EventId;
use crate::sequence::Sequence;
use crate::shared::SharedSlice;

/// Flat columnar storage for the events of a whole database.
///
/// Layout: `events` holds every event of every sequence back to back;
/// `offsets` has one entry per sequence plus a trailing sentinel, so
/// sequence `i` occupies `events[offsets[i]..offsets[i + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqStore {
    /// All events of all sequences, concatenated.
    events: SharedSlice<EventId>,
    /// CSR offsets: `offsets[i]..offsets[i + 1]` is sequence `i`.
    /// Invariant: `offsets[0] == 0`, monotone non-decreasing, and the last
    /// entry equals `events.len()`.
    offsets: SharedSlice<u32>,
}

impl Default for SeqStore {
    fn default() -> Self {
        Self {
            events: SharedSlice::default(),
            offsets: vec![0].into(),
        }
    }
}

impl SeqStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with room for `sequences` rows of `events`
    /// events in total (one allocation each for the arena and the offsets).
    pub fn with_capacity(sequences: usize, events: usize) -> Self {
        let mut offsets = Vec::with_capacity(sequences + 1);
        offsets.push(0);
        Self {
            events: Vec::with_capacity(events).into(),
            offsets: offsets.into(),
        }
    }

    /// Reassembles a store from its two columns, typically zero-copy slices
    /// of a [`snapshot`](crate::snapshot) image. Every CSR invariant is
    /// checked; the error string names the violated one.
    pub fn from_shared_parts(
        events: SharedSlice<EventId>,
        offsets: SharedSlice<u32>,
    ) -> Result<Self, String> {
        let (Some(&first), Some(&sentinel)) = (offsets.first(), offsets.last()) else {
            return Err("store offsets are empty (the sentinel entry is mandatory)".to_owned());
        };
        if first != 0 {
            return Err(format!("store offsets start at {first}, not 0"));
        }
        if let Some((a, b)) = offsets
            .iter()
            .zip(offsets.iter().skip(1))
            .find(|(a, b)| a > b)
        {
            return Err(format!("store offsets are not monotone ({a} > {b})"));
        }
        let last = u32_to_usize(sentinel);
        if last != events.len() {
            return Err(format!(
                "store offsets end at {last} but the event arena holds {} events",
                events.len()
            ));
        }
        Ok(Self { events, offsets })
    }

    /// Appends one sequence given as an iterator of events; returns its
    /// 0-based index. On a snapshot-backed store this first materializes
    /// owned columns (copy-on-write).
    pub fn push_events<I>(&mut self, events: I) -> usize
    where
        I: IntoIterator<Item = EventId>,
    {
        self.events.to_mut().extend(events);
        // Hard assert (not debug-only): a silently wrapped u32 offset would
        // make every later view slice the wrong events. ~4.29 billion
        // events is the store's documented capacity ceiling.
        let total = usize_to_u32(self.events.len());
        assert!(
            total.is_some(),
            "SeqStore offsets are u32: more than u32::MAX total events"
        );
        let total = total.unwrap_or(u32::MAX); // unreachable fallback: asserted Some above
        let offsets = self.offsets.to_mut();
        offsets.push(total);
        offsets.len() - 2
    }

    /// Number of sequences in the store.
    pub fn num_sequences(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of events over all sequences (the arena length).
    pub fn total_length(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the store holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.num_sequences() == 0
    }

    /// Length of sequence `seq`, or 0 when out of range.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.view(seq).map_or(0, SeqView::len)
    }

    /// Length of the longest sequence.
    pub fn max_sequence_length(&self) -> usize {
        self.offsets
            .iter()
            .zip(self.offsets.iter().skip(1))
            .map(|(&a, &b)| u32_to_usize(b - a))
            .max()
            .unwrap_or(0)
    }

    /// The events of sequence `seq` as a slice into the arena.
    pub fn view(&self, seq: usize) -> Option<SeqView<'_>> {
        let start = u32_to_usize(*self.offsets.get(seq)?);
        let end = u32_to_usize(*self.offsets.get(seq.checked_add(1)?)?);
        Some(SeqView {
            // The CSR invariant (monotone offsets ending at the arena
            // length) makes this range valid; `?` keeps the path panic-free.
            events: self.events.get(start..end)?,
        })
    }

    /// Iterates over all sequences as [`SeqView`] slices.
    pub fn iter(&self) -> SeqIter<'_> {
        SeqIter {
            store: self,
            next: 0,
        }
    }

    /// The whole event arena (all sequences concatenated).
    pub fn arena(&self) -> &[EventId] {
        &self.events
    }

    /// The CSR offsets table (one entry per sequence plus a sentinel).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Promotes both columns into shared (`Arc`-owned) storage so that
    /// [`SeqStore::window`] can hand out zero-copy per-shard views. No
    /// event is copied; snapshot-backed stores are already shared.
    pub fn share(&mut self) {
        self.events.share();
        self.offsets.share();
    }

    /// Returns `true` when both columns are shared (mapped) storage, i.e.
    /// windows of this store are zero-copy.
    pub fn is_shared(&self) -> bool {
        self.events.is_mapped() && self.offsets.is_mapped()
    }

    /// A store holding exactly the sequences `seq_range` of this store.
    ///
    /// The returned store renumbers the sequences to `0..len`: its CSR
    /// offsets start at 0 again. On a shared store ([`SeqStore::share`] or a
    /// snapshot-backed one) the event arena of the window is a **zero-copy**
    /// [`SharedSlice`] view into this store's arena; the offsets column is
    /// zero-copy too when the window starts at the beginning of the arena
    /// and is otherwise rebased into a fresh table (4 bytes per sequence —
    /// negligible next to the event mass).
    ///
    /// # Panics
    ///
    /// Panics when `seq_range` exceeds [`SeqStore::num_sequences`].
    pub fn window(&self, seq_range: std::ops::Range<usize>) -> SeqStore {
        assert!(
            seq_range.start <= seq_range.end && seq_range.end <= self.num_sequences(),
            "window {seq_range:?} out of bounds for a store of {} sequences",
            self.num_sequences()
        );
        // The assert above makes every lookup below in-bounds; the
        // `unwrap_or` fallbacks are unreachable and keep the path panic-free.
        let base = self.offsets.get(seq_range.start).copied().unwrap_or(0);
        let end = self.offsets.get(seq_range.end).copied().unwrap_or(base);
        let events = self.events.window(u32_to_usize(base)..u32_to_usize(end));
        let offsets = if base == 0 {
            self.offsets.window(seq_range.start..seq_range.end + 1)
        } else {
            self.offsets
                .get(seq_range.start..seq_range.end + 1)
                .unwrap_or(&[])
                .iter()
                .map(|&o| o - base)
                .collect::<Vec<u32>>()
                .into()
        };
        SeqStore { events, offsets }
    }

    /// Bytes of live data held by the store (arena + offsets table) —
    /// heap-resident when owned, mapped when snapshot-backed; either way
    /// this is the store's contribution to a snapshot image.
    ///
    /// Counts lengths rather than capacities, so the number is deterministic
    /// for a given database regardless of how it was built.
    pub fn heap_bytes(&self) -> usize {
        self.events.len() * std::mem::size_of::<EventId>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

impl FromIterator<Sequence> for SeqStore {
    fn from_iter<T: IntoIterator<Item = Sequence>>(iter: T) -> Self {
        let mut store = SeqStore::new();
        for sequence in iter {
            store.push_events(sequence.events().iter().copied());
        }
        store
    }
}

/// A borrowed view of one sequence: a slice into the [`SeqStore`] arena.
///
/// `SeqView` is `Copy` and mirrors the read API of the owned
/// [`Sequence`] type (1-based positions, subsequence scan,
/// landmark search), so call sites work identically on flat storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqView<'a> {
    events: &'a [EventId],
}

impl<'a> SeqView<'a> {
    /// Wraps a raw event slice as a view.
    pub fn from_events(events: &'a [EventId]) -> Self {
        Self { events }
    }

    /// Number of events in the sequence (`length` in the paper).
    pub fn len(self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the sequence contains no events.
    pub fn is_empty(self) -> bool {
        self.events.is_empty()
    }

    /// The event at **1-based** position `pos` (`S[pos]` in the paper).
    ///
    /// Returns `None` when `pos == 0` or `pos > len`.
    pub fn at(self, pos: usize) -> Option<EventId> {
        if pos == 0 {
            return None;
        }
        self.events.get(pos - 1).copied()
    }

    /// The underlying events as a slice (0-based indexing). The lifetime is
    /// that of the store, not of the view value.
    pub fn events(self) -> &'a [EventId] {
        self.events
    }

    /// Iterates over `(position, event)` pairs with 1-based positions.
    pub fn iter_positions(self) -> impl Iterator<Item = (usize, EventId)> + 'a {
        self.events
            .iter()
            .copied()
            .enumerate()
            .map(|(i, e)| (i + 1, e))
    }

    /// Counts occurrences of a single event in the sequence.
    pub fn count_event(self, event: EventId) -> usize {
        self.events.iter().filter(|&&e| e == event).count()
    }

    /// Returns `true` if `pattern` occurs in this sequence as a (gapped)
    /// subsequence (Definition 2.1); greedy left-to-right scan, `O(len)`.
    pub fn contains_subsequence(self, pattern: &[EventId]) -> bool {
        if pattern.is_empty() {
            return true;
        }
        let mut j = 0;
        for &e in self.events {
            if pattern.get(j) == Some(&e) {
                j += 1;
                if j == pattern.len() {
                    return true;
                }
            }
        }
        false
    }

    /// Finds the *leftmost landmark* of `pattern` starting strictly after
    /// position `after` (1-based), if any. Returns 1-based positions.
    pub fn leftmost_landmark_after(self, pattern: &[EventId], after: usize) -> Option<Vec<usize>> {
        if pattern.is_empty() {
            return Some(Vec::new());
        }
        let mut landmark = Vec::with_capacity(pattern.len());
        let mut j = 0;
        for (pos, e) in self.iter_positions() {
            if pos <= after {
                continue;
            }
            if pattern.get(j) == Some(&e) {
                landmark.push(pos);
                j += 1;
                if j == pattern.len() {
                    return Some(landmark);
                }
            }
        }
        None
    }

    /// Copies the view into an owned [`Sequence`].
    pub fn to_sequence(self) -> Sequence {
        Sequence::from_events(self.events.to_vec())
    }
}

/// Iterator over the sequences of a [`SeqStore`], yielding [`SeqView`]s.
#[derive(Debug, Clone)]
pub struct SeqIter<'a> {
    store: &'a SeqStore,
    next: usize,
}

impl<'a> Iterator for SeqIter<'a> {
    type Item = SeqView<'a>;

    fn next(&mut self) -> Option<SeqView<'a>> {
        let view = self.store.view(self.next)?;
        self.next += 1;
        Some(view)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.store.num_sequences().saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SeqIter<'_> {}
impl std::iter::FusedIterator for SeqIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(rows: &[&[u32]]) -> SeqStore {
        let mut store = SeqStore::new();
        for row in rows {
            store.push_events(row.iter().map(|&i| EventId(i)));
        }
        store
    }

    #[test]
    fn csr_layout_slices_sequences_out_of_one_arena() {
        let s = store(&[&[1, 2, 3], &[], &[4, 5]]);
        assert_eq!(s.num_sequences(), 3);
        assert_eq!(s.total_length(), 5);
        assert_eq!(s.offsets(), &[0, 3, 3, 5]);
        assert_eq!(
            s.view(0).unwrap().events(),
            &[EventId(1), EventId(2), EventId(3)]
        );
        assert!(s.view(1).unwrap().is_empty());
        assert_eq!(s.view(2).unwrap().events(), &[EventId(4), EventId(5)]);
        assert_eq!(s.view(3), None);
        assert_eq!(s.max_sequence_length(), 3);
        assert_eq!(s.seq_len(2), 2);
        assert_eq!(s.seq_len(9), 0);
    }

    #[test]
    fn empty_store_reports_zeroes() {
        let s = SeqStore::new();
        assert!(s.is_empty());
        assert_eq!(s.num_sequences(), 0);
        assert_eq!(s.max_sequence_length(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.view(0), None);
    }

    #[test]
    fn iter_is_exact_size_and_yields_views_in_order() {
        let s = store(&[&[7], &[8, 9]]);
        let mut iter = s.iter();
        assert_eq!(iter.len(), 2);
        assert_eq!(iter.next().unwrap().events(), &[EventId(7)]);
        assert_eq!(iter.len(), 1);
        assert_eq!(iter.next().unwrap().events(), &[EventId(8), EventId(9)]);
        assert_eq!(iter.next(), None);
        assert_eq!(iter.next(), None); // fused
    }

    #[test]
    fn view_mirrors_sequence_semantics() {
        let s = store(&[&[0, 1, 2, 0, 1, 2, 0]]);
        let v = s.view(0).unwrap();
        assert_eq!(v.at(0), None);
        assert_eq!(v.at(1), Some(EventId(0)));
        assert_eq!(v.at(7), Some(EventId(0)));
        assert_eq!(v.at(8), None);
        assert_eq!(v.count_event(EventId(0)), 3);
        assert!(v.contains_subsequence(&[EventId(0), EventId(1), EventId(0)]));
        assert!(!v.contains_subsequence(&[EventId(2), EventId(2), EventId(2)]));
        assert_eq!(
            v.leftmost_landmark_after(&[EventId(0), EventId(1)], 1),
            Some(vec![4, 5])
        );
        assert_eq!(v.to_sequence().len(), 7);
    }

    #[test]
    fn from_iterator_of_sequences_flattens() {
        let s: SeqStore = vec![
            Sequence::from_events(vec![EventId(1)]),
            Sequence::from_events(vec![EventId(2), EventId(3)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.num_sequences(), 2);
        assert_eq!(s.arena(), &[EventId(1), EventId(2), EventId(3)]);
    }

    #[test]
    fn windows_slice_out_sequence_ranges_with_local_numbering() {
        let mut s = store(&[&[1, 2, 3], &[], &[4, 5], &[6]]);
        s.share();
        assert!(s.is_shared());

        let head = s.window(0..2);
        assert_eq!(head.num_sequences(), 2);
        assert_eq!(head.offsets(), &[0, 3, 3]);
        assert_eq!(head.view(0).unwrap().events(), s.view(0).unwrap().events());
        // Leading window: both columns alias the parent (zero copy).
        assert_eq!(head.arena().as_ptr(), s.arena().as_ptr());

        let tail = s.window(2..4);
        assert_eq!(tail.num_sequences(), 2);
        assert_eq!(tail.offsets(), &[0, 2, 3]);
        assert_eq!(tail.view(0).unwrap().events(), &[EventId(4), EventId(5)]);
        assert_eq!(tail.view(1).unwrap().events(), &[EventId(6)]);
        // The event arena still aliases the parent at the right offset.
        assert_eq!(tail.arena().as_ptr(), s.arena()[3..].as_ptr());

        let empty = s.window(1..1);
        assert!(empty.is_empty());
        assert_eq!(empty.offsets(), &[3 - 3]);
    }

    #[test]
    fn heap_bytes_counts_arena_and_offsets() {
        let s = store(&[&[1, 2, 3, 4]]);
        assert!(s.heap_bytes() >= 4 * std::mem::size_of::<EventId>() + 2 * 4);
    }
}
