//! Columnar event storage: the flat CSR [`SeqStore`], its width-tagged
//! [`EventColumn`] arena, and the borrowed per-sequence [`SeqView`].
//!
//! All events of all sequences live in **one** contiguous arena; a CSR
//! (compressed sparse row) offsets table marks where each sequence begins
//! and ends. A sequence is therefore just a slice into the arena — no
//! per-sequence heap allocation, no pointer chasing, and the whole store is
//! trivially mmap- and slice-shardable.
//!
//! The arena itself is an [`EventColumn`]: physically `u16` elements when
//! the alphabet fits (the paper's workloads all do — Gazelle ~1.4k items,
//! TCAS ~80 events), `u32` otherwise. Narrow columns halve `store_bytes`
//! and double the events per cache line; the *logical* content is
//! width-independent, and equality compares logically. Builders start
//! narrow and widen **once** (an `O(n)` copy) if an id above
//! [`NARROW_MAX_EVENT`] is ever pushed.
//!
//! [`SequenceDatabase`](crate::SequenceDatabase) is a thin facade over a
//! `SeqStore` plus an [`EventCatalog`](crate::catalog::EventCatalog); the
//! owned [`Sequence`] type remains as the *construction* unit (builders
//! flatten it into the store), while all *access* goes through [`SeqView`]
//! slices.
//!
//! Both columns are [`SharedSlice`]s: built in memory they are plain
//! `Vec`s, reconstructed from a [`snapshot`](crate::snapshot) they are
//! zero-copy windows into the mapped image — the read path is identical
//! either way.

use crate::cast::{u32_to_usize, usize_to_u32};
use crate::catalog::EventId;
use crate::sequence::Sequence;
use crate::shared::SharedSlice;
use crate::width::{EventWidth, NARROW_MAX_EVENT};

/// The flat event arena of a [`SeqStore`]: one contiguous column of events
/// at the narrowest physical width that fits the alphabet.
///
/// Logically this is always a sequence of [`EventId`]s; the enum only
/// records how the bits are stored. Equality is **width-insensitive**: a
/// narrow column equals a wide one holding the same ids, so stores
/// round-tripped through different snapshot widths compare equal.
#[derive(Debug, Clone)]
pub enum EventColumn {
    /// `u16` elements — alphabets of up to 65 536 distinct events.
    Narrow(SharedSlice<u16>),
    /// `u32` elements (the transparent [`EventId`] newtype) — the full id
    /// range, and the only width snapshot formats v1/v2 knew about.
    Wide(SharedSlice<EventId>),
}

impl Default for EventColumn {
    /// Columns start narrow; [`EventColumn::push`] widens on demand.
    fn default() -> Self {
        Self::Narrow(SharedSlice::default())
    }
}

impl EventColumn {
    /// An empty narrow column with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::Narrow(Vec::with_capacity(capacity).into())
    }

    /// Number of events in the column.
    pub fn len(&self) -> usize {
        match self {
            Self::Narrow(v) => v.len(),
            Self::Wide(v) => v.len(),
        }
    }

    /// Returns `true` when the column holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when elements are stored as `u16`.
    pub fn is_narrow(&self) -> bool {
        matches!(self, Self::Narrow(_))
    }

    /// Size of one element in bytes: 2 (narrow) or 4 (wide).
    pub fn element_bytes(&self) -> usize {
        match self {
            Self::Narrow(_) => <u16 as EventWidth>::BYTES,
            Self::Wide(_) => <EventId as EventWidth>::BYTES,
        }
    }

    /// Human-readable element width ("u16" / "u32").
    pub fn width_name(&self) -> &'static str {
        match self {
            Self::Narrow(_) => <u16 as EventWidth>::NAME,
            Self::Wide(_) => <EventId as EventWidth>::NAME,
        }
    }

    /// Bytes of live data in the column (`len * element_bytes`).
    pub fn byte_len(&self) -> usize {
        self.len() * self.element_bytes()
    }

    /// The event at index `i` (0-based), widened to [`EventId`].
    #[inline]
    pub fn get(&self, i: usize) -> Option<EventId> {
        match self {
            Self::Narrow(v) => v.get(i).map(|&e| e.to_event()),
            Self::Wide(v) => v.get(i).copied(),
        }
    }

    /// Iterates over all events, widened to [`EventId`].
    pub fn iter(&self) -> EventsIter<'_> {
        match self {
            Self::Narrow(v) => EventsIter::Narrow(v.as_slice().iter()),
            Self::Wide(v) => EventsIter::Wide(v.as_slice().iter()),
        }
    }

    /// A borrowed sub-range of the column, or `None` when out of bounds.
    #[inline]
    pub(crate) fn range(&self, range: std::ops::Range<usize>) -> Option<ColSlice<'_>> {
        match self {
            Self::Narrow(v) => v.get(range).map(ColSlice::Narrow),
            Self::Wide(v) => v.get(range).map(ColSlice::Wide),
        }
    }

    /// Appends one event, widening the whole column first if the id does
    /// not fit `u16` (one `O(n)` copy over the column's lifetime).
    pub fn push(&mut self, event: EventId) {
        match self {
            Self::Narrow(v) => match u16::from_event(event) {
                Some(narrow) => v.to_mut().push(narrow),
                None => {
                    self.widen();
                    self.push(event);
                }
            },
            Self::Wide(v) => v.to_mut().push(event),
        }
    }

    /// Appends every event of `iter` (widening at most once).
    pub fn extend<I: IntoIterator<Item = EventId>>(&mut self, iter: I) {
        for event in iter {
            self.push(event);
        }
    }

    /// Converts a narrow column to wide storage in place (`O(n)` copy).
    /// No-op on an already-wide column.
    pub fn widen(&mut self) {
        if let Self::Narrow(v) = self {
            let wide: Vec<EventId> = v.iter().map(|&e| e.to_event()).collect();
            *self = Self::Wide(wide.into());
        }
    }

    /// Converts a wide column whose ids all fit `u16` to narrow storage
    /// (`O(n)` copy). Returns `true` when the column is narrow afterwards.
    pub fn narrow(&mut self) -> bool {
        match self {
            Self::Narrow(_) => true,
            Self::Wide(v) => {
                let Some(narrow) = v
                    .iter()
                    .map(|&e| u16::from_event(e))
                    .collect::<Option<Vec<u16>>>()
                else {
                    return false;
                };
                *self = Self::Narrow(narrow.into());
                true
            }
        }
    }

    /// Returns `true` when every id in the column fits a narrow column
    /// (trivially true for one that already is narrow).
    pub fn fits_narrow(&self) -> bool {
        match self {
            Self::Narrow(_) => true,
            Self::Wide(v) => v.iter().all(|e| e.0 <= NARROW_MAX_EVENT),
        }
    }

    /// The raw `u16` elements, when narrow. Used by the snapshot writer
    /// (serialize at the physical width) and by zero-copy aliasing tests.
    pub fn narrow_slice(&self) -> Option<&[u16]> {
        match self {
            Self::Narrow(v) => Some(v),
            Self::Wide(_) => None,
        }
    }

    /// The raw [`EventId`] elements, when wide.
    pub fn wide_slice(&self) -> Option<&[EventId]> {
        match self {
            Self::Narrow(_) => None,
            Self::Wide(v) => Some(v),
        }
    }

    /// Copies the column into an owned wide `Vec<EventId>` (test and
    /// compatibility helper — the hot paths never materialize this).
    pub fn to_wide_vec(&self) -> Vec<EventId> {
        self.iter().collect()
    }

    /// Counts occurrences of `event` across the whole column, comparing at
    /// the native width.
    pub fn count(&self, event: EventId) -> usize {
        match self {
            Self::Narrow(v) => match u16::from_event(event) {
                Some(e) => v.iter().filter(|&&x| x == e).count(),
                None => 0,
            },
            Self::Wide(v) => v.iter().filter(|&&x| x == event).count(),
        }
    }

    /// Promotes owned storage into shared (`Arc`-owned) storage so that
    /// [`EventColumn::window`]s are zero-copy. See [`SharedSlice::share`].
    pub fn share(&mut self) {
        match self {
            Self::Narrow(v) => v.share(),
            Self::Wide(v) => v.share(),
        }
    }

    /// Returns `true` when the column borrows shared/mapped storage.
    pub fn is_mapped(&self) -> bool {
        match self {
            Self::Narrow(v) => v.is_mapped(),
            Self::Wide(v) => v.is_mapped(),
        }
    }

    /// A sub-window of the column at the same width. Zero-copy on shared
    /// columns, a copy on owned ones — see [`SharedSlice::window`].
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn window(&self, range: std::ops::Range<usize>) -> Self {
        match self {
            Self::Narrow(v) => Self::Narrow(v.window(range)),
            Self::Wide(v) => Self::Wide(v.window(range)),
        }
    }
}

impl PartialEq for EventColumn {
    /// Width-insensitive logical equality: compares the widened event
    /// sequences. Same-width columns compare as raw slices (memcmp-able).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Narrow(a), Self::Narrow(b)) => a == b,
            (Self::Wide(a), Self::Wide(b)) => a == b,
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for EventColumn {}

impl FromIterator<EventId> for EventColumn {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        let mut column = Self::default();
        column.extend(iter);
        column
    }
}

/// Iterator over an [`EventColumn`] (or a [`SeqView`]), widening each
/// element to [`EventId`].
#[derive(Debug, Clone)]
pub enum EventsIter<'a> {
    /// Iterating a narrow (`u16`) column.
    Narrow(std::slice::Iter<'a, u16>),
    /// Iterating a wide (`u32`) column.
    Wide(std::slice::Iter<'a, EventId>),
}

impl Iterator for EventsIter<'_> {
    type Item = EventId;

    #[inline]
    fn next(&mut self) -> Option<EventId> {
        match self {
            Self::Narrow(it) => it.next().map(|&e| e.to_event()),
            Self::Wide(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Self::Narrow(it) => it.size_hint(),
            Self::Wide(it) => it.size_hint(),
        }
    }

    fn nth(&mut self, n: usize) -> Option<EventId> {
        match self {
            Self::Narrow(it) => it.nth(n).map(|&e| e.to_event()),
            Self::Wide(it) => it.nth(n).copied(),
        }
    }
}

impl ExactSizeIterator for EventsIter<'_> {}
impl std::iter::FusedIterator for EventsIter<'_> {}

/// Flat columnar storage for the events of a whole database.
///
/// Layout: `events` holds every event of every sequence back to back (at
/// the narrowest width that fits — see [`EventColumn`]); `offsets` has one
/// entry per sequence plus a trailing sentinel, so sequence `i` occupies
/// `events[offsets[i]..offsets[i + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqStore {
    /// All events of all sequences, concatenated, width-tagged.
    events: EventColumn,
    /// CSR offsets: `offsets[i]..offsets[i + 1]` is sequence `i`.
    /// Invariant: `offsets[0] == 0`, monotone non-decreasing, and the last
    /// entry equals `events.len()`.
    offsets: SharedSlice<u32>,
}

impl Default for SeqStore {
    fn default() -> Self {
        Self {
            events: EventColumn::default(),
            offsets: vec![0].into(),
        }
    }
}

impl SeqStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store with room for `sequences` rows of `events`
    /// events in total (one allocation each for the arena and the offsets).
    pub fn with_capacity(sequences: usize, events: usize) -> Self {
        let mut offsets = Vec::with_capacity(sequences + 1);
        offsets.push(0);
        Self {
            events: EventColumn::with_capacity(events),
            offsets: offsets.into(),
        }
    }

    /// Reassembles a store from its two columns, typically zero-copy slices
    /// of a [`snapshot`](crate::snapshot) image (either width). Every CSR
    /// invariant is checked; the error string names the violated one.
    pub fn from_shared_parts(
        events: EventColumn,
        offsets: SharedSlice<u32>,
    ) -> Result<Self, String> {
        let (Some(&first), Some(&sentinel)) = (offsets.first(), offsets.last()) else {
            return Err("store offsets are empty (the sentinel entry is mandatory)".to_owned());
        };
        if first != 0 {
            return Err(format!("store offsets start at {first}, not 0"));
        }
        if let Some((a, b)) = offsets
            .iter()
            .zip(offsets.iter().skip(1))
            .find(|(a, b)| a > b)
        {
            return Err(format!("store offsets are not monotone ({a} > {b})"));
        }
        let last = u32_to_usize(sentinel);
        if last != events.len() {
            return Err(format!(
                "store offsets end at {last} but the event arena holds {} events",
                events.len()
            ));
        }
        Ok(Self { events, offsets })
    }

    /// Reassembles a store from a wide event slice plus offsets — the
    /// pre-width-tagging form of [`SeqStore::from_shared_parts`], kept for
    /// v1/v2 snapshot images (always wide) and tests.
    pub fn from_wide_parts(
        events: SharedSlice<EventId>,
        offsets: SharedSlice<u32>,
    ) -> Result<Self, String> {
        Self::from_shared_parts(EventColumn::Wide(events), offsets)
    }

    /// Appends one sequence given as an iterator of events; returns its
    /// 0-based index. On a snapshot-backed store this first materializes
    /// owned columns (copy-on-write).
    pub fn push_events<I>(&mut self, events: I) -> usize
    where
        I: IntoIterator<Item = EventId>,
    {
        self.events.extend(events);
        // Hard assert (not debug-only): a silently wrapped u32 offset would
        // make every later view slice the wrong events. ~4.29 billion
        // events is the store's documented capacity ceiling.
        let total = usize_to_u32(self.events.len());
        assert!(
            total.is_some(),
            "SeqStore offsets are u32: more than u32::MAX total events"
        );
        let total = total.unwrap_or(u32::MAX); // unreachable fallback: asserted Some above
        let offsets = self.offsets.to_mut();
        offsets.push(total);
        offsets.len() - 2
    }

    /// Number of sequences in the store.
    pub fn num_sequences(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of events over all sequences (the arena length).
    pub fn total_length(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the store holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.num_sequences() == 0
    }

    /// Length of sequence `seq`, or 0 when out of range.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.view(seq).map_or(0, SeqView::len)
    }

    /// Length of the longest sequence.
    pub fn max_sequence_length(&self) -> usize {
        self.offsets
            .iter()
            .zip(self.offsets.iter().skip(1))
            .map(|(&a, &b)| u32_to_usize(b - a))
            .max()
            .unwrap_or(0)
    }

    /// The events of sequence `seq` as a view into the arena.
    pub fn view(&self, seq: usize) -> Option<SeqView<'_>> {
        let start = u32_to_usize(*self.offsets.get(seq)?);
        let end = u32_to_usize(*self.offsets.get(seq.checked_add(1)?)?);
        Some(SeqView {
            // The CSR invariant (monotone offsets ending at the arena
            // length) makes this range valid; `?` keeps the path panic-free.
            events: self.events.range(start..end)?,
        })
    }

    /// Iterates over all sequences as [`SeqView`]s.
    pub fn iter(&self) -> SeqIter<'_> {
        SeqIter {
            store: self,
            next: 0,
        }
    }

    /// The whole event arena (all sequences concatenated), width-tagged.
    pub fn event_column(&self) -> &EventColumn {
        &self.events
    }

    /// Size of one arena element in bytes: 2 (narrow) or 4 (wide).
    pub fn element_bytes(&self) -> usize {
        self.events.element_bytes()
    }

    /// Returns `true` when the arena is stored at `u16` width.
    pub fn is_narrow(&self) -> bool {
        self.events.is_narrow()
    }

    /// Converts the arena to wide (`u32`) storage in place. Used by tests
    /// and benches to pin that mining output is width-independent.
    pub fn widen(&mut self) {
        self.events.widen();
    }

    /// The CSR offsets table (one entry per sequence plus a sentinel).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Promotes both columns into shared (`Arc`-owned) storage so that
    /// [`SeqStore::window`] can hand out zero-copy per-shard views. No
    /// event is copied; snapshot-backed stores are already shared.
    pub fn share(&mut self) {
        self.events.share();
        self.offsets.share();
    }

    /// Returns `true` when both columns are shared (mapped) storage, i.e.
    /// windows of this store are zero-copy.
    pub fn is_shared(&self) -> bool {
        self.events.is_mapped() && self.offsets.is_mapped()
    }

    /// A store holding exactly the sequences `seq_range` of this store.
    ///
    /// The returned store renumbers the sequences to `0..len`: its CSR
    /// offsets start at 0 again. On a shared store ([`SeqStore::share`] or a
    /// snapshot-backed one) the event arena of the window is a **zero-copy**
    /// [`SharedSlice`] view into this store's arena (at the same width); the
    /// offsets column is zero-copy too when the window starts at the
    /// beginning of the arena and is otherwise rebased into a fresh table
    /// (4 bytes per sequence — negligible next to the event mass).
    ///
    /// # Panics
    ///
    /// Panics when `seq_range` exceeds [`SeqStore::num_sequences`].
    pub fn window(&self, seq_range: std::ops::Range<usize>) -> SeqStore {
        assert!(
            seq_range.start <= seq_range.end && seq_range.end <= self.num_sequences(),
            "window {seq_range:?} out of bounds for a store of {} sequences",
            self.num_sequences()
        );
        // The assert above makes every lookup below in-bounds; the
        // `unwrap_or` fallbacks are unreachable and keep the path panic-free.
        let base = self.offsets.get(seq_range.start).copied().unwrap_or(0);
        let end = self.offsets.get(seq_range.end).copied().unwrap_or(base);
        let events = self.events.window(u32_to_usize(base)..u32_to_usize(end));
        let offsets = if base == 0 {
            self.offsets.window(seq_range.start..seq_range.end + 1)
        } else {
            self.offsets
                .get(seq_range.start..seq_range.end + 1)
                .unwrap_or(&[])
                .iter()
                .map(|&o| o - base)
                .collect::<Vec<u32>>()
                .into()
        };
        SeqStore { events, offsets }
    }

    /// Bytes of live data held by the store (arena + offsets table) —
    /// heap-resident when owned, mapped when snapshot-backed; either way
    /// this is the store's contribution to a snapshot image. A narrow arena
    /// counts 2 bytes per event, a wide one 4.
    ///
    /// Counts lengths rather than capacities, so the number is deterministic
    /// for a given database regardless of how it was built.
    pub fn heap_bytes(&self) -> usize {
        self.events.byte_len() + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

impl FromIterator<Sequence> for SeqStore {
    fn from_iter<T: IntoIterator<Item = Sequence>>(iter: T) -> Self {
        let mut store = SeqStore::new();
        for sequence in iter {
            store.push_events(sequence.events().iter().copied());
        }
        store
    }
}

/// A borrowed, width-tagged slice of an [`EventColumn`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum ColSlice<'a> {
    Narrow(&'a [u16]),
    Wide(&'a [EventId]),
}

/// A borrowed view of one sequence: a slice into the [`SeqStore`] arena at
/// whatever width the arena is stored.
///
/// `SeqView` is `Copy` and mirrors the read API of the owned [`Sequence`]
/// type (1-based positions, subsequence scan, landmark search), so call
/// sites work identically on flat storage. Events are always *read* as
/// [`EventId`]s; the width is purely physical. Equality compares the
/// logical event sequence, ignoring width.
#[derive(Debug, Clone, Copy)]
pub struct SeqView<'a> {
    events: ColSlice<'a>,
}

impl<'a> SeqView<'a> {
    /// Wraps a raw wide event slice as a view.
    pub fn from_events(events: &'a [EventId]) -> Self {
        Self {
            events: ColSlice::Wide(events),
        }
    }

    /// Number of events in the sequence (`length` in the paper).
    pub fn len(self) -> usize {
        match self.events {
            ColSlice::Narrow(v) => v.len(),
            ColSlice::Wide(v) => v.len(),
        }
    }

    /// Returns `true` when the sequence contains no events.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// The event at **1-based** position `pos` (`S[pos]` in the paper).
    ///
    /// Returns `None` when `pos == 0` or `pos > len`.
    #[inline]
    pub fn at(self, pos: usize) -> Option<EventId> {
        if pos == 0 {
            return None;
        }
        match self.events {
            ColSlice::Narrow(v) => v.get(pos - 1).map(|&e| e.to_event()),
            ColSlice::Wide(v) => v.get(pos - 1).copied(),
        }
    }

    /// Iterates over the events in order, widened to [`EventId`]. The
    /// lifetime is that of the store, not of the view value.
    pub fn iter_events(self) -> EventsIter<'a> {
        match self.events {
            ColSlice::Narrow(v) => EventsIter::Narrow(v.iter()),
            ColSlice::Wide(v) => EventsIter::Wide(v.iter()),
        }
    }

    /// Iterates over the events starting at 0-based offset `from` (an empty
    /// iterator when `from >= len`). This is the projection primitive the
    /// PrefixSpan/BIDE baselines scan suffixes with.
    pub fn iter_events_from(self, from: usize) -> EventsIter<'a> {
        match self.events {
            ColSlice::Narrow(v) => EventsIter::Narrow(v.get(from..).unwrap_or(&[]).iter()),
            ColSlice::Wide(v) => EventsIter::Wide(v.get(from..).unwrap_or(&[]).iter()),
        }
    }

    /// Iterates over `(position, event)` pairs with 1-based positions.
    pub fn iter_positions(self) -> impl Iterator<Item = (usize, EventId)> + 'a {
        self.iter_events().enumerate().map(|(i, e)| (i + 1, e))
    }

    /// Counts occurrences of a single event in the sequence, comparing at
    /// the native width.
    pub fn count_event(self, event: EventId) -> usize {
        match self.events {
            ColSlice::Narrow(v) => match u16::from_event(event) {
                Some(e) => v.iter().filter(|&&x| x == e).count(),
                None => 0,
            },
            ColSlice::Wide(v) => v.iter().filter(|&&x| x == event).count(),
        }
    }

    /// Returns `true` if `pattern` occurs in this sequence as a (gapped)
    /// subsequence (Definition 2.1); greedy left-to-right scan, `O(len)`.
    pub fn contains_subsequence(self, pattern: &[EventId]) -> bool {
        if pattern.is_empty() {
            return true;
        }
        let mut j = 0;
        for e in self.iter_events() {
            if pattern.get(j) == Some(&e) {
                j += 1;
                if j == pattern.len() {
                    return true;
                }
            }
        }
        false
    }

    /// Finds the *leftmost landmark* of `pattern` starting strictly after
    /// position `after` (1-based), if any. Returns 1-based positions.
    pub fn leftmost_landmark_after(self, pattern: &[EventId], after: usize) -> Option<Vec<usize>> {
        if pattern.is_empty() {
            return Some(Vec::new());
        }
        let mut landmark = Vec::with_capacity(pattern.len());
        let mut j = 0;
        for (pos, e) in self.iter_positions() {
            if pos <= after {
                continue;
            }
            if pattern.get(j) == Some(&e) {
                landmark.push(pos);
                j += 1;
                if j == pattern.len() {
                    return Some(landmark);
                }
            }
        }
        None
    }

    /// Copies the view into an owned `Vec<EventId>` (0-based indexing).
    pub fn to_vec(self) -> Vec<EventId> {
        self.iter_events().collect()
    }

    /// Copies the view into an owned [`Sequence`].
    pub fn to_sequence(self) -> Sequence {
        Sequence::from_events(self.to_vec())
    }
}

impl PartialEq for SeqView<'_> {
    /// Width-insensitive logical equality over the event sequence.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter_events().eq(other.iter_events())
    }
}

impl Eq for SeqView<'_> {}

/// Iterator over the sequences of a [`SeqStore`], yielding [`SeqView`]s.
#[derive(Debug, Clone)]
pub struct SeqIter<'a> {
    store: &'a SeqStore,
    next: usize,
}

impl<'a> Iterator for SeqIter<'a> {
    type Item = SeqView<'a>;

    fn next(&mut self) -> Option<SeqView<'a>> {
        let view = self.store.view(self.next)?;
        self.next += 1;
        Some(view)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.store.num_sequences().saturating_sub(self.next);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SeqIter<'_> {}
impl std::iter::FusedIterator for SeqIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(rows: &[&[u32]]) -> SeqStore {
        let mut store = SeqStore::new();
        for row in rows {
            store.push_events(row.iter().map(|&i| EventId(i)));
        }
        store
    }

    fn ids(raw: &[u32]) -> Vec<EventId> {
        raw.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn csr_layout_slices_sequences_out_of_one_arena() {
        let s = store(&[&[1, 2, 3], &[], &[4, 5]]);
        assert_eq!(s.num_sequences(), 3);
        assert_eq!(s.total_length(), 5);
        assert_eq!(s.offsets(), &[0, 3, 3, 5]);
        assert_eq!(s.view(0).unwrap().to_vec(), ids(&[1, 2, 3]));
        assert!(s.view(1).unwrap().is_empty());
        assert_eq!(s.view(2).unwrap().to_vec(), ids(&[4, 5]));
        assert_eq!(s.view(3), None);
        assert_eq!(s.max_sequence_length(), 3);
        assert_eq!(s.seq_len(2), 2);
        assert_eq!(s.seq_len(9), 0);
    }

    #[test]
    fn empty_store_reports_zeroes() {
        let s = SeqStore::new();
        assert!(s.is_empty());
        assert_eq!(s.num_sequences(), 0);
        assert_eq!(s.max_sequence_length(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.view(0), None);
    }

    #[test]
    fn iter_is_exact_size_and_yields_views_in_order() {
        let s = store(&[&[7], &[8, 9]]);
        let mut iter = s.iter();
        assert_eq!(iter.len(), 2);
        assert_eq!(iter.next().unwrap().to_vec(), ids(&[7]));
        assert_eq!(iter.len(), 1);
        assert_eq!(iter.next().unwrap().to_vec(), ids(&[8, 9]));
        assert_eq!(iter.next(), None);
        assert_eq!(iter.next(), None); // fused
    }

    #[test]
    fn view_mirrors_sequence_semantics() {
        let s = store(&[&[0, 1, 2, 0, 1, 2, 0]]);
        let v = s.view(0).unwrap();
        assert_eq!(v.at(0), None);
        assert_eq!(v.at(1), Some(EventId(0)));
        assert_eq!(v.at(7), Some(EventId(0)));
        assert_eq!(v.at(8), None);
        assert_eq!(v.count_event(EventId(0)), 3);
        assert!(v.contains_subsequence(&[EventId(0), EventId(1), EventId(0)]));
        assert!(!v.contains_subsequence(&[EventId(2), EventId(2), EventId(2)]));
        assert_eq!(
            v.leftmost_landmark_after(&[EventId(0), EventId(1)], 1),
            Some(vec![4, 5])
        );
        assert_eq!(v.to_sequence().len(), 7);
    }

    #[test]
    fn from_iterator_of_sequences_flattens() {
        let s: SeqStore = vec![
            Sequence::from_events(vec![EventId(1)]),
            Sequence::from_events(vec![EventId(2), EventId(3)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.num_sequences(), 2);
        assert_eq!(s.event_column().to_wide_vec(), ids(&[1, 2, 3]));
    }

    #[test]
    fn small_alphabets_build_narrow_and_widen_on_demand() {
        let mut s = store(&[&[1, 2, 3]]);
        assert!(s.is_narrow());
        assert_eq!(s.element_bytes(), 2);
        assert_eq!(s.event_column().width_name(), "u16");

        // Pushing an id beyond u16 widens the whole arena once.
        s.push_events([EventId(70_000)]);
        assert!(!s.is_narrow());
        assert_eq!(s.element_bytes(), 4);
        assert_eq!(s.event_column().to_wide_vec(), ids(&[1, 2, 3, 70_000]));
        assert_eq!(s.view(0).unwrap().to_vec(), ids(&[1, 2, 3]));
    }

    #[test]
    fn widen_preserves_logical_content_and_equality() {
        let narrow = store(&[&[1, 2, 3], &[], &[65_535]]);
        assert!(narrow.is_narrow());
        let mut wide = narrow.clone();
        wide.widen();
        assert!(!wide.is_narrow());
        // Width-insensitive equality at every level.
        assert_eq!(narrow, wide);
        assert_eq!(narrow.event_column(), wide.event_column());
        assert_eq!(narrow.view(2), wide.view(2));
        // The wide copy costs exactly twice the arena bytes.
        assert_eq!(
            wide.event_column().byte_len(),
            2 * narrow.event_column().byte_len()
        );
        // And narrows back.
        let mut column = wide.event_column().clone();
        assert!(column.fits_narrow());
        assert!(column.narrow());
        let back = SeqStore::from_shared_parts(column, wide.offsets().to_vec().into()).unwrap();
        assert_eq!(back, narrow);
        assert!(back.is_narrow());
    }

    #[test]
    fn column_count_and_get_widen_correctly() {
        let s = store(&[&[5, 6, 5, 7]]);
        let col = s.event_column();
        assert_eq!(col.count(EventId(5)), 2);
        assert_eq!(col.count(EventId(70_000)), 0); // can't occur in a narrow column
        assert_eq!(col.get(1), Some(EventId(6)));
        assert_eq!(col.get(4), None);
        assert_eq!(
            s.view(0).unwrap().iter_events_from(2).collect::<Vec<_>>(),
            ids(&[5, 7])
        );
        assert_eq!(s.view(0).unwrap().iter_events_from(9).count(), 0);
    }

    #[test]
    fn windows_slice_out_sequence_ranges_with_local_numbering() {
        let mut s = store(&[&[1, 2, 3], &[], &[4, 5], &[6]]);
        s.share();
        assert!(s.is_shared());

        let head = s.window(0..2);
        assert_eq!(head.num_sequences(), 2);
        assert_eq!(head.offsets(), &[0, 3, 3]);
        assert_eq!(head.view(0).unwrap(), s.view(0).unwrap());
        // Leading window: both columns alias the parent (zero copy), at the
        // parent's (narrow) width.
        assert_eq!(
            head.event_column().narrow_slice().unwrap().as_ptr(),
            s.event_column().narrow_slice().unwrap().as_ptr()
        );

        let tail = s.window(2..4);
        assert_eq!(tail.num_sequences(), 2);
        assert_eq!(tail.offsets(), &[0, 2, 3]);
        assert_eq!(tail.view(0).unwrap().to_vec(), ids(&[4, 5]));
        assert_eq!(tail.view(1).unwrap().to_vec(), ids(&[6]));
        // The event arena still aliases the parent at the right offset.
        assert_eq!(
            tail.event_column().narrow_slice().unwrap().as_ptr(),
            s.event_column().narrow_slice().unwrap()[3..].as_ptr()
        );

        let empty = s.window(1..1);
        assert!(empty.is_empty());
        assert_eq!(empty.offsets(), &[3 - 3]);
    }

    #[test]
    fn heap_bytes_counts_arena_at_physical_width() {
        let s = store(&[&[1, 2, 3, 4]]);
        // Narrow arena: 2 bytes per event + 2 u32 offsets.
        assert_eq!(s.heap_bytes(), 4 * 2 + 2 * 4);
        let mut wide = s.clone();
        wide.widen();
        assert_eq!(wide.heap_bytes(), 4 * 4 + 2 * 4);
    }
}
