//! The sequence database `SeqDB = {S1, ..., SN}` together with its event
//! catalog, plus an incremental [`DatabaseBuilder`].
//!
//! Since the columnar-storage refactor the database is a thin facade over a
//! flat [`SeqStore`]: one contiguous event arena plus a CSR offsets table.
//! Sequences are read through borrowed [`SeqView`] slices; the owned
//! [`Sequence`] type is only a construction unit that builders flatten into
//! the store.

use crate::catalog::{EventCatalog, EventId};
use crate::index::InvertedIndex;
use crate::sequence::Sequence;
use crate::stats::DatabaseStats;
use crate::store::{SeqIter, SeqStore, SeqView};

/// A database of sequences over a shared event alphabet.
///
/// Sequences are identified by their 0-based index (`seq` in instance
/// triples); positions inside a sequence are 1-based, matching the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequenceDatabase {
    catalog: EventCatalog,
    store: SeqStore,
}

impl SequenceDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a database from a catalog and owned sequences, flattening the
    /// rows into the columnar store.
    pub fn from_parts(catalog: EventCatalog, sequences: Vec<Sequence>) -> Self {
        Self {
            catalog,
            store: sequences.into_iter().collect(),
        }
    }

    /// Creates a database directly from a catalog and a pre-built store.
    pub fn from_store(catalog: EventCatalog, store: SeqStore) -> Self {
        Self { catalog, store }
    }

    /// Builds a database where each row is a string and each **character**
    /// is an event, e.g. `"ABCABCA"`. This is the notation used by all the
    /// worked examples in the paper and is heavily used in tests.
    pub fn from_str_rows(rows: &[&str]) -> Self {
        let mut builder = DatabaseBuilder::new();
        for row in rows {
            let tokens: Vec<String> = row.chars().map(|c| c.to_string()).collect();
            builder.push_tokens(tokens.iter().map(String::as_str));
        }
        builder.finish()
    }

    /// Builds a database where each row is a slice of whitespace-free string
    /// tokens (one token per event).
    pub fn from_token_rows<S: AsRef<str>>(rows: &[Vec<S>]) -> Self {
        let mut builder = DatabaseBuilder::new();
        for row in rows {
            builder.push_tokens(row.iter().map(AsRef::as_ref));
        }
        builder.finish()
    }

    /// The event catalog of this database.
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// The columnar event store backing this database.
    pub fn store(&self) -> &SeqStore {
        &self.store
    }

    /// Iterates over the sequences of this database as [`SeqView`] slices
    /// into the flat store.
    pub fn sequences(&self) -> SeqIter<'_> {
        self.store.iter()
    }

    /// The sequence with 0-based index `idx`, as a slice view.
    pub fn sequence(&self, idx: usize) -> Option<SeqView<'_>> {
        self.store.view(idx)
    }

    /// Number of sequences `N = |SeqDB|`.
    pub fn num_sequences(&self) -> usize {
        self.store.num_sequences()
    }

    /// Number of distinct events `E = |𝓔|` actually interned.
    pub fn num_events(&self) -> usize {
        self.catalog.len()
    }

    /// Total number of events over all sequences.
    pub fn total_length(&self) -> usize {
        self.store.total_length()
    }

    /// Length of the longest sequence (`L` in the complexity analysis).
    pub fn max_sequence_length(&self) -> usize {
        self.store.max_sequence_length()
    }

    /// Returns `true` when the database holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Builds the inverted event index of §III-D for this database.
    pub fn inverted_index(&self) -> InvertedIndex {
        InvertedIndex::build(self)
    }

    /// Promotes the store's columns into shared (`Arc`-owned) storage so
    /// per-shard [`SeqStore::window`]s alias the arena with zero copies.
    /// No event is copied; reads are unaffected. See
    /// [`crate::ShardedSeqStore`].
    pub fn share_store(&mut self) {
        self.store.share();
    }

    /// Computes summary statistics (used by the experiment harness).
    pub fn stats(&self) -> DatabaseStats {
        DatabaseStats::compute(self)
    }

    /// Total number of occurrences of `event` across all sequences.
    ///
    /// For a single-event pattern this equals its repetitive support.
    pub fn event_occurrences(&self, event: EventId) -> usize {
        self.store.event_column().count(event)
    }

    /// Converts the store's event arena to wide (`u32`) storage in place.
    /// Tests and benches use this to pin that mining output and bench
    /// numbers are width-independent; normal callers never need it.
    pub fn widen_store(&mut self) {
        self.store.widen();
    }

    /// Number of sequences that contain `event` at least once.
    ///
    /// This is the classical *sequence support* of a single event.
    pub fn event_sequence_support(&self, event: EventId) -> usize {
        self.sequences()
            .filter(|s| s.count_event(event) > 0)
            .count()
    }

    /// Renders a pattern of event ids using this database's catalog.
    pub fn render_pattern(&self, pattern: &[EventId]) -> String {
        self.catalog.render(pattern, "")
    }

    /// Interns a pattern given as labels, returning `None` if any label is
    /// unknown to the catalog.
    pub fn pattern_from_labels(&self, labels: &[&str]) -> Option<Vec<EventId>> {
        labels.iter().map(|l| self.catalog.id(l)).collect()
    }

    /// Interns a pattern given as a string of single-character event labels
    /// (the paper's notation, e.g. `"ACB"`).
    pub fn pattern_from_str(&self, pattern: &str) -> Option<Vec<EventId>> {
        pattern
            .chars()
            .map(|c| self.catalog.id(&c.to_string()))
            .collect()
    }
}

/// Incremental builder for a [`SequenceDatabase`].
///
/// The builder interns labels as they are pushed and appends events straight
/// into the flat [`SeqStore`] arena, so sequences from heterogeneous sources
/// can be combined as long as their labels agree, and `finish()` is a move —
/// no per-sequence allocation ever happens.
#[derive(Debug, Clone, Default)]
pub struct DatabaseBuilder {
    catalog: EventCatalog,
    store: SeqStore,
}

impl DatabaseBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder seeded with an existing catalog (useful when event
    /// ids must be stable across several databases, e.g. train/test splits).
    pub fn with_catalog(catalog: EventCatalog) -> Self {
        Self {
            catalog,
            store: SeqStore::new(),
        }
    }

    /// Access to the catalog built so far.
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// Interns a label without adding a sequence.
    pub fn intern(&mut self, label: &str) -> EventId {
        self.catalog.intern(label)
    }

    /// Adds a sequence given as string tokens, interning each token.
    pub fn push_tokens<'a, I>(&mut self, tokens: I) -> usize
    where
        I: IntoIterator<Item = &'a str>,
    {
        let catalog = &mut self.catalog;
        self.store
            .push_events(tokens.into_iter().map(|t| catalog.intern(t)))
    }

    /// Adds an already-interned sequence, flattening it into the store. The
    /// caller is responsible for the ids being valid for this builder's
    /// catalog.
    pub fn push_sequence(&mut self, sequence: &Sequence) -> usize {
        self.store.push_events(sequence.events().iter().copied())
    }

    /// Number of sequences added so far.
    pub fn len(&self) -> usize {
        self.store.num_sequences()
    }

    /// Returns `true` if no sequence has been added.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Finalizes the builder into a [`SequenceDatabase`] (a move of the
    /// catalog and the flat store; nothing is copied).
    pub fn finish(self) -> SequenceDatabase {
        SequenceDatabase {
            catalog: self.catalog,
            store: self.store,
        }
    }

    /// Finalizes the builder into a database plus a
    /// [`ShardedSeqStore`](crate::ShardedSeqStore): the flat store is
    /// promoted to shared storage and split into `shards` per-shard windows
    /// at event-mass-balanced sequence boundaries. The database and every
    /// window alias the same event arena — nothing is copied.
    pub fn finish_sharded(self, shards: usize) -> (SequenceDatabase, crate::ShardedSeqStore) {
        let mut db = self.finish();
        db.share_store();
        let sharded = crate::ShardedSeqStore::from_store(db.store.clone(), shards);
        (db, sharded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_rows_builds_table_ii_database() {
        // Table II: S1 = ABCABCA, S2 = AABBCCC
        let db = SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]);
        assert_eq!(db.num_sequences(), 2);
        assert_eq!(db.num_events(), 3);
        assert_eq!(db.total_length(), 14);
        assert_eq!(db.max_sequence_length(), 7);
        let a = db.catalog().id("A").unwrap();
        assert_eq!(db.sequence(0).unwrap().at(1), Some(a));
        assert_eq!(db.sequence(1).unwrap().at(2), Some(a));
    }

    #[test]
    fn event_occurrences_and_sequence_support_differ() {
        let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
        let b = db.catalog().id("B").unwrap();
        // B occurs 3 times in S1 and once in S2
        assert_eq!(db.event_occurrences(b), 4);
        assert_eq!(db.event_sequence_support(b), 2);
    }

    #[test]
    fn pattern_from_str_and_render_round_trip() {
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let p = db.pattern_from_str("ACB").unwrap();
        assert_eq!(db.render_pattern(&p), "ACB");
        assert_eq!(db.pattern_from_str("AXB"), None);
    }

    #[test]
    fn builder_with_catalog_keeps_ids_stable() {
        let catalog = EventCatalog::from_labels(["A", "B", "C"]);
        let mut builder = DatabaseBuilder::with_catalog(catalog);
        builder.push_tokens(["C", "A"]);
        let db = builder.finish();
        assert_eq!(db.catalog().id("C"), Some(EventId(2)));
        assert_eq!(db.sequence(0).unwrap().at(1), Some(EventId(2)));
    }

    #[test]
    fn token_rows_support_multi_character_labels() {
        let rows = vec![
            vec!["TxManager.begin", "TransImpl.lock", "TransImpl.unlock"],
            vec!["TransImpl.lock", "TransImpl.unlock"],
        ];
        let db = SequenceDatabase::from_token_rows(&rows);
        assert_eq!(db.num_events(), 3);
        assert_eq!(db.num_sequences(), 2);
        let lock = db.catalog().id("TransImpl.lock").unwrap();
        assert_eq!(db.event_sequence_support(lock), 2);
    }

    #[test]
    fn empty_database_reports_zeroes() {
        let db = SequenceDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.total_length(), 0);
        assert_eq!(db.max_sequence_length(), 0);
    }

    #[test]
    fn from_parts_flattens_rows_into_one_store() {
        let catalog = EventCatalog::from_labels(["A", "B"]);
        let db = SequenceDatabase::from_parts(
            catalog,
            vec![
                Sequence::from_events(vec![EventId(0), EventId(1)]),
                Sequence::from_events(vec![EventId(1)]),
            ],
        );
        assert_eq!(db.store().offsets(), &[0, 2, 3]);
        assert_eq!(
            db.store().event_column().to_wide_vec(),
            vec![EventId(0), EventId(1), EventId(1)]
        );
        assert_eq!(db.sequence(1).unwrap().to_vec(), vec![EventId(1)]);
    }

    #[test]
    fn finish_sharded_splits_zero_copy_windows() {
        let mut builder = DatabaseBuilder::new();
        builder.push_tokens(["a", "b", "c", "d"]);
        builder.push_tokens(["e", "f"]);
        builder.push_tokens(["g", "h"]);
        let (db, sharded) = builder.finish_sharded(2);
        assert_eq!(sharded.num_shards(), 2);
        assert_eq!(
            sharded
                .shards()
                .iter()
                .map(super::super::store::SeqStore::total_length)
                .sum::<usize>(),
            db.total_length()
        );
        assert!(db.store().is_shared());
        // Shard 0 aliases the database's (narrow) arena.
        assert_eq!(
            sharded
                .shard(0)
                .event_column()
                .narrow_slice()
                .unwrap()
                .as_ptr(),
            db.store().event_column().narrow_slice().unwrap().as_ptr()
        );
    }

    #[test]
    fn builder_appends_straight_into_the_flat_store() {
        let mut builder = DatabaseBuilder::new();
        builder.push_tokens(["x", "y"]);
        builder.push_sequence(&Sequence::from_events(vec![EventId(0)]));
        assert_eq!(builder.len(), 2);
        let db = builder.finish();
        assert_eq!(db.store().offsets(), &[0, 2, 3]);
        assert_eq!(db.total_length(), 3);
    }
}
