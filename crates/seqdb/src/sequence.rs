//! A single owned sequence `S = e1 e2 ... e_len` of events.
//!
//! Positions are **1-based** throughout the crate family, matching the
//! notation of the paper (`S[i]` is the i-th event, landmarks are sequences
//! of 1-based positions).
//!
//! Since the columnar-storage refactor `Sequence` is purely a
//! **construction** unit: builders flatten it into the flat
//! [`SeqStore`](crate::SeqStore) arena, and all read access inside a
//! database goes through borrowed [`SeqView`] slices. Every
//! read method on `Sequence` delegates to its view, so the two types cannot
//! drift apart.

use crate::catalog::EventId;
use crate::store::SeqView;

/// An ordered, owned list of events; the construction unit flattened into a
/// [`SequenceDatabase`](crate::SequenceDatabase)'s columnar store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Sequence {
    events: Vec<EventId>,
}

impl Sequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sequence from a vector of event ids.
    pub fn from_events(events: Vec<EventId>) -> Self {
        Self { events }
    }

    /// Appends an event to the end of the sequence.
    pub fn push(&mut self, event: EventId) {
        self.events.push(event);
    }

    /// A borrowed [`SeqView`] of this sequence (the type all read access in
    /// the crate family is expressed in).
    pub fn as_view(&self) -> SeqView<'_> {
        SeqView::from_events(&self.events)
    }

    /// Number of events in the sequence (`length` in the paper).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the sequence contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event at **1-based** position `pos` (`S[pos]` in the paper).
    ///
    /// Returns `None` when `pos == 0` or `pos > len`.
    pub fn at(&self, pos: usize) -> Option<EventId> {
        self.as_view().at(pos)
    }

    /// The underlying events as a slice (0-based indexing).
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// Iterates over `(position, event)` pairs with 1-based positions.
    pub fn iter_positions(&self) -> impl Iterator<Item = (usize, EventId)> + '_ {
        self.as_view().iter_positions()
    }

    /// Returns `true` if `pattern` occurs in this sequence as a (gapped)
    /// subsequence, i.e. if there exists at least one landmark of `pattern`
    /// (Definition 2.1); greedy left-to-right scan in `O(len)` time.
    pub fn contains_subsequence(&self, pattern: &[EventId]) -> bool {
        self.as_view().contains_subsequence(pattern)
    }

    /// Finds the *leftmost landmark* of `pattern` in this sequence starting
    /// strictly after position `after` (1-based), if any.
    ///
    /// Returns 1-based positions. This is a convenience routine used by the
    /// baseline miners and by tests; the repetitive-support machinery in
    /// `rgs-core` uses the inverted index instead.
    pub fn leftmost_landmark_after(&self, pattern: &[EventId], after: usize) -> Option<Vec<usize>> {
        self.as_view().leftmost_landmark_after(pattern, after)
    }

    /// Counts occurrences of a single event in the sequence.
    pub fn count_event(&self, event: EventId) -> usize {
        self.as_view().count_event(event)
    }
}

impl FromIterator<EventId> for Sequence {
    fn from_iter<T: IntoIterator<Item = EventId>>(iter: T) -> Self {
        Sequence::from_events(iter.into_iter().collect())
    }
}

impl From<Vec<EventId>> for Sequence {
    fn from(events: Vec<EventId>) -> Self {
        Sequence::from_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[u32]) -> Sequence {
        ids.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn positions_are_one_based() {
        let s = seq(&[10, 20, 30]);
        assert_eq!(s.at(0), None);
        assert_eq!(s.at(1), Some(EventId(10)));
        assert_eq!(s.at(3), Some(EventId(30)));
        assert_eq!(s.at(4), None);
    }

    #[test]
    fn contains_subsequence_with_gaps() {
        // S1 = A B C A B C A  (Table II), pattern ABA
        let s = seq(&[0, 1, 2, 0, 1, 2, 0]);
        assert!(s.contains_subsequence(&[EventId(0), EventId(1), EventId(0)]));
        assert!(s.contains_subsequence(&[]));
        assert!(!s.contains_subsequence(&[EventId(2), EventId(2), EventId(2)]));
    }

    #[test]
    fn leftmost_landmark_respects_after() {
        // A B C A B C A
        let s = seq(&[0, 1, 2, 0, 1, 2, 0]);
        let p = [EventId(0), EventId(1)];
        assert_eq!(s.leftmost_landmark_after(&p, 0), Some(vec![1, 2]));
        assert_eq!(s.leftmost_landmark_after(&p, 1), Some(vec![4, 5]));
        assert_eq!(s.leftmost_landmark_after(&p, 4), None);
    }

    #[test]
    fn count_event_counts_all_occurrences() {
        let s = seq(&[0, 0, 1, 0, 2]);
        assert_eq!(s.count_event(EventId(0)), 3);
        assert_eq!(s.count_event(EventId(9)), 0);
    }

    #[test]
    fn push_and_len() {
        let mut s = Sequence::new();
        assert!(s.is_empty());
        s.push(EventId(5));
        s.push(EventId(6));
        assert_eq!(s.len(), 2);
        assert_eq!(s.events(), &[EventId(5), EventId(6)]);
    }

    #[test]
    fn iter_positions_yields_one_based_pairs() {
        let s = seq(&[7, 8]);
        let v: Vec<_> = s.iter_positions().collect();
        assert_eq!(v, vec![(1, EventId(7)), (2, EventId(8))]);
    }

    #[test]
    fn as_view_round_trips() {
        let s = seq(&[1, 2, 3]);
        let v = s.as_view();
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_sequence(), s);
    }
}
