//! Checked integer conversions for CSR offset/length math.
//!
//! The columnar stores keep CSR offsets as `u32` and snapshot section
//! counts/byte lengths as `u64`, while slicing happens in `usize`. A bare
//! `as` cast between those widths silently truncates on narrow targets, so
//! every conversion in offset/length math goes through the helpers below:
//! widening conversions are provably lossless (backed by compile-time
//! width asserts), narrowing ones return `Option` and force the caller to
//! surface a [`SnapshotError`](crate::snapshot::SnapshotError) or assert an
//! invariant instead of wrapping. `cargo run -p xtask -- audit` bans raw
//! `as` narrowing in the CSR modules in favour of these.

// Every supported target has 32-bit-or-wider pointers (the snapshot layer
// additionally requires 64-bit; see `snapshot::mapping`), so `u32 -> usize`
// cannot truncate, and no target has pointers wider than 64 bits, so
// `usize -> u64` cannot truncate either.
const _: () = assert!(std::mem::size_of::<usize>() >= 4);
const _: () = assert!(std::mem::size_of::<usize>() <= 8);

/// Widens a `u32` CSR offset to a `usize` index. Lossless on every
/// supported target (compile-time asserted above).
#[inline]
#[must_use]
#[allow(clippy::cast_possible_truncation)] // const-asserted: usize >= 32 bits
pub fn u32_to_usize(v: u32) -> usize {
    v as usize
}

/// Widens a `usize` length to a `u64` section count. Lossless on every
/// supported target (compile-time asserted above).
#[inline]
#[must_use]
pub fn usize_to_u64(v: usize) -> u64 {
    v as u64
}

/// Narrows a `u64` section count or byte length to a `usize` index.
///
/// Returns `None` when the value does not fit — possible only on 32-bit
/// targets, where a >4 GiB snapshot section is unaddressable and must be
/// reported as corrupt/unsupported rather than silently wrapped.
#[inline]
#[must_use]
pub fn u64_to_usize(v: u64) -> Option<usize> {
    usize::try_from(v).ok()
}

/// Narrows a `usize` length to a `u32` CSR offset.
///
/// Returns `None` when the value exceeds `u32::MAX` — the store's
/// documented capacity ceiling (~4.29 billion events).
#[inline]
#[must_use]
pub fn usize_to_u32(v: usize) -> Option<u32> {
    u32::try_from(v).ok()
}

/// Narrows a `u64` to a `u32` CSR offset, `None` when it does not fit.
#[inline]
#[must_use]
pub fn u64_to_u32(v: u64) -> Option<u32> {
    u32::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_lossless() {
        assert_eq!(u32_to_usize(u32::MAX), u32::MAX as usize);
        assert_eq!(usize_to_u64(7), 7);
    }

    #[test]
    fn narrowing_detects_overflow() {
        assert_eq!(usize_to_u32(42), Some(42));
        assert_eq!(u64_to_u32(u64::from(u32::MAX) + 1), None);
        assert_eq!(u64_to_usize(9), Some(9));
        #[cfg(target_pointer_width = "64")]
        assert_eq!(
            usize_to_u32(usize::try_from(u64::from(u32::MAX)).unwrap() + 1),
            None
        );
    }
}
