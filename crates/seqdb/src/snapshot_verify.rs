//! Deep static verification of snapshot images.
//!
//! [`verify_bytes`] proves (or refutes) every cross-section invariant of a
//! v1–v3 prepared-database image **directly on the bytes** — no
//! `PreparedDb`, no `mmap`, no in-place reinterpretation — so it is safe to
//! point at untrusted or suspect files. Unlike
//! [`SnapshotImage::open`](super::SnapshotImage::open), which fails fast on
//! the first problem, the verifier keeps going and reports *every*
//! violation it can still reach, each with the owning section and the
//! absolute byte offset of the offending datum.
//!
//! Checked invariants, per layer:
//!
//! * **structure** — magic, version range, endianness marker, recorded
//!   file length, reserved header bytes, section-table bounds, element
//!   sizes, payload alignment/bounds, duplicate ids, pairwise payload
//!   overlap;
//! * **checksum** — the FNV-1a 64 over every byte except the checksum
//!   field itself;
//! * **layout** — the cross-section semantics of the prepared-database
//!   composition: `meta` arity, store CSR offsets monotone and ending at
//!   the arena length, the event arena's element width legal for the
//!   header version (narrow `u16` arenas need format v3),
//!   every arena event inside the catalog alphabet,
//!   catalog bijectivity (label count = alphabet size, no duplicates,
//!   valid UTF-8, no trailing bytes), per-event counts equal to an actual
//!   recount of the arena, the candidate order exactly the occurring
//!   events in id order, index CSR shape and strictly-ascending 1-based
//!   posting lists whose every position lands on the right event, the
//!   shard table partitioning `0..num_sequences` exactly, and per-shard
//!   store offsets windowing the global CSR table entry for entry.
//!
//! The three kinds are reported separately so callers can distinguish a
//! structurally-valid-but-bit-flipped image (checksum only) from genuine
//! layout corruption. `rgs-mine snapshot verify IMG` is the CLI front end;
//! `PreparedDb::verify_invariants()` in `rgs-core` runs the same layout
//! checks on live state.

use std::fmt;
use std::io;
use std::path::Path;

use crate::cast::{u32_to_usize, u64_to_usize, usize_to_u64};

use super::{
    checksum_of, section_id, SectionEntry, ENDIAN_MARKER, ENTRY_LEN, HEADER_LEN, SECTION_ALIGN,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SNAPSHOT_VERSION_MIN,
};

/// Which layer of the format a [`Violation`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The container itself is malformed (header, table, bounds).
    Structure,
    /// The recorded checksum does not match the file bytes.
    Checksum,
    /// The sections are individually well-formed but violate a
    /// cross-section invariant of the prepared-database composition.
    Layout,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::Structure => "structure",
            ViolationKind::Checksum => "checksum",
            ViolationKind::Layout => "layout",
        })
    }
}

/// One violated invariant, anchored to a section and byte offset where
/// that is meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The format layer the violation belongs to.
    pub kind: ViolationKind,
    /// The owning section id, when the violation is section-scoped.
    pub section: Option<u32>,
    /// Absolute byte offset of the offending datum, when known.
    pub offset: Option<u64>,
    /// Human-readable description of the violated invariant.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(id) = self.section {
            write!(f, ": section {id} ({})", section_id::name(id))?;
        }
        if let Some(offset) = self.offset {
            write!(f, " @ byte {offset}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The outcome of verifying one image: what could be parsed, plus every
/// violation found. An empty violation list means the image upholds every
/// invariant this build knows about.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The format version stamped into the header, when readable.
    pub version: Option<u32>,
    /// Actual file length in bytes.
    pub file_len: u64,
    /// Number of section-table entries that could be parsed.
    pub section_count: usize,
    /// Every violated invariant, in check order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// `true` when not a single invariant is violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when at least one violation of `kind` was found.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }

    /// `true` for the bit-rot signature: the sections are structurally and
    /// semantically intact but the checksum does not match — i.e. *only*
    /// checksum violations were found (the flipped bits live in padding or
    /// the checksum field itself).
    pub fn checksum_broken_only(&self) -> bool {
        self.has(ViolationKind::Checksum)
            && !self.has(ViolationKind::Structure)
            && !self.has(ViolationKind::Layout)
    }
}

/// Verifies the snapshot file at `path`. I/O errors (missing file,
/// permission) are returned as errors; everything found *inside* the file
/// is a [`Violation`] in the report.
pub fn verify_file(path: impl AsRef<Path>) -> io::Result<Report> {
    let data = std::fs::read(path)?;
    Ok(verify_bytes(&data))
}

/// Verifies a snapshot image given its raw bytes. Never panics, regardless
/// of input; the bytes need no particular alignment (every element is
/// decoded, not reinterpreted).
pub fn verify_bytes(data: &[u8]) -> Report {
    let mut v = Verifier {
        data,
        report: Report {
            version: None,
            file_len: usize_to_u64(data.len()),
            section_count: 0,
            violations: Vec::new(),
        },
    };
    v.run();
    v.report
}

fn u32_at(data: &[u8], offset: usize) -> Option<u32> {
    let bytes = data.get(offset..offset.checked_add(4)?)?;
    Some(u32::from_le_bytes(bytes.try_into().ok()?))
}

fn u64_at(data: &[u8], offset: usize) -> Option<u64> {
    let bytes = data.get(offset..offset.checked_add(8)?)?;
    Some(u64::from_le_bytes(bytes.try_into().ok()?))
}

/// The `i`-th little-endian `u32` of a section payload.
fn elem_u32(section: &[u8], i: usize) -> Option<u32> {
    u32_at(section, i.checked_mul(4)?)
}

/// The `i`-th little-endian `u64` of a section payload.
fn elem_u64(section: &[u8], i: usize) -> Option<u64> {
    u64_at(section, i.checked_mul(8)?)
}

fn iter_u32(section: &[u8]) -> impl Iterator<Item = u32> + '_ {
    section
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap_or([0; 4])))
}

fn iter_u16(section: &[u8]) -> impl Iterator<Item = u16> + '_ {
    section
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes(c.try_into().unwrap_or([0; 2])))
}

struct Verifier<'a> {
    data: &'a [u8],
    report: Report,
}

/// The `meta` section, decoded.
#[derive(Clone, Copy)]
struct Meta {
    num_sequences: usize,
    num_events: usize,
    total_length: usize,
}

impl<'a> Verifier<'a> {
    fn push(
        &mut self,
        kind: ViolationKind,
        section: Option<u32>,
        offset: Option<u64>,
        detail: String,
    ) {
        self.report.violations.push(Violation {
            kind,
            section,
            offset,
            detail,
        });
    }

    fn structure(&mut self, offset: u64, detail: String) {
        self.push(ViolationKind::Structure, None, Some(offset), detail);
    }

    /// A layout violation anchored at element `elem` of `entry`'s payload.
    fn layout(&mut self, entry: &SectionEntry, elem: u64, detail: String) {
        let offset = entry
            .offset
            .checked_add(elem.saturating_mul(u64::from(entry.elem_size)));
        self.push(ViolationKind::Layout, Some(entry.id), offset, detail);
    }

    /// A layout violation about a section as a whole (or its absence).
    fn layout_section(&mut self, id: u32, detail: String) {
        self.push(ViolationKind::Layout, Some(id), None, detail);
    }

    fn run(&mut self) {
        let Some(sections) = self.check_container() else {
            return;
        };
        self.report.section_count = sections.len();
        self.check_composition(&sections);
    }

    // -- structure + checksum ------------------------------------------------

    /// Header, checksum, and section-table checks. Returns the parseable
    /// in-bounds sections, or `None` when the container is too broken to
    /// locate any payload.
    fn check_container(&mut self) -> Option<Vec<SectionEntry>> {
        let data = self.data;
        let len = usize_to_u64(data.len());
        if data.len() < u64_to_usize(HEADER_LEN).unwrap_or(usize::MAX) {
            self.structure(
                0,
                format!("file is {len} bytes, shorter than the {HEADER_LEN}-byte header"),
            );
            return None;
        }
        if data.get(..8) != Some(&SNAPSHOT_MAGIC[..]) {
            self.structure(0, "bad magic: not a snapshot file".to_owned());
            return None;
        }
        let version = u32_at(data, 8).unwrap_or(0);
        self.report.version = Some(version);
        if !(SNAPSHOT_VERSION_MIN..=SNAPSHOT_VERSION).contains(&version) {
            self.structure(
                8,
                format!(
                    "format version {version}; this build reads versions \
                     {SNAPSHOT_VERSION_MIN} through {SNAPSHOT_VERSION}"
                ),
            );
            return None;
        }
        let endian = u32_at(data, 12).unwrap_or(0);
        if endian != ENDIAN_MARKER {
            self.structure(
                12,
                format!("endianness marker {endian:#010x} (expected {ENDIAN_MARKER:#010x})"),
            );
        }
        let recorded_len = u64_at(data, 16).unwrap_or(0);
        if recorded_len != len {
            self.structure(
                16,
                format!("header records {recorded_len} bytes, file has {len}"),
            );
        }
        for (i, &byte) in data.get(36..64).unwrap_or(&[]).iter().enumerate() {
            if byte != 0 {
                self.structure(
                    36 + usize_to_u64(i),
                    "reserved header byte is not zero".to_owned(),
                );
                break;
            }
        }

        let recorded_checksum = u64_at(data, 24).unwrap_or(0);
        let computed = checksum_of(data);
        if recorded_checksum != computed {
            self.push(
                ViolationKind::Checksum,
                None,
                Some(24),
                format!(
                    "header records {recorded_checksum:#018x}, file hashes to {computed:#018x}"
                ),
            );
        }

        let section_count = u64::from(u32_at(data, 32).unwrap_or(0));
        let table_end = match ENTRY_LEN
            .checked_mul(section_count)
            .and_then(|t| t.checked_add(HEADER_LEN))
        {
            Some(table_end) if table_end <= len => table_end,
            _ => {
                self.structure(
                    32,
                    format!("section table ({section_count} entries) exceeds the file length"),
                );
                return None;
            }
        };

        let mut sections: Vec<SectionEntry> = Vec::new();
        for i in 0..section_count {
            let base = HEADER_LEN + i * ENTRY_LEN;
            let Some(base_idx) = u64_to_usize(base) else {
                break;
            };
            let entry = SectionEntry {
                id: u32_at(data, base_idx).unwrap_or(0),
                elem_size: u32_at(data, base_idx + 4).unwrap_or(0),
                offset: u64_at(data, base_idx + 8).unwrap_or(0),
                byte_len: u64_at(data, base_idx + 16).unwrap_or(0),
                count: u64_at(data, base_idx + 24).unwrap_or(0),
            };
            let mut usable = true;
            if !matches!(entry.elem_size, 1 | 2 | 4 | 8) {
                self.structure(
                    base + 4,
                    format!(
                        "section {}: element size {} is not 1, 2, 4, or 8",
                        entry.id, entry.elem_size
                    ),
                );
                usable = false;
            }
            if !entry.offset.is_multiple_of(SECTION_ALIGN) {
                self.structure(
                    base + 8,
                    format!(
                        "section {}: payload offset {} is not {SECTION_ALIGN}-byte aligned",
                        entry.id, entry.offset
                    ),
                );
            }
            if entry.offset < table_end {
                self.structure(
                    base + 8,
                    format!("section {}: payload overlaps the header or table", entry.id),
                );
                usable = false;
            }
            match entry.offset.checked_add(entry.byte_len) {
                Some(end) if end <= len => {}
                _ => {
                    self.structure(
                        base + 16,
                        format!(
                            "section {}: payload [{}, +{}) exceeds the {len}-byte file",
                            entry.id, entry.offset, entry.byte_len
                        ),
                    );
                    usable = false;
                }
            }
            if entry
                .count
                .checked_mul(u64::from(entry.elem_size))
                .is_none_or(|expected| entry.byte_len != expected)
            {
                self.structure(
                    base + 16,
                    format!(
                        "section {}: byte length {} != count {} x element size {}",
                        entry.id, entry.byte_len, entry.count, entry.elem_size
                    ),
                );
                usable = false;
            }
            if sections.iter().any(|s| s.id == entry.id) {
                self.structure(base, format!("duplicate section id {}", entry.id));
                usable = false;
            }
            if usable {
                sections.push(entry);
            }
        }

        // Pairwise payload overlap — `open` tolerates this (it only checks
        // bounds), but an overlap means one arena aliases another, which no
        // writer produces.
        for (i, a) in sections.iter().enumerate() {
            for b in sections.iter().skip(i + 1) {
                let disjoint = a.offset.saturating_add(a.byte_len) <= b.offset
                    || b.offset.saturating_add(b.byte_len) <= a.offset;
                if !disjoint && a.byte_len > 0 && b.byte_len > 0 {
                    self.structure(a.offset, format!("sections {} and {} overlap", a.id, b.id));
                }
            }
        }
        Some(sections)
    }

    // -- layout --------------------------------------------------------------

    fn find(sections: &[SectionEntry], id: u32) -> Option<&SectionEntry> {
        sections.iter().find(|s| s.id == id)
    }

    fn payload(&self, entry: &SectionEntry) -> &'a [u8] {
        let start = u64_to_usize(entry.offset).unwrap_or(usize::MAX);
        let len = u64_to_usize(entry.byte_len).unwrap_or(0);
        self.data
            .get(start..start.saturating_add(len))
            .unwrap_or(&[])
    }

    /// Looks a section up and checks id + element size + count in one go.
    fn expect_section(
        &mut self,
        sections: &[SectionEntry],
        id: u32,
        elem_size: u32,
        count: Option<u64>,
    ) -> Option<SectionEntry> {
        let Some(&entry) = Self::find(sections, id) else {
            self.layout_section(id, "section is missing".to_owned());
            return None;
        };
        if entry.elem_size != elem_size {
            self.layout(
                &entry,
                0,
                format!(
                    "holds {}-byte elements, expected {elem_size}",
                    entry.elem_size
                ),
            );
            return None;
        }
        if let Some(expected) = count {
            if entry.count != expected {
                self.layout(
                    &entry,
                    0,
                    format!("holds {} elements, expected {expected}", entry.count),
                );
                return None;
            }
        }
        Some(entry)
    }

    /// Checks one CSR offsets column: starts at 0, monotone non-decreasing,
    /// ends at `end`. Reports each violated clause at its byte offset.
    fn check_csr_u32(&mut self, entry: &SectionEntry, end: u64, what: &str) -> bool {
        let payload = self.payload(entry);
        let mut ok = true;
        if elem_u32(payload, 0).unwrap_or(0) != 0 {
            self.layout(
                entry,
                0,
                format!(
                    "{what} offsets start at {}, not 0",
                    elem_u32(payload, 0).unwrap_or(0)
                ),
            );
            ok = false;
        }
        let mut prev = 0u32;
        for (i, value) in iter_u32(payload).enumerate() {
            if value < prev {
                self.layout(
                    entry,
                    usize_to_u64(i),
                    format!("{what} offsets are not monotone ({prev} > {value})"),
                );
                ok = false;
                break;
            }
            prev = value;
        }
        let last = u64::from(iter_u32(payload).last().unwrap_or(0));
        if last != end {
            self.layout(
                entry,
                entry.count.saturating_sub(1),
                format!("{what} offsets end at {last}, expected {end}"),
            );
            ok = false;
        }
        ok
    }

    fn check_composition(&mut self, sections: &[SectionEntry]) {
        // meta -- everything else is cross-checked against it.
        let Some(meta_entry) = self.expect_section(sections, section_id::META, 8, Some(3)) else {
            return;
        };
        let meta_payload = self.payload(&meta_entry);
        let meta = {
            let read = |i| elem_u64(meta_payload, i).and_then(u64_to_usize);
            match (read(0), read(1), read(2)) {
                (Some(num_sequences), Some(num_events), Some(total_length)) => Meta {
                    num_sequences,
                    num_events,
                    total_length,
                },
                _ => {
                    self.layout(&meta_entry, 0, "meta value overflows usize".to_owned());
                    return;
                }
            }
        };

        // store.events: element width legal for the header version (narrow
        // u16 arenas need format v3), every event inside the alphabet.
        let narrow_allowed = matches!(self.report.version, Some(v) if v >= 3);
        let events_entry = match Self::find(sections, section_id::STORE_EVENTS) {
            None => {
                self.layout_section(section_id::STORE_EVENTS, "section is missing".to_owned());
                None
            }
            Some(&entry) => {
                if !(entry.elem_size == 4 || (narrow_allowed && entry.elem_size == 2)) {
                    let allowed = if narrow_allowed {
                        "2 or 4"
                    } else {
                        "4 (narrow u16 arenas need format v3)"
                    };
                    self.layout(
                        &entry,
                        0,
                        format!(
                            "holds {}-byte elements, expected {allowed}",
                            entry.elem_size
                        ),
                    );
                    None
                } else if entry.count != usize_to_u64(meta.total_length) {
                    self.layout(
                        &entry,
                        0,
                        format!(
                            "holds {} elements, expected {}",
                            entry.count, meta.total_length
                        ),
                    );
                    None
                } else {
                    Some(entry)
                }
            }
        };
        let arena: Vec<u32> = events_entry
            .map(|e| {
                let payload = self.payload(&e);
                if e.elem_size == 2 {
                    iter_u16(payload).map(u32::from).collect()
                } else {
                    iter_u32(payload).collect()
                }
            })
            .unwrap_or_default();
        if let Some(entry) = events_entry {
            let bad = arena
                .iter()
                .enumerate()
                .filter(|(_, &e)| u32_to_usize(e) >= meta.num_events)
                .map(|(i, &e)| (i, e))
                .collect::<Vec<_>>();
            if let Some(&(first, value)) = bad.first() {
                self.layout(
                    &entry,
                    usize_to_u64(first),
                    format!(
                        "{} events reference ids outside the {}-event alphabet (first: id {} \
                         at element {})",
                        bad.len(),
                        meta.num_events,
                        value,
                        first
                    ),
                );
            }
        }

        // store.offsets: the global CSR column.
        let store_offsets_entry = self.expect_section(
            sections,
            section_id::STORE_OFFSETS,
            4,
            Some(usize_to_u64(meta.num_sequences) + 1),
        );
        let store_offsets: Vec<u32> = store_offsets_entry
            .map(|e| iter_u32(self.payload(&e)).collect())
            .unwrap_or_default();
        let store_csr_ok = store_offsets_entry.is_some_and(|entry| {
            self.check_csr_u32(&entry, usize_to_u64(meta.total_length), "store")
        });

        // catalog: bijective with the alphabet.
        self.check_catalog(sections, meta);

        // event.counts + event.order against an actual recount of the arena.
        let mut histogram = vec![0u64; meta.num_events];
        for &event in &arena {
            if let Some(slot) = histogram.get_mut(u32_to_usize(event)) {
                *slot += 1;
            }
        }
        if let Some(entry) = self.expect_section(
            sections,
            section_id::EVENT_COUNTS,
            8,
            Some(usize_to_u64(meta.num_events)),
        ) {
            let payload = self.payload(&entry);
            for (i, expected) in histogram.iter().enumerate() {
                let recorded = elem_u64(payload, i).unwrap_or(0);
                if recorded != *expected {
                    self.layout(
                        &entry,
                        usize_to_u64(i),
                        format!(
                            "event {i} records {recorded} occurrences but the arena holds \
                             {expected}"
                        ),
                    );
                    break;
                }
            }
        }
        if let Some(entry) = self.expect_section(sections, section_id::EVENT_ORDER, 4, None) {
            let recorded: Vec<u32> = iter_u32(self.payload(&entry)).collect();
            let expected: Vec<u32> = histogram
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .filter_map(|(i, _)| crate::cast::usize_to_u32(i))
                .collect();
            if recorded != expected {
                self.layout(
                    &entry,
                    0,
                    format!(
                        "candidate order holds {} ids, expected the {} occurring events in \
                         id order",
                        recorded.len(),
                        expected.len()
                    ),
                );
            }
        }

        // The index layer: global pair (v1) or shard table + triples (v2).
        if self.report.version == Some(1) {
            self.check_index_pair(
                sections,
                section_id::INDEX_OFFSETS,
                section_id::INDEX_POSITIONS,
                meta.num_sequences,
                meta,
                &arena,
                (store_csr_ok).then_some((&store_offsets, 0)),
                "index",
            );
        } else {
            self.check_shards(
                sections,
                meta,
                &arena,
                store_csr_ok.then_some(&store_offsets),
            );
        }
    }

    fn check_catalog(&mut self, sections: &[SectionEntry], meta: Meta) {
        let Some(entry) = self.expect_section(sections, section_id::CATALOG, 1, None) else {
            return;
        };
        let payload = self.payload(&entry);
        let Some(count) = elem_u32(payload, 0).map(u32_to_usize) else {
            self.layout(&entry, 0, "catalog section is truncated".to_owned());
            return;
        };
        if count != meta.num_events {
            self.layout(
                &entry,
                0,
                format!(
                    "catalog holds {count} labels but meta records {} events",
                    meta.num_events
                ),
            );
        }
        let mut labels: Vec<&[u8]> = Vec::new();
        let mut cursor = 4usize;
        for i in 0..count {
            let Some(len) = u32_at(payload, cursor).map(u32_to_usize) else {
                self.layout(
                    &entry,
                    usize_to_u64(cursor),
                    format!("catalog is truncated before label {i}"),
                );
                return;
            };
            cursor += 4;
            let Some(label) = payload.get(cursor..cursor.saturating_add(len)) else {
                self.layout(
                    &entry,
                    usize_to_u64(cursor),
                    format!("catalog label {i} is truncated"),
                );
                return;
            };
            if std::str::from_utf8(label).is_err() {
                self.layout(
                    &entry,
                    usize_to_u64(cursor),
                    format!("catalog label {i} is not valid UTF-8"),
                );
            }
            if labels.contains(&label) {
                self.layout(
                    &entry,
                    usize_to_u64(cursor),
                    format!("catalog label {i} is a duplicate (ids would renumber)"),
                );
            }
            labels.push(label);
            cursor += len;
        }
        if usize_to_u64(cursor) != entry.byte_len {
            self.layout(
                &entry,
                usize_to_u64(cursor),
                format!(
                    "catalog has {} trailing bytes",
                    entry.byte_len.saturating_sub(usize_to_u64(cursor))
                ),
            );
        }
    }

    /// Checks one inverted-index (offsets, positions) pair covering
    /// `num_sequences` local sequences. `store_window` is the validated
    /// global store CSR column plus the first covered global sequence — when
    /// present, every position is checked to land on the right event of the
    /// right sequence in the global arena.
    #[allow(clippy::too_many_arguments)]
    fn check_index_pair(
        &mut self,
        sections: &[SectionEntry],
        offsets_id: u32,
        positions_id: u32,
        num_sequences: usize,
        meta: Meta,
        arena: &[u32],
        store_window: Option<(&Vec<u32>, usize)>,
        what: &str,
    ) -> u64 {
        let slots = usize_to_u64(num_sequences) * usize_to_u64(meta.num_events);
        let offsets_entry = self.expect_section(sections, offsets_id, 4, Some(slots + 1));
        let positions_entry = self.expect_section(sections, positions_id, 4, None);
        let (Some(offsets_entry), Some(positions_entry)) = (offsets_entry, positions_entry) else {
            return 0;
        };
        let positions_count = positions_entry.count;
        if !self.check_csr_u32(&offsets_entry, positions_count, what) {
            return positions_count;
        }
        let offsets: Vec<u32> = iter_u32(self.payload(&offsets_entry)).collect();
        let positions: Vec<u32> = iter_u32(self.payload(&positions_entry)).collect();

        for local_seq in 0..num_sequences {
            // The bounds of the owning sequence in the global arena.
            let seq_window = store_window.and_then(|(global_offsets, seq_base)| {
                let global_seq = seq_base + local_seq;
                let start = *global_offsets.get(global_seq)?;
                let end = *global_offsets.get(global_seq + 1)?;
                Some((u32_to_usize(start), u32_to_usize(end)))
            });
            for event in 0..meta.num_events {
                let slot = local_seq * meta.num_events + event;
                let (Some(&from), Some(&to)) = (offsets.get(slot), offsets.get(slot + 1)) else {
                    continue;
                };
                let mut prev = 0u32;
                for i in u32_to_usize(from)..u32_to_usize(to) {
                    let Some(&pos) = positions.get(i) else {
                        continue;
                    };
                    if pos == 0 {
                        self.layout(
                            &positions_entry,
                            usize_to_u64(i),
                            format!("{what} slot {slot}: position 0 (positions are 1-based)"),
                        );
                        return positions_count;
                    }
                    if pos <= prev && prev != 0 {
                        self.layout(
                            &positions_entry,
                            usize_to_u64(i),
                            format!(
                                "{what} slot {slot}: positions not strictly ascending \
                                 ({prev} then {pos})"
                            ),
                        );
                        return positions_count;
                    }
                    prev = pos;
                    if let Some((start, end)) = seq_window {
                        let global = start + u32_to_usize(pos) - 1;
                        if global >= end {
                            self.layout(
                                &positions_entry,
                                usize_to_u64(i),
                                format!(
                                    "{what} slot {slot}: position {pos} exceeds the \
                                     {}-event sequence",
                                    end - start
                                ),
                            );
                            return positions_count;
                        }
                        let actual = arena.get(global).copied().unwrap_or(u32::MAX);
                        if u32_to_usize(actual) != event {
                            self.layout(
                                &positions_entry,
                                usize_to_u64(i),
                                format!(
                                    "{what} slot {slot}: position {pos} lands on event \
                                     {actual}, not {event}"
                                ),
                            );
                            return positions_count;
                        }
                    }
                }
            }
        }
        positions_count
    }

    fn check_shards(
        &mut self,
        sections: &[SectionEntry],
        meta: Meta,
        arena: &[u32],
        store_offsets: Option<&Vec<u32>>,
    ) {
        let Some(table_entry) = self.expect_section(sections, section_id::SHARD_TABLE, 8, None)
        else {
            return;
        };
        let table: Vec<u64> = {
            let payload = self.payload(&table_entry);
            (0..u64_to_usize(table_entry.count).unwrap_or(0))
                .filter_map(|i| elem_u64(payload, i))
                .collect()
        };
        if table.len() < 2 {
            self.layout(
                &table_entry,
                0,
                format!(
                    "shard table holds {} boundaries, needs at least 2",
                    table.len()
                ),
            );
            return;
        }
        // The table must partition 0..num_sequences exactly.
        let mut partition_ok = true;
        if table.first() != Some(&0) {
            self.layout(
                &table_entry,
                0,
                format!(
                    "shard table starts at {}, not 0",
                    table.first().copied().unwrap_or(0)
                ),
            );
            partition_ok = false;
        }
        if let Some(i) = (1..table.len()).find(|&i| table.get(i) < table.get(i - 1)) {
            self.layout(
                &table_entry,
                usize_to_u64(i),
                "shard table boundaries are not monotone".to_owned(),
            );
            partition_ok = false;
        }
        if table.last() != Some(&usize_to_u64(meta.num_sequences)) {
            self.layout(
                &table_entry,
                usize_to_u64(table.len() - 1),
                format!(
                    "shard table ends at {} but meta records {} sequences",
                    table.last().copied().unwrap_or(0),
                    meta.num_sequences
                ),
            );
            partition_ok = false;
        }
        let num_shards = table.len() - 1;

        // No per-shard section may reference a shard the table doesn't have.
        for entry in sections {
            if let Some(shard) = section_id::shard_of(entry.id) {
                if u32_to_usize(shard) >= num_shards {
                    self.layout(
                        entry,
                        0,
                        format!("references shard {shard}, but the table has {num_shards}"),
                    );
                }
            }
        }
        if !partition_ok {
            return;
        }

        let mut positions_total = 0u64;
        for k in 0..num_shards {
            let Some(shard_id) = crate::cast::usize_to_u32(k) else {
                break;
            };
            let (start, end) = match (
                table.get(k).copied().and_then(u64_to_usize),
                table.get(k + 1).copied().and_then(u64_to_usize),
            ) {
                (Some(start), Some(end)) => (start, end),
                _ => continue,
            };
            let range_len = end - start;

            // Shard store offsets: exactly the global CSR rows, rebased to 0
            // (the shard's events are a window of the global arena).
            if let Some(entry) = self.expect_section(
                sections,
                section_id::shard_store_offsets(shard_id),
                4,
                Some(usize_to_u64(range_len) + 1),
            ) {
                if let Some(global) = store_offsets {
                    let payload = self.payload(&entry);
                    let base = global.get(start).copied().unwrap_or(0);
                    for i in 0..=range_len {
                        let recorded = elem_u32(payload, i).unwrap_or(0);
                        let expected = global.get(start + i).copied().unwrap_or(0) - base;
                        if recorded != expected {
                            self.layout(
                                &entry,
                                usize_to_u64(i),
                                format!(
                                    "shard {k} offset {i} is {recorded}, but the global CSR \
                                     window requires {expected}"
                                ),
                            );
                            break;
                        }
                    }
                }
            }

            // Shard index pair, cross-checked against the global arena.
            positions_total += self.check_index_pair(
                sections,
                section_id::shard_index_offsets(shard_id),
                section_id::shard_index_positions(shard_id),
                range_len,
                meta,
                arena,
                store_offsets.map(|offsets| (offsets, start)),
                &format!("shard {k} index"),
            );
        }
        if u64_to_usize(positions_total) != Some(meta.total_length) {
            self.layout_section(
                section_id::SHARD_TABLE,
                format!(
                    "shard index positions hold {positions_total} entries in total but meta \
                     records {}",
                    meta.total_length
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{section_id, SectionPayload, SnapshotWriter};
    use super::*;
    use crate::{InvertedIndex, SequenceDatabase};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("seqdb-verify-{}-{tag}.bin", std::process::id()))
    }

    /// Hand-composes a valid v1 prepared image (mirrors the composition in
    /// `rgs-core`, which this crate cannot depend on).
    fn v1_image_bytes() -> Vec<u8> {
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let index = InvertedIndex::build(&db);
        let counts = index.total_counts();
        let order: Vec<crate::EventId> = db
            .catalog()
            .ids()
            .filter(|e| counts[e.index()] > 0)
            .collect();
        let meta = [
            db.num_sequences() as u64,
            db.num_events() as u64,
            db.total_length() as u64,
        ];
        let catalog_bytes = super::super::catalog_to_bytes(db.catalog());
        // v1/v2 event arenas are always wide (u32), whatever the build width.
        let wide_events = db.store().event_column().to_wide_vec();
        let path = temp_path("compose-v1");
        let mut writer = SnapshotWriter::new().with_version(1);
        writer
            .section(section_id::META, SectionPayload::U64s(&meta))
            .section(
                section_id::STORE_EVENTS,
                SectionPayload::EventIds(&wide_events),
            )
            .section(
                section_id::STORE_OFFSETS,
                SectionPayload::U32s(db.store().offsets()),
            )
            .section(
                section_id::INDEX_OFFSETS,
                SectionPayload::U32s(index.offsets()),
            )
            .section(
                section_id::INDEX_POSITIONS,
                SectionPayload::U32s(index.positions()),
            )
            .section(section_id::CATALOG, SectionPayload::Bytes(&catalog_bytes))
            .section(section_id::EVENT_COUNTS, SectionPayload::U64s(&counts))
            .section(section_id::EVENT_ORDER, SectionPayload::EventIds(&order));
        writer.write_to_path(&path).expect("write v1");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        bytes
    }

    /// Re-seals a mutated image so only layout violations remain.
    fn reseal(bytes: &mut [u8]) {
        let checksum = checksum_of(bytes);
        bytes[24..32].copy_from_slice(&checksum.to_le_bytes());
    }

    /// Hand-composes a valid single-shard v3 image with a narrow (`u16`)
    /// event arena.
    fn v3_narrow_image_bytes() -> Vec<u8> {
        let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
        let index = InvertedIndex::build(&db);
        let counts = index.total_counts();
        let order: Vec<crate::EventId> = db
            .catalog()
            .ids()
            .filter(|e| counts[e.index()] > 0)
            .collect();
        let meta = [
            db.num_sequences() as u64,
            db.num_events() as u64,
            db.total_length() as u64,
        ];
        let catalog_bytes = super::super::catalog_to_bytes(db.catalog());
        let narrow = db
            .store()
            .event_column()
            .narrow_slice()
            .expect("a 4-event alphabet builds narrow")
            .to_vec();
        let shard_table = [0u64, db.num_sequences() as u64];
        let path = temp_path("compose-v3");
        let mut writer = SnapshotWriter::new();
        writer
            .section(section_id::META, SectionPayload::U64s(&meta))
            .section(section_id::STORE_EVENTS, SectionPayload::U16s(&narrow))
            .section(
                section_id::STORE_OFFSETS,
                SectionPayload::U32s(db.store().offsets()),
            )
            .section(section_id::CATALOG, SectionPayload::Bytes(&catalog_bytes))
            .section(section_id::EVENT_COUNTS, SectionPayload::U64s(&counts))
            .section(section_id::EVENT_ORDER, SectionPayload::EventIds(&order))
            .section(section_id::SHARD_TABLE, SectionPayload::U64s(&shard_table))
            .section(
                section_id::shard_store_offsets(0),
                SectionPayload::U32s(db.store().offsets()),
            )
            .section(
                section_id::shard_index_offsets(0),
                SectionPayload::U32s(index.offsets()),
            )
            .section(
                section_id::shard_index_positions(0),
                SectionPayload::U32s(index.positions()),
            );
        writer.write_to_path(&path).expect("write v3");
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        bytes
    }

    #[test]
    fn a_narrow_v3_image_verifies_clean() {
        let bytes = v3_narrow_image_bytes();
        let report = verify_bytes(&bytes);
        assert!(report.is_clean(), "{:#?}", report.violations);
        assert_eq!(report.version, Some(3));
    }

    #[test]
    fn a_narrow_arena_in_a_pre_v3_image_is_a_layout_violation() {
        let mut bytes = v3_narrow_image_bytes();
        // Downgrade the header version to 2 and re-seal: the narrow arena
        // stays structurally valid but is illegal for the claimed version.
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        reseal(&mut bytes);
        let report = verify_bytes(&bytes);
        assert!(
            report.has(ViolationKind::Layout),
            "{:#?}",
            report.violations
        );
        assert!(!report.has(ViolationKind::Structure));
    }

    #[test]
    fn a_valid_v1_image_verifies_clean() {
        let bytes = v1_image_bytes();
        let report = verify_bytes(&bytes);
        assert!(report.is_clean(), "{:#?}", report.violations);
        assert_eq!(report.version, Some(1));
        assert_eq!(report.section_count, 8);
    }

    #[test]
    fn a_bit_flip_in_a_payload_is_caught_by_the_checksum() {
        let mut bytes = v1_image_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let report = verify_bytes(&bytes);
        assert!(!report.is_clean());
        assert!(report.has(ViolationKind::Checksum));
    }

    #[test]
    fn a_resealed_layout_mutation_is_distinguished_from_bit_rot() {
        let mut bytes = v1_image_bytes();
        // Patch the meta event count (element 1) to a nonsense value and
        // re-seal the checksum: structurally valid, semantically broken.
        let report_clean = verify_bytes(&bytes);
        assert!(report_clean.is_clean());
        let meta_offset = {
            let count = u32_to_usize(u32_at(&bytes, 32).unwrap());
            (0..count)
                .map(|i| 64 + i * 32)
                .find(|&base| u32_at(&bytes, base) == Some(section_id::META))
                .and_then(|base| u64_to_usize(u64_at(&bytes, base + 8).unwrap()))
                .expect("meta section present")
        };
        bytes[meta_offset + 8..meta_offset + 16].copy_from_slice(&999u64.to_le_bytes());
        reseal(&mut bytes);
        let report = verify_bytes(&bytes);
        assert!(
            report.has(ViolationKind::Layout),
            "{:#?}",
            report.violations
        );
        assert!(!report.has(ViolationKind::Checksum));
        assert!(!report.checksum_broken_only());
    }

    #[test]
    fn checksum_only_breakage_is_classified_as_bit_rot() {
        let mut bytes = v1_image_bytes();
        // Corrupt the checksum field itself: every section stays intact.
        bytes[24] ^= 0xFF;
        let report = verify_bytes(&bytes);
        assert!(report.checksum_broken_only(), "{:#?}", report.violations);
    }

    #[test]
    fn truncated_and_garbage_inputs_never_panic() {
        let bytes = v1_image_bytes();
        for len in 0..bytes.len().min(256) {
            let report = verify_bytes(&bytes[..len]);
            assert!(!report.is_clean(), "prefix of {len} bytes verified clean");
        }
        assert!(!verify_bytes(b"").is_clean());
        assert!(!verify_bytes(&[0u8; 4096]).is_clean());
        assert!(!verify_bytes(b"RGS1SNAPxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx").is_clean());
    }

    #[test]
    fn violations_carry_section_and_byte_offsets() {
        let mut bytes = v1_image_bytes();
        bytes[16] ^= 0x01; // recorded file length
        let report = verify_bytes(&bytes);
        let length_violation = report
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::Structure)
            .expect("length mismatch reported");
        assert_eq!(length_violation.offset, Some(16));
        let rendered = format!("{length_violation}");
        assert!(rendered.contains("byte 16"), "{rendered}");
    }
}
