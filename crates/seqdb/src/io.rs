//! Dataset readers and writers.
//!
//! Three textual formats are supported:
//!
//! * **SPMF integer format** — one sequence per line, events are
//!   non-negative integers separated by `-1` (itemset terminator) and the
//!   line is terminated by `-2`. Since this crate models *sequences of
//!   single events* (not of itemsets), each itemset is expected to contain
//!   exactly one event; a multi-event itemset is flattened in order.
//! * **Token format** — one sequence per line, whitespace-separated string
//!   tokens, `#`-prefixed lines are comments.
//! * **Character format** — one sequence per line, every character is an
//!   event (the notation used in the paper's examples).
//!
//! All readers work on any `BufRead`, so they can parse in-memory strings in
//! tests and files in the CLI/benchmark harness.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::database::{DatabaseBuilder, SequenceDatabase};

/// Errors produced by the dataset readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A token could not be parsed in the SPMF integer format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending token.
        token: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, token } => {
                write!(
                    f,
                    "line {line}: cannot parse token '{token}' as an event id"
                )
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(value: io::Error) -> Self {
        IoError::Io(value)
    }
}

/// Reads a database in the SPMF integer format from `reader`.
///
/// Event `k` is interned with the label `k.to_string()`, so the ids visible
/// through the catalog are stable and human-readable.
pub fn read_spmf<R: BufRead>(reader: R) -> Result<SequenceDatabase, IoError> {
    let mut builder = DatabaseBuilder::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('@') {
            continue;
        }
        let mut events: Vec<String> = Vec::new();
        for token in trimmed.split_whitespace() {
            match token.parse::<i64>() {
                Ok(-1) => continue,
                Ok(-2) => break,
                Ok(v) if v >= 0 => events.push(v.to_string()),
                _ => {
                    return Err(IoError::Parse {
                        line: line_no + 1,
                        token: token.to_owned(),
                    })
                }
            }
        }
        builder.push_tokens(events.iter().map(String::as_str));
    }
    Ok(builder.finish())
}

/// Reads a database in the whitespace token format from `reader`.
pub fn read_tokens<R: BufRead>(reader: R) -> Result<SequenceDatabase, IoError> {
    let mut builder = DatabaseBuilder::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        builder.push_tokens(trimmed.split_whitespace());
    }
    Ok(builder.finish())
}

/// Reads a database in the character format (each character an event).
pub fn read_chars<R: BufRead>(reader: R) -> Result<SequenceDatabase, IoError> {
    let mut builder = DatabaseBuilder::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<String> = trimmed
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| c.to_string())
            .collect();
        builder.push_tokens(tokens.iter().map(String::as_str));
    }
    Ok(builder.finish())
}

/// Convenience wrapper: reads an SPMF file from disk.
pub fn read_spmf_file<P: AsRef<Path>>(path: P) -> Result<SequenceDatabase, IoError> {
    read_spmf(BufReader::new(File::open(path)?))
}

/// Convenience wrapper: reads a token file from disk.
pub fn read_tokens_file<P: AsRef<Path>>(path: P) -> Result<SequenceDatabase, IoError> {
    read_tokens(BufReader::new(File::open(path)?))
}

/// Convenience wrapper: reads a character file from disk.
pub fn read_chars_file<P: AsRef<Path>>(path: P) -> Result<SequenceDatabase, IoError> {
    read_chars(BufReader::new(File::open(path)?))
}

/// Writes `db` in the SPMF integer format.
///
/// Events are numbered by their catalog id, so `write_spmf` followed by
/// [`read_spmf`] preserves the structure (but re-labels events `0..E`).
pub fn write_spmf<W: Write>(db: &SequenceDatabase, writer: &mut W) -> io::Result<()> {
    for sequence in db.sequences() {
        let mut first = true;
        for event in sequence.iter_events() {
            if !first {
                write!(writer, " ")?;
            }
            write!(writer, "{} -1", event.0)?;
            first = false;
        }
        if first {
            write!(writer, "-2")?;
        } else {
            write!(writer, " -2")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Writes `db` in the token format using catalog labels.
pub fn write_tokens<W: Write>(db: &SequenceDatabase, writer: &mut W) -> io::Result<()> {
    for sequence in db.sequences() {
        let row: Vec<String> = sequence
            .iter_events()
            .map(|e| db.catalog().label_or_default(e))
            .collect();
        writeln!(writer, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Convenience wrapper: writes a token file to disk.
pub fn write_tokens_file<P: AsRef<Path>>(db: &SequenceDatabase, path: P) -> Result<(), IoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    write_tokens(db, &mut writer)?;
    Ok(())
}

/// Convenience wrapper: writes an SPMF file to disk.
pub fn write_spmf_file<P: AsRef<Path>>(db: &SequenceDatabase, path: P) -> Result<(), IoError> {
    let mut writer = BufWriter::new(File::create(path)?);
    write_spmf(db, &mut writer)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn spmf_round_trip_preserves_structure() {
        let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
        let mut buf = Vec::new();
        write_spmf(&db, &mut buf).unwrap();
        let read_back = read_spmf(Cursor::new(buf)).unwrap();
        assert_eq!(read_back.num_sequences(), db.num_sequences());
        assert_eq!(read_back.num_events(), db.num_events());
        assert_eq!(read_back.total_length(), db.total_length());
        // The shape of each sequence is identical (ids map 1:1 because both
        // databases intern in first-seen order).
        for (a, b) in db.sequences().zip(read_back.sequences()) {
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn spmf_reader_parses_standard_lines() {
        let text = "1 -1 2 -1 3 -1 -2\n# comment\n\n2 -1 2 -1 -2\n";
        let db = read_spmf(Cursor::new(text)).unwrap();
        assert_eq!(db.num_sequences(), 2);
        assert_eq!(db.num_events(), 3);
        assert_eq!(db.sequence(1).unwrap().len(), 2);
    }

    #[test]
    fn spmf_reader_rejects_garbage() {
        let text = "1 -1 x -1 -2\n";
        let err = read_spmf(Cursor::new(text)).unwrap_err();
        match err {
            IoError::Parse { line, token } => {
                assert_eq!(line, 1);
                assert_eq!(token, "x");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn token_round_trip_preserves_labels() {
        let rows = vec![vec!["lock", "unlock", "commit"], vec!["lock", "unlock"]];
        let db = SequenceDatabase::from_token_rows(&rows);
        let mut buf = Vec::new();
        write_tokens(&db, &mut buf).unwrap();
        let read_back = read_tokens(Cursor::new(buf)).unwrap();
        assert_eq!(read_back, db);
    }

    #[test]
    fn char_reader_matches_from_str_rows() {
        let text = "ABCABCA\nAABBCCC\n";
        let db = read_chars(Cursor::new(text)).unwrap();
        assert_eq!(db, SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"]));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\nAB\n# trailing\nBA\n";
        let db = read_chars(Cursor::new(text)).unwrap();
        assert_eq!(db.num_sequences(), 2);
    }

    #[test]
    fn empty_sequence_round_trips_through_spmf() {
        let db = read_spmf(Cursor::new("-2\n1 -1 -2\n")).unwrap();
        assert_eq!(db.num_sequences(), 2);
        assert_eq!(db.sequence(0).unwrap().len(), 0);
        let mut buf = Vec::new();
        write_spmf(&db, &mut buf).unwrap();
        let again = read_spmf(Cursor::new(buf)).unwrap();
        assert_eq!(again.num_sequences(), 2);
        assert_eq!(again.sequence(0).unwrap().len(), 0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("seqdb_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.tokens");
        let db = SequenceDatabase::from_str_rows(&["ABAB", "BA"]);
        write_tokens_file(&db, &path).unwrap();
        let back = read_tokens_file(&path).unwrap();
        assert_eq!(back, db);
        std::fs::remove_file(&path).ok();
    }
}
