//! Adversarial tests for the snapshot image format: corrupted files must be
//! rejected with a descriptive [`SnapshotError`] and must **never** panic.
//!
//! Two attacker models are exercised:
//!
//! 1. *Accidental corruption* (bit rot, short writes): any single-bit flip
//!    anywhere in the file, and any truncation, must fail the full-file
//!    checksum (or an earlier header check). This is property-tested with a
//!    seeded PRNG plus an exhaustive sweep over the header and table.
//! 2. *Well-formed-but-wrong files* (old versions, foreign endianness,
//!    garbage tables): the test re-seals tampered files with a freshly
//!    computed checksum — implemented here independently from the spec in
//!    `seqdb::snapshot` — so the deeper validators are reached and their
//!    specific errors observed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqdb::snapshot::{section_id, SectionPayload, SnapshotImage, SnapshotWriter};
use seqdb::{EventId, SnapshotError};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "seqdb-corruption-{}-{tag}.snap",
        std::process::id()
    ))
}

/// Writes a representative multi-section image and returns its bytes.
fn sample_image_bytes(tag: &str) -> Vec<u8> {
    let path = temp_path(tag);
    let events: Vec<EventId> = (0..60).map(|i| EventId(i % 7)).collect();
    let offsets: Vec<u32> = vec![0, 20, 20, 45, 60];
    let counts: Vec<u64> = (0..7).map(|i| i * 3).collect();
    let mut writer = SnapshotWriter::new();
    writer
        .section(section_id::META, SectionPayload::U64s(&[4, 7, 60]))
        .section(section_id::STORE_EVENTS, SectionPayload::EventIds(&events))
        .section(section_id::STORE_OFFSETS, SectionPayload::U32s(&offsets))
        .section(section_id::EVENT_COUNTS, SectionPayload::U64s(&counts))
        .section(section_id::CATALOG, SectionPayload::Bytes(b"opaque"));
    writer.write_to_path(&path).expect("write sample");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Writes `bytes` to a temp file and tries to open it as a snapshot.
fn open_bytes(tag: &str, bytes: &[u8]) -> Result<SnapshotImage, SnapshotError> {
    let path = temp_path(tag);
    std::fs::write(&path, bytes).expect("write tampered file");
    let result = SnapshotImage::open(&path);
    std::fs::remove_file(&path).ok();
    result
}

/// Independent implementation of the spec'd checksum: FNV-1a 64 over every
/// byte except the checksum field at [24, 32).
fn spec_checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |data: &[u8]| {
        for &b in data {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&bytes[..24]);
    eat(&bytes[32..]);
    hash
}

/// Re-seals a tampered image so validation proceeds past the checksum.
fn reseal(bytes: &mut [u8]) {
    let checksum = spec_checksum(bytes);
    bytes[24..32].copy_from_slice(&checksum.to_le_bytes());
}

#[test]
fn pristine_sample_opens() {
    let bytes = sample_image_bytes("pristine");
    let image = open_bytes("pristine-open", &bytes).expect("pristine image opens");
    assert_eq!(image.u64s(section_id::META).unwrap(), &[4, 7, 60]);
}

#[test]
fn every_single_bit_flip_is_rejected() {
    // Exhaustive over every bit of the file: header, table, padding, and
    // payloads alike. The checksum spans everything except its own field,
    // and a flip inside the checksum field breaks the seal itself, so no
    // flip may survive — and none may panic.
    let bytes = sample_image_bytes("bitflip");
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut tampered = bytes.clone();
            tampered[byte] ^= 1 << bit;
            let result = open_bytes("bitflip-case", &tampered);
            assert!(
                result.is_err(),
                "flip of bit {bit} in byte {byte} was not detected"
            );
        }
    }
}

#[test]
fn random_multi_bit_corruption_is_rejected() {
    let bytes = sample_image_bytes("multiflip");
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
    for case in 0..200 {
        let mut tampered = bytes.clone();
        let flips = rng.gen_range(2..16usize);
        for _ in 0..flips {
            let byte = rng.gen_range(0..tampered.len());
            let bit = rng.gen_range(0..8u32);
            tampered[byte] ^= 1 << bit;
        }
        if tampered == bytes {
            continue; // the flips cancelled out
        }
        let result = open_bytes("multiflip-case", &tampered);
        assert!(result.is_err(), "corruption case {case} was not detected");
    }
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = sample_image_bytes("truncate");
    for len in 0..bytes.len() {
        let result = open_bytes("truncate-case", &bytes[..len]);
        let err = result
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} of {} bytes was accepted", bytes.len()));
        assert!(
            matches!(err, SnapshotError::Corrupt(_)),
            "truncation to {len} gave unexpected error: {err}"
        );
    }
}

#[test]
fn appended_garbage_is_rejected() {
    let mut bytes = sample_image_bytes("append");
    bytes.extend_from_slice(b"trailing junk");
    let err = open_bytes("append-case", &bytes).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("truncated or padded"), "{message}");
}

#[test]
fn wrong_magic_is_rejected_with_a_clear_error() {
    let mut bytes = sample_image_bytes("magic");
    bytes[..8].copy_from_slice(b"NOTASNAP");
    reseal(&mut bytes);
    let err = open_bytes("magic-case", &bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::Corrupt(_)));
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn wrong_version_is_unsupported_not_corrupt() {
    let mut bytes = sample_image_bytes("version");
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    reseal(&mut bytes);
    let err = open_bytes("version-case", &bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("version 99"), "{err}");
}

#[test]
fn foreign_endianness_is_unsupported() {
    let mut bytes = sample_image_bytes("endian");
    // A big-endian writer would have stored the marker byte-swapped.
    let marker = &mut bytes[12..16];
    marker.reverse();
    reseal(&mut bytes);
    let err = open_bytes("endian-case", &bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::Unsupported(_)), "{err}");
    assert!(err.to_string().contains("endianness"), "{err}");
}

#[test]
fn nonzero_reserved_header_bytes_are_rejected() {
    let mut bytes = sample_image_bytes("reserved");
    bytes[40] = 1;
    reseal(&mut bytes);
    let err = open_bytes("reserved-case", &bytes).unwrap_err();
    assert!(err.to_string().contains("reserved"), "{err}");
}

#[test]
fn resealed_table_garbage_hits_the_structural_validators() {
    let bytes = sample_image_bytes("table");
    let entry = 64usize; // first table entry

    // Element size not in {1, 4, 8}.
    let mut tampered = bytes.clone();
    tampered[entry + 4..entry + 8].copy_from_slice(&3u32.to_le_bytes());
    reseal(&mut tampered);
    let err = open_bytes("table-elem", &tampered).unwrap_err();
    assert!(err.to_string().contains("element size"), "{err}");

    // Misaligned payload offset.
    let mut tampered = bytes.clone();
    tampered[entry + 8..entry + 16].copy_from_slice(&333u64.to_le_bytes());
    reseal(&mut tampered);
    let err = open_bytes("table-align", &tampered).unwrap_err();
    assert!(err.to_string().contains("aligned"), "{err}");

    // Payload past the end of the file.
    let mut tampered = bytes.clone();
    let huge = (bytes.len() as u64 + 64).div_ceil(64) * 64;
    tampered[entry + 8..entry + 16].copy_from_slice(&huge.to_le_bytes());
    reseal(&mut tampered);
    let err = open_bytes("table-bounds", &tampered).unwrap_err();
    assert!(err.to_string().contains("exceeds"), "{err}");

    // Byte length inconsistent with count x elem_size.
    let mut tampered = bytes.clone();
    tampered[entry + 24..entry + 32].copy_from_slice(&u64::MAX.to_le_bytes());
    reseal(&mut tampered);
    let err = open_bytes("table-count", &tampered).unwrap_err();
    assert!(err.to_string().contains("byte length"), "{err}");

    // Duplicate section id (copy entry 0's id into entry 1).
    let mut tampered = bytes.clone();
    let id0: [u8; 4] = tampered[entry..entry + 4].try_into().unwrap();
    tampered[entry + 32..entry + 36].copy_from_slice(&id0);
    reseal(&mut tampered);
    let err = open_bytes("table-dup", &tampered).unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
}

#[test]
fn random_files_are_never_panics_only_errors() {
    // Fully random garbage of assorted sizes, including the magic prefix to
    // get past the first check with arbitrary headers behind it.
    let mut rng = StdRng::seed_from_u64(0xdead_beef);
    for case in 0..200 {
        let len = rng.gen_range(0..2048usize);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        if case % 2 == 0 && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(b"RGS1SNAP");
        }
        let result = open_bytes("random-case", &bytes);
        assert!(result.is_err(), "random file {case} of {len} bytes opened");
    }
}

#[test]
fn store_reconstruction_validates_csr_invariants() {
    use seqdb::{SeqStore, SharedSlice};
    let events: SharedSlice<EventId> = vec![EventId(0), EventId(1)].into();

    let empty: SharedSlice<u32> = Vec::new().into();
    assert!(SeqStore::from_wide_parts(events.clone(), empty)
        .unwrap_err()
        .contains("sentinel"));

    let bad_start: SharedSlice<u32> = vec![1, 2].into();
    assert!(SeqStore::from_wide_parts(events.clone(), bad_start)
        .unwrap_err()
        .contains("start"));

    let not_monotone: SharedSlice<u32> = vec![0, 2, 1, 2].into();
    assert!(SeqStore::from_wide_parts(events.clone(), not_monotone)
        .unwrap_err()
        .contains("monotone"));

    let bad_end: SharedSlice<u32> = vec![0, 1].into();
    assert!(SeqStore::from_wide_parts(events.clone(), bad_end)
        .unwrap_err()
        .contains("arena"));

    let good: SharedSlice<u32> = vec![0, 1, 2].into();
    let store = SeqStore::from_wide_parts(events, good).expect("valid CSR");
    assert_eq!(store.num_sequences(), 2);
}

#[test]
fn index_reconstruction_validates_csr_invariants() {
    use seqdb::{InvertedIndex, SharedSlice};
    let positions: SharedSlice<u32> = vec![1, 2].into();

    let wrong_len: SharedSlice<u32> = vec![0, 2].into();
    assert!(
        InvertedIndex::from_shared_parts(wrong_len, positions.clone(), 1, 2)
            .unwrap_err()
            .contains("entries")
    );

    let not_monotone: SharedSlice<u32> = vec![0, 2, 1].into();
    assert!(
        InvertedIndex::from_shared_parts(not_monotone, positions.clone(), 1, 2)
            .unwrap_err()
            .contains("monotone")
    );

    // Unsorted or 0-based posting lists would break the binary search in
    // `next` silently, so reconstruction must reject them.
    let offsets_one_slot: SharedSlice<u32> = vec![0, 2].into();
    let unsorted: SharedSlice<u32> = vec![2, 1].into();
    assert!(
        InvertedIndex::from_shared_parts(offsets_one_slot.clone(), unsorted, 1, 1)
            .unwrap_err()
            .contains("ascending")
    );
    let duplicate: SharedSlice<u32> = vec![2, 2].into();
    assert!(
        InvertedIndex::from_shared_parts(offsets_one_slot.clone(), duplicate, 1, 1)
            .unwrap_err()
            .contains("ascending")
    );
    let zero_based: SharedSlice<u32> = vec![0, 1].into();
    assert!(
        InvertedIndex::from_shared_parts(offsets_one_slot, zero_based, 1, 1)
            .unwrap_err()
            .contains("1-based")
    );

    let good: SharedSlice<u32> = vec![0, 1, 2].into();
    let index = InvertedIndex::from_shared_parts(good, positions, 1, 2).expect("valid CSR");
    assert_eq!(index.num_events(), 2);
    assert_eq!(index.event_positions(0, EventId(0)), Some(&[1u32][..]));
}
