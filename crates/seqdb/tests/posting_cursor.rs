//! Seeded property suite pinning [`seqdb::PostingCursor`] — the batched,
//! branch-free row cursor behind the growth kernels — against the naive
//! `partition_point` probe it replaces, over adversarial posting rows:
//! empty rows, probes at or past the row's last position, single-occurrence
//! events, and stride-1 runs (consecutive positions, where galloping's
//! fast path must not skip), at both event-column widths.

use seqdb::{EventId, SequenceDatabase};

/// A tiny deterministic LCG (no external RNG crates in this workspace).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(
            seed.wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493),
        )
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform-ish draw in `0..n` (`n >= 1`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The per-call probe semantics the cursor must reproduce exactly: the
/// first position strictly greater than `lowest`.
fn naive_next(row: &[u32], lowest: u32) -> Option<u32> {
    let idx = row.partition_point(|&p| p <= lowest);
    row.get(idx).copied()
}

/// A random database over an alphabet of `alphabet` letters with `rows`
/// sequences of length up to `max_len` (possibly 0).
fn random_db(rng: &mut Lcg, rows: usize, alphabet: u64, max_len: u64) -> SequenceDatabase {
    let strings: Vec<String> = (0..rows)
        .map(|_| {
            let len = rng.below(max_len + 1) as usize;
            (0..len)
                .map(|_| char::from(b'A' + rng.below(alphabet) as u8))
                .collect()
        })
        .collect();
    let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
    SequenceDatabase::from_str_rows(&refs)
}

/// Drives one `(seq, event)` row through a full monotone probe chain and
/// checks the cursor against the naive probe at every step.
fn check_row(db: &SequenceDatabase, seq: usize, event: EventId, rng: &mut Lcg) {
    let index = db.inverted_index();
    let row: &[u32] = index.event_positions(seq, event).unwrap_or(&[]);
    // In-range ids always resolve a cursor — an empty row just yields one
    // that is exhausted from the start, matching the naive probe's `None`.
    let mut cursor = index.cursor(seq, event);
    assert!(cursor.is_some(), "in-range ids must resolve a cursor");
    assert_eq!(
        cursor.as_ref().map(seqdb::PostingCursor::remaining),
        Some(row.len()),
        "a fresh cursor spans the whole row (seq {seq}, event {event:?})"
    );

    // A non-decreasing lowest chain: mixed small steps (stride-1 regime),
    // repeats (same lowest twice — the constrained-rejection replay), and
    // occasional jumps at or past the row's maximum.
    let top = row.last().copied().unwrap_or(0) + 3;
    let mut lowest = 0u32;
    for _ in 0..64 {
        let expected = naive_next(row, lowest);
        let got = cursor.as_mut().and_then(|c| c.next_after(lowest));
        assert_eq!(
            got, expected,
            "seq {seq} event {event:?} lowest {lowest} row {row:?}"
        );
        lowest = match rng.below(8) {
            0 => lowest,                       // replay
            1..=4 => lowest.saturating_add(1), // stride-1 walk
            5 | 6 => lowest.saturating_add(rng.below(5) as u32 + 1),
            _ => top.max(lowest), // past the end
        };
    }
}

#[test]
fn cursor_matches_the_naive_probe_on_random_rows() {
    for seed in 0..24u64 {
        let mut rng = Lcg::new(seed);
        // Alphabet sizes 1..=6 cover single-event rows covering whole
        // sequences (stride-1 runs) up to sparse rows; lengths up to 40.
        let alphabet = rng.below(6) + 1;
        let db = random_db(&mut rng, 5, alphabet, 40);
        for seq in 0..db.num_sequences() {
            for event in db.catalog().ids() {
                check_row(&db, seq, event, &mut rng);
            }
        }
    }
}

#[test]
fn cursor_handles_the_adversarial_rows() {
    // One database exhibiting every adversarial shape at once:
    //   S0 "AAAAAAAA"  — a stride-1 run covering the whole sequence,
    //   S1 "B"         — a single-occurrence event,
    //   S2 ""          — an empty sequence (every row empty),
    //   S3 "ABABAB"    — interleaved stride-2 rows.
    let db = SequenceDatabase::from_str_rows(&["AAAAAAAA", "B", "", "ABABAB"]);
    let index = db.inverted_index();
    let a = db.catalog().id("A").expect("A interned");
    let b = db.catalog().id("B").expect("B interned");

    // Empty rows: the cursor resolves but starts exhausted, and out-of-range
    // ids resolve no cursor at all.
    for (seq, event) in [(1, a), (2, a), (2, b)] {
        let mut cursor = index.cursor(seq, event).expect("ids are in range");
        assert!(cursor.is_exhausted(), "empty row starts exhausted");
        assert_eq!(cursor.next_after(0), None);
    }
    assert!(index.cursor(4, a).is_none(), "sequence id out of range");

    // Stride-1 run: every probe advances by exactly one position.
    let mut cursor = index.cursor(0, a).expect("A covers S0");
    for lowest in 0..8u32 {
        assert_eq!(cursor.next_after(lowest), Some(lowest + 1));
    }
    assert_eq!(cursor.next_after(8), None, "row exhausted");
    assert_eq!(cursor.next_after(100), None, "stays exhausted");

    // Single-occurrence row, and a probe with lowest at/past the only
    // position.
    let mut cursor = index.cursor(1, b).expect("B occurs once in S1");
    assert_eq!(cursor.next_after(0), Some(1));
    assert_eq!(cursor.next_after(1), None);

    // A fresh cursor probed immediately past the row's last position.
    let mut cursor = index.cursor(3, b).expect("B occurs in S3");
    assert_eq!(cursor.next_after(6), None, "lowest == last position");

    // Interleaved rows stay independent: exhausting A's cursor in S3 does
    // not disturb a separately resolved B cursor.
    let mut a_cursor = index.cursor(3, a).expect("A occurs in S3");
    assert_eq!(a_cursor.next_after(0), Some(1));
    assert_eq!(a_cursor.next_after(3), Some(5));
    assert_eq!(a_cursor.next_after(5), None);
    let mut b_cursor = index.cursor(3, b).expect("B occurs in S3");
    assert_eq!(b_cursor.next_after(0), Some(2));
}

#[test]
fn consuming_probe_matches_the_naive_probe_under_its_contract() {
    // `next_after_consuming` drops the emitted position from the row. That
    // is sound exactly when every later `lowest` is at least the previously
    // emitted position — the unconstrained kernel's watermark contract. Under
    // that contract the consumed prefix can never hold a future answer, so
    // the probe must still match the naive full-row probe at every step.
    for seed in 0..24u64 {
        let mut rng = Lcg::new(0xBADCAB ^ seed);
        let alphabet = rng.below(6) + 1;
        let db = random_db(&mut rng, 5, alphabet, 40);
        let index = db.inverted_index();
        for seq in 0..db.num_sequences() {
            for event in db.catalog().ids() {
                let row: &[u32] = index.event_positions(seq, event).unwrap_or(&[]);
                let mut cursor = index.cursor(seq, event).expect("ids are in range");
                let mut watermark = 0u32;
                let mut bound = 0u32;
                for _ in 0..48 {
                    let lowest = bound.max(watermark);
                    let expected = naive_next(row, lowest);
                    let got = cursor.next_after_consuming(lowest);
                    assert_eq!(
                        got, expected,
                        "seq {seq} event {event:?} lowest {lowest} row {row:?}"
                    );
                    if let Some(pos) = got {
                        watermark = pos;
                    }
                    bound = bound.saturating_add(rng.below(4) as u32);
                }
            }
        }
    }
}

#[test]
fn cursor_rows_are_identical_at_both_store_widths() {
    // The inverted index is derived from the store; the cursor must behave
    // identically whether the event column is narrow (u16) or widened to
    // u32 — the positions arena never changes width.
    for seed in 0..8u64 {
        let mut rng = Lcg::new(0xC0FFEE ^ seed);
        let narrow_db = random_db(&mut rng, 4, 4, 24);
        let mut wide_db = narrow_db.clone();
        wide_db.widen_store();
        assert!(narrow_db.store().is_narrow() || narrow_db.total_length() == 0);
        assert!(!wide_db.store().is_narrow());

        let narrow_index = narrow_db.inverted_index();
        let wide_index = wide_db.inverted_index();
        for seq in 0..narrow_db.num_sequences() {
            for event in narrow_db.catalog().ids() {
                assert_eq!(
                    narrow_index.event_positions(seq, event),
                    wide_index.event_positions(seq, event),
                    "rows diverge at seq {seq}, event {event:?}"
                );
                let mut narrow_cursor = narrow_index.cursor(seq, event);
                let mut wide_cursor = wide_index.cursor(seq, event);
                let mut lowest = 0u32;
                for _ in 0..32 {
                    let n = narrow_cursor.as_mut().and_then(|c| c.next_after(lowest));
                    let w = wide_cursor.as_mut().and_then(|c| c.next_after(lowest));
                    assert_eq!(n, w, "seq {seq} event {event:?} lowest {lowest}");
                    lowest = lowest.saturating_add(rng.below(3) as u32);
                }
            }
        }
    }
}

/// Drives one row through the same non-decreasing bound chain twice — a
/// scalar [`seqdb::PostingCursor`] probe per bound, and the batched
/// [`seqdb::MultiCursor`] on `backend` in chunks of `lane_count` — and
/// asserts the answers match lane by lane.
fn check_multi_cursor_chain(
    row: &[u32],
    bounds: &[u32],
    lane_count: usize,
    backend: seqdb::KernelBackend,
) {
    let mut scalar = seqdb::PostingCursor::new(row);
    let mut multi = seqdb::MultiCursor::with_backend(row, backend);
    let mut out = [None; seqdb::simd::MAX_LANES];
    for batch in bounds.chunks(lane_count) {
        let lanes = multi.next_after_batch(batch, &mut out);
        assert_eq!(lanes, batch.len(), "lane count for batch {batch:?}");
        for (lane, (&bound, &got)) in batch.iter().zip(out.iter()).enumerate() {
            let expected = scalar.next_after(bound);
            assert_eq!(
                got,
                expected,
                "lane {lane} bound {bound} of batch {batch:?} on {} \
                 (row {row:?})",
                backend.name(),
            );
        }
        assert!(
            multi.base() <= row.len(),
            "resume index {} ran past the row",
            multi.base()
        );
    }
}

#[test]
fn multi_cursor_matches_the_scalar_cursor_at_every_lane_count() {
    // Every available backend, every lane count 1..=8, seeded random rows
    // plus a bound chain full of duplicates (the same target probed by
    // several lanes of one batch — the constrained kernel's gathered-run
    // shape) and jumps past the row's end.
    for backend in seqdb::KernelBackend::all() {
        if !backend.is_available() {
            continue;
        }
        for lane_count in 1..=seqdb::simd::MAX_LANES {
            for seed in 0..12u64 {
                let mut rng = Lcg::new(seed ^ (lane_count as u64) << 32);
                let alphabet = rng.below(5) + 1;
                let db = random_db(&mut rng, 3, alphabet, 48);
                let index = db.inverted_index();
                for seq in 0..db.num_sequences() {
                    for event in db.catalog().ids() {
                        let row: &[u32] = index.event_positions(seq, event).unwrap_or(&[]);
                        let top = row.last().copied().unwrap_or(0) + 2;
                        let mut bounds = Vec::with_capacity(40);
                        let mut lowest = 0u32;
                        while bounds.len() < 40 {
                            // Duplicate targets are the common case: a run
                            // of identical bounds, then a small or large
                            // monotone step.
                            for _ in 0..=rng.below(3) {
                                bounds.push(lowest);
                            }
                            lowest = match rng.below(6) {
                                0..=3 => lowest.saturating_add(rng.below(3) as u32 + 1),
                                4 => lowest.saturating_add(7),
                                _ => top.max(lowest),
                            };
                        }
                        check_multi_cursor_chain(row, &bounds, lane_count, backend);
                    }
                }
            }
        }
    }
}

#[test]
fn multi_cursor_survives_the_adversarial_rows() {
    // The same adversarial database as the scalar suite: stride-1 run,
    // single occurrence, empty sequence, interleaved rows.
    let db = SequenceDatabase::from_str_rows(&["AAAAAAAA", "B", "", "ABABAB"]);
    let index = db.inverted_index();
    let a = db.catalog().id("A").expect("A interned");
    let b = db.catalog().id("B").expect("B interned");

    for backend in seqdb::KernelBackend::all() {
        if !backend.is_available() {
            continue;
        }
        // Exhausted-from-the-start rows answer None in every lane and out
        // of range resolves no cursor at all.
        for (seq, event) in [(1, a), (2, a), (2, b)] {
            let row = index.event_positions(seq, event).unwrap_or(&[]);
            let mut multi = seqdb::MultiCursor::with_backend(row, backend);
            let mut out = [Some(9); seqdb::simd::MAX_LANES];
            let lanes = multi.next_after_batch(&[0, 0, 5, 9], &mut out);
            assert_eq!(lanes, 4);
            assert!(
                out.iter().take(lanes).all(Option::is_none),
                "empty row must answer None on {}",
                backend.name()
            );
        }
        assert!(index.multi_cursor(4, a).is_none(), "seq id out of range");

        // A full batch of duplicate bounds on the stride-1 run: only the
        // first distinct bound value advances the row, every duplicate
        // lane re-reads the same partition point.
        let row = index.event_positions(0, a).expect("A covers S0");
        check_multi_cursor_chain(row, &[0, 0, 0, 0, 1, 1, 2, 2, 3, 8, 8, 8], 4, backend);

        // Probes at and past the row's last position exhaust and stay
        // exhausted — including a whole batch past the end.
        let row = index.event_positions(3, b).expect("B occurs in S3");
        check_multi_cursor_chain(row, &[5, 6, 6, 7, 100, 200], 3, backend);

        // Interleaved rows keep independent cursors, as in the scalar
        // suite.
        let a_row = index.event_positions(3, a).expect("A occurs in S3");
        check_multi_cursor_chain(a_row, &[0, 3, 5, 5], 2, backend);
    }
}

#[test]
fn multi_cursor_agrees_across_backends_and_store_widths() {
    // One long stride-1-heavy database (block-sized rows: > 64 positions,
    // the whole-block fast path's regime) probed on every available
    // backend at both event-column widths: every combination must produce
    // the byte-identical answer chain the scalar cursor produces.
    let rows: Vec<String> = (0..3)
        .map(|r| {
            (0..100)
                .map(|i| if (i + r) % 7 == 0 { 'B' } else { 'A' })
                .collect()
        })
        .collect();
    let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
    let narrow_db = SequenceDatabase::from_str_rows(&refs);
    let mut wide_db = narrow_db.clone();
    wide_db.widen_store();

    let bounds: Vec<u32> = (0..96u32).flat_map(|i| [i, i]).collect();
    for db in [&narrow_db, &wide_db] {
        let index = db.inverted_index();
        for backend in seqdb::KernelBackend::all() {
            if !backend.is_available() {
                continue;
            }
            for seq in 0..db.num_sequences() {
                for event in db.catalog().ids() {
                    let row: &[u32] = index.event_positions(seq, event).unwrap_or(&[]);
                    assert!(
                        event != db.catalog().id("A").expect("A interned") || row.len() > 64,
                        "the dominant row must be block-sized"
                    );
                    for lane_count in [1, 5, seqdb::simd::MAX_LANES] {
                        check_multi_cursor_chain(row, &bounds, lane_count, backend);
                    }
                }
            }
        }
    }
}
