//! Seeded property test for `seqdb::io`: writing a database and reading it
//! back must preserve the catalog order, every position of every sequence,
//! and the computed statistics.
//!
//! The token format preserves labels exactly, so the round-trip must be
//! full equality. The SPMF format re-labels events by catalog id; because
//! both databases intern in first-seen order the id structure (and hence
//! the flat store, offsets and all) must still round-trip bit for bit.

use std::io::Cursor;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqdb::{io as seqio, DatabaseBuilder, SequenceDatabase};

fn random_database(rng: &mut StdRng, multi_char_labels: bool) -> SequenceDatabase {
    let alphabet = rng.gen_range(1usize..=8);
    let labels: Vec<String> = (0..alphabet)
        .map(|i| {
            if multi_char_labels {
                format!("ev{i}.call")
            } else {
                format!("{}", (b'A' + i as u8) as char)
            }
        })
        .collect();
    let mut builder = DatabaseBuilder::new();
    let rows = rng.gen_range(1usize..=8);
    for _ in 0..rows {
        // Allow empty rows: SPMF supports them and they exercise the CSR
        // offsets table's zero-length runs.
        let len = rng.gen_range(0usize..=15);
        let tokens: Vec<&str> = (0..len)
            .map(|_| labels[rng.gen_range(0usize..alphabet)].as_str())
            .collect();
        builder.push_tokens(tokens);
    }
    builder.finish()
}

fn assert_same_shape(original: &SequenceDatabase, read_back: &SequenceDatabase, what: &str) {
    assert_eq!(
        original.num_sequences(),
        read_back.num_sequences(),
        "{what}: sequence count"
    );
    assert_eq!(
        original.total_length(),
        read_back.total_length(),
        "{what}: total length"
    );
    // The flat stores must agree offset by offset and event by event:
    // interning happens in first-seen order on both sides, so ids map 1:1.
    assert_eq!(
        original.store(),
        read_back.store(),
        "{what}: columnar store"
    );
    assert_eq!(original.stats(), read_back.stats(), "{what}: statistics");
}

#[test]
fn token_round_trip_preserves_catalog_positions_and_stats() {
    let mut rng = StdRng::seed_from_u64(0x10_CAFE);
    for round in 0..40 {
        let db = random_database(&mut rng, round % 2 == 0);
        if db.sequences().any(seqdb::SeqView::is_empty) {
            // A blank line is a separator in the token format, so empty
            // rows cannot round-trip here; the SPMF test covers them.
            continue;
        }
        let mut buf = Vec::new();
        seqio::write_tokens(&db, &mut buf).expect("write tokens");
        let read_back = seqio::read_tokens(Cursor::new(buf)).expect("read tokens");
        // Token IO carries the labels, so the round-trip is full equality —
        // catalog order included.
        let original_labels: Vec<_> = db.catalog().ids().map(|e| db.catalog().label(e)).collect();
        let read_labels: Vec<_> = read_back
            .catalog()
            .ids()
            .map(|e| read_back.catalog().label(e))
            .collect();
        if db.total_length() > 0 {
            // Events that never occur cannot survive any textual format;
            // compare the catalogs restricted to occurring events.
            assert_eq!(original_labels, read_labels, "round {round}: catalog order");
            assert_eq!(db, read_back, "round {round}: full database equality");
        }
        assert_same_shape(&db, &read_back, &format!("round {round} (tokens)"));
    }
}

#[test]
fn spmf_round_trip_preserves_structure_and_stats() {
    let mut rng = StdRng::seed_from_u64(0x05BF_5EED);
    for round in 0..40 {
        let db = random_database(&mut rng, round % 3 == 0);
        let mut buf = Vec::new();
        seqio::write_spmf(&db, &mut buf).expect("write spmf");
        let read_back = seqio::read_spmf(Cursor::new(buf)).expect("read spmf");
        assert_same_shape(&db, &read_back, &format!("round {round} (spmf)"));
    }
}

#[test]
fn char_format_round_trips_single_character_alphabets() {
    let mut rng = StdRng::seed_from_u64(0xC4A2);
    for round in 0..40 {
        let db = random_database(&mut rng, false);
        if db.sequences().any(seqdb::SeqView::is_empty) {
            // The character format cannot represent empty rows (blank lines
            // are skipped as separators); skip those shapes.
            continue;
        }
        let mut buf = Vec::new();
        seqio::write_tokens(&db, &mut buf).expect("write tokens");
        let text: String = String::from_utf8(buf).unwrap().replace(' ', "");
        let read_back = seqio::read_chars(Cursor::new(text)).expect("read chars");
        assert_same_shape(&db, &read_back, &format!("round {round} (chars)"));
        if db.total_length() > 0 {
            assert_eq!(db, read_back, "round {round}: full database equality");
        }
    }
}
