//! Repo-specific static-analysis lints behind `cargo run -p xtask -- audit`.
//!
//! Six rule families, each tuned to an invariant this workspace actually
//! relies on (rustc/clippy cannot express them):
//!
//! * **safety** — every `unsafe` block and `unsafe impl`, workspace-wide,
//!   must carry a `// SAFETY:` comment on the same or an immediately
//!   preceding line.
//! * **target-feature-safety** — every `#[target_feature]` function must
//!   carry a `// SAFETY:` comment above its attribute stack: the
//!   executability argument moved to call sites with safe
//!   `target_feature`, but it still has to be written down where the
//!   specialized code lives.
//! * **simd-fallback** — a file defining a vector specialization
//!   (`fn foo_sse2`/`_avx2`/`_swar`) must define the portable reference
//!   arm `fn foo_scalar` beside it; the scalar kernels are pinned
//!   first-class fallbacks (`RGS_FORCE_SCALAR`).
//! * **panic-free hot paths** — the zero-alloc mining loops
//!   (`core/src/{support,instbuf,closure,constrained}.rs`,
//!   `seqdb/src/{store,index,shard,simd}.rs`) and the serving request
//!   path (`serve/src/{worker,cache}.rs` — a panicking worker thread
//!   would silently shrink the pool) may not use `.unwrap()`,
//!   `.expect(...)`, `panic!`-family macros, or bare slice indexing.
//!   `assert!`/`debug_assert!` bodies are exempt: asserts are documented
//!   invariants, not accidental panics.
//! * **cast** — the CSR offset/length math in
//!   `seqdb/src/{store,index,shard,snapshot,snapshot_verify}.rs` may not
//!   use lossy `as` casts; the checked helpers in `seqdb::cast` (or
//!   widening `as u64`) are required.
//! * **deprecated** — the six 0.1.x shims (`mine_all`, `mine_closed`,
//!   `mine_top_k`, `mine_maximal`, `mine_all_constrained`,
//!   `mine_closed_constrained`) may only be *called* from
//!   `tests/api_equivalence.rs`, which pins their equivalence to the
//!   `Miner` API until removal.
//!
//! Any finding can be waived in place with
//! `// audit:allow(<rule>): <reason>` on the offending line or the line
//! above; waivers are counted and reported so they stay visible.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The hot-path modules whose loops must be panic-free (repo-relative).
const HOT_PATH_FILES: [&str; 12] = [
    "crates/core/src/support.rs",
    "crates/core/src/instbuf.rs",
    "crates/core/src/closure.rs",
    "crates/core/src/constrained.rs",
    "crates/core/src/kernel.rs",
    "crates/core/src/batch.rs",
    "crates/seqdb/src/store.rs",
    "crates/seqdb/src/index.rs",
    "crates/seqdb/src/shard.rs",
    "crates/seqdb/src/simd.rs",
    "crates/serve/src/worker.rs",
    "crates/serve/src/cache.rs",
];

/// The files whose offset/length math must use the checked `seqdb::cast`
/// helpers instead of lossy `as` casts (repo-relative).
const CAST_CHECKED_FILES: [&str; 6] = [
    "crates/seqdb/src/store.rs",
    "crates/seqdb/src/width.rs",
    "crates/seqdb/src/index.rs",
    "crates/seqdb/src/shard.rs",
    "crates/seqdb/src/snapshot.rs",
    "crates/seqdb/src/snapshot_verify.rs",
];

/// The deprecated 0.1.x shims; call sites are confined to the API
/// equivalence suite.
const DEPRECATED_SHIMS: [&str; 6] = [
    "mine_all",
    "mine_closed",
    "mine_top_k",
    "mine_maximal",
    "mine_all_constrained",
    "mine_closed_constrained",
];

/// The one file allowed to call the deprecated shims (repo-relative).
const SHIM_EXEMPT_FILE: &str = "tests/api_equivalence.rs";

/// Lossy `as` casts banned in [`CAST_CHECKED_FILES`]. Widening (`as u64`)
/// stays legal; everything that can truncate or wrap must go through
/// `seqdb::cast`.
const LOSSY_CASTS: [&str; 6] = ["as u8", "as u16", "as u32", "as usize", "as i32", "as i64"];

/// One finding of the audit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line of the finding.
    pub line: usize,
    /// The rule id (also the `audit:allow(...)` waiver key).
    pub rule: &'static str,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The outcome of one audit run.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Every finding, in file/line order.
    pub violations: Vec<Violation>,
    /// Findings suppressed by `audit:allow` waivers.
    pub waived: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// `true` when no un-waived finding remains.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every audit rule over the workspace rooted at `root`.
pub fn audit(root: &Path) -> AuditReport {
    let mut report = AuditReport::default();
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files);
    files.sort();
    for relative in files {
        let Ok(source) = fs::read_to_string(root.join(&relative)) else {
            continue;
        };
        report.files_scanned += 1;
        audit_file(&relative, &source, &mut report);
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Runs every rule applicable to one file. Public so the fixture tests can
/// audit synthetic sources without a workspace on disk.
pub fn audit_file(relative: &Path, source: &str, report: &mut AuditReport) {
    let file = FileContext::new(relative, source);
    check_safety_comments(&file, report);
    check_target_feature_safety(&file, report);
    check_simd_fallback_pairing(&file, report);
    let rel = relative.to_string_lossy().replace('\\', "/");
    if HOT_PATH_FILES.contains(&rel.as_str()) {
        check_panic_free(&file, report);
    }
    if CAST_CHECKED_FILES.contains(&rel.as_str()) {
        check_lossy_casts(&file, report);
    }
    if rel != SHIM_EXEMPT_FILE {
        check_deprecated_shims(&file, report);
    }
}

/// Pre-processed views of one source file shared by all rules.
struct FileContext<'a> {
    relative: &'a Path,
    /// Original lines (comments intact) — where SAFETY comments and
    /// waivers are read from.
    lines: Vec<&'a str>,
    /// Same-length source with comments, strings, and char literals
    /// blanked, so rules match code only.
    code: String,
    /// `code` with `assert!`-family macro bodies additionally blanked.
    code_no_asserts: String,
    /// Line index -> rules waived for that line.
    waivers: HashMap<usize, Vec<String>>,
    /// Per-line flag: inside a `#[cfg(test)] mod` block.
    in_test_block: Vec<bool>,
}

impl<'a> FileContext<'a> {
    fn new(relative: &'a Path, source: &'a str) -> Self {
        let lines: Vec<&str> = source.lines().collect();
        let code = blank_non_code(source);
        let code_no_asserts = blank_assert_bodies(&code);
        let waivers = collect_waivers(&lines);
        let in_test_block = mark_test_blocks(&code, lines.len());
        Self {
            relative,
            lines,
            code,
            code_no_asserts,
            waivers,
            in_test_block,
        }
    }

    fn line_of(&self, offset: usize) -> usize {
        self.code
            .as_bytes()
            .iter()
            .take(offset)
            .filter(|&&b| b == b'\n')
            .count()
    }

    fn is_waived(&self, line: usize, rule: &str) -> bool {
        [line.wrapping_sub(1), line].iter().any(|l| {
            self.waivers
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    }

    fn push(&self, report: &mut AuditReport, line: usize, rule: &'static str, message: String) {
        if self.is_waived(line, rule) {
            report.waived += 1;
        } else {
            report.violations.push(Violation {
                file: self.relative.to_path_buf(),
                line: line + 1,
                rule,
                message,
            });
        }
    }
}

// --- source pre-processing --------------------------------------------------

/// Replaces comments, string literals, and char literals with spaces
/// (newlines kept), so the rule scanners only ever see code.
fn blank_non_code(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                out[i] = b' ';
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out[i] = b' ';
                        if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out[i] = b' ';
                        i += 1;
                        break;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"' | b'#')) => {
                // Raw string: r"..." or r#"..."# (any hash depth).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) != Some(&b'"') {
                    i += 1;
                    continue;
                }
                j += 1;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while j < bytes.len() && !bytes[j..].starts_with(&closer) {
                    j += 1;
                }
                j = (j + closer.len()).min(bytes.len());
                for k in start..j {
                    if bytes[k] != b'\n' {
                        out[k] = b' ';
                    }
                }
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals; 'a as
                // in <'a> is a lifetime and stays untouched.
                let is_escape = bytes.get(i + 1) == Some(&b'\\');
                let closes = bytes.get(i + 2) == Some(&b'\'');
                if is_escape || closes {
                    out[i] = b' ';
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        if bytes[i] == b'\\' {
                            out[i] = b' ';
                            i += 1;
                        }
                        if i < bytes.len() && bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                    if i < bytes.len() {
                        out[i] = b' ';
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Additionally blanks the bodies of `assert!`-family macro calls in
/// already-blanked code: asserts are documented invariants, so their
/// arguments are exempt from the panic-free rules.
fn blank_assert_bodies(code: &str) -> String {
    let mut out = code.as_bytes().to_vec();
    let bytes = code.as_bytes();
    for name in [
        "assert!",
        "assert_eq!",
        "assert_ne!",
        "debug_assert!",
        "debug_assert_eq!",
        "debug_assert_ne!",
    ] {
        let mut from = 0;
        while let Some(found) = code[from..].find(name) {
            let start = from + found;
            from = start + name.len();
            // Word boundary on the left (don't match `my_assert!`).
            if start > 0 {
                let prev = bytes[start - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            let mut j = start + name.len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let (open, close) = match bytes.get(j) {
                Some(b'(') => (b'(', b')'),
                Some(b'[') => (b'[', b']'),
                Some(b'{') => (b'{', b'}'),
                _ => continue,
            };
            let mut depth = 0usize;
            while j < bytes.len() {
                if bytes[j] == open {
                    depth += 1;
                } else if bytes[j] == close {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if bytes[j] != b'\n' {
                    out[j] = b' ';
                }
                j += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Parses `// audit:allow(rule, rule): reason` waivers from the original
/// lines. A waiver applies to its own line and the next one.
fn collect_waivers(lines: &[&str]) -> HashMap<usize, Vec<String>> {
    let mut waivers: HashMap<usize, Vec<String>> = HashMap::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(found) = line.find("audit:allow(") else {
            continue;
        };
        let rest = &line[found + "audit:allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        for rule in rest[..end].split(',') {
            waivers.entry(i).or_default().push(rule.trim().to_owned());
        }
    }
    waivers
}

/// Marks the lines inside `#[cfg(test)] mod ... { }` blocks (matched on
/// blanked code, so strings cannot fake a test block).
fn mark_test_blocks(code: &str, num_lines: usize) -> Vec<bool> {
    let mut in_test = vec![false; num_lines];
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(found) = code[from..].find("#[cfg(test)]") {
        let attr = from + found;
        from = attr + 1;
        // The next `mod` keyword after the attribute (skipping further
        // attributes); bail out if something else intervenes.
        let Some(mod_at) = code[attr..].find("mod ").map(|p| attr + p) else {
            continue;
        };
        let Some(open) = code[mod_at..].find('{').map(|p| mod_at + p) else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = open;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let first_line = bytes.iter().take(attr).filter(|&&b| b == b'\n').count();
        let last_line = bytes.iter().take(end).filter(|&&b| b == b'\n').count();
        for line in in_test.iter_mut().take(last_line + 1).skip(first_line) {
            *line = true;
        }
        from = end.max(from);
    }
    in_test
}

// --- rules ------------------------------------------------------------------

/// Rule `safety`: every `unsafe {` block and `unsafe impl` needs a
/// `// SAFETY:` comment on the same line or one of the three lines above.
fn check_safety_comments(file: &FileContext<'_>, report: &mut AuditReport) {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(found) = code[from..].find("unsafe") {
        let at = from + found;
        from = at + "unsafe".len();
        let bounded_left = at == 0 || !is_ident_byte(bytes[at - 1]);
        let bounded_right = bytes
            .get(at + "unsafe".len())
            .is_none_or(|&b| !is_ident_byte(b));
        if !bounded_left || !bounded_right {
            continue;
        }
        // The next token decides the form: blocks and impls need SAFETY
        // comments; `unsafe fn` declarations document a `# Safety` contract
        // instead and their bodies are covered by unsafe_op_in_unsafe_fn.
        let mut j = at + "unsafe".len();
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let needs_comment = match bytes.get(j) {
            Some(b'{') => true,
            _ => code[j..].starts_with("impl"),
        };
        if !needs_comment {
            continue;
        }
        let line = file.line_of(at);
        let commented = (line.saturating_sub(3)..=line).any(|l| {
            file.lines
                .get(l)
                .is_some_and(|text| text.contains("SAFETY:"))
        });
        if !commented {
            let form = if bytes.get(j) == Some(&b'{') {
                "unsafe block"
            } else {
                "unsafe impl"
            };
            file.push(
                report,
                line,
                "safety",
                format!("{form} without a `// SAFETY:` comment on or above it"),
            );
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Rule `target-feature-safety`: every `#[target_feature(...)]` function
/// must carry a `// SAFETY:` comment in the lines directly above the
/// attribute. Safe `target_feature` functions moved the `unsafe` keyword
/// to the *call site*, but the executability argument (why this code can
/// only ever run on a CPU with the feature) lives with the declaration —
/// this rule keeps that argument written down.
fn check_target_feature_safety(file: &FileContext<'_>, report: &mut AuditReport) {
    let code = &file.code;
    let mut from = 0;
    while let Some(found) = code[from..].find("#[target_feature(") {
        let at = from + found;
        from = at + "#[target_feature(".len();
        let line = file.line_of(at);
        // Up to four lines of attributes/cfgs may sit between the comment
        // and the attribute itself (`#[cfg]`, `#[inline]`, ...).
        let commented = (line.saturating_sub(4)..=line).any(|l| {
            file.lines
                .get(l)
                .is_some_and(|text| text.contains("SAFETY:"))
        });
        if !commented {
            file.push(
                report,
                line,
                "target-feature-safety",
                "`#[target_feature]` function without a `// SAFETY:` comment above it \
                 (document why the feature is guaranteed available wherever this runs)"
                    .to_owned(),
            );
        }
    }
}

/// The vector-backend suffixes every SIMD entry point may specialize to.
const SIMD_SUFFIXES: [&str; 3] = ["_sse2", "_avx2", "_swar"];

/// Rule `simd-fallback`: a file defining a vector specialization
/// (`fn foo_sse2` / `fn foo_avx2` / `fn foo_swar`) must also define the
/// portable reference arm `fn foo_scalar` in the same file. The scalar
/// kernels are pinned, first-class fallbacks (`RGS_FORCE_SCALAR`), not
/// historical leftovers — a vector path without its reference twin has
/// nothing to be bit-identical *to*.
fn check_simd_fallback_pairing(file: &FileContext<'_>, report: &mut AuditReport) {
    let code = &file.code;
    let mut from = 0;
    while let Some(found) = code[from..].find("fn ") {
        let at = from + found;
        from = at + "fn ".len();
        // Word-bounded `fn` only (not e.g. `pub fn` — the prefix byte may
        // legitimately be a space — but never an identifier tail).
        if at > 0 && is_ident_byte(code.as_bytes()[at - 1]) {
            continue;
        }
        let name_start = at + "fn ".len();
        let name_end = name_start
            + code[name_start..]
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(0);
        let name = &code[name_start..name_end];
        let Some(suffix) = SIMD_SUFFIXES.iter().find(|s| name.ends_with(*s)) else {
            continue;
        };
        let stem = &name[..name.len() - suffix.len()];
        if stem.is_empty() {
            continue;
        }
        let fallback = format!("fn {stem}_scalar");
        if !code.contains(&fallback) {
            file.push(
                report,
                file.line_of(at),
                "simd-fallback",
                format!(
                    "`fn {name}` has no scalar reference arm (`{fallback}`) in this file — \
                     every vector specialization needs its pinned portable twin"
                ),
            );
        }
    }
}

/// Rule family for the hot-path modules: no `.unwrap()`, `.expect(`,
/// panic-macro, or bare slice indexing outside tests and assert bodies.
fn check_panic_free(file: &FileContext<'_>, report: &mut AuditReport) {
    let code = &file.code_no_asserts;
    let needles: [(&str, &'static str, &str); 5] = [
        (
            ".unwrap()",
            "unwrap",
            "use `.get(..)`/`let-else` or a documented fallback",
        ),
        (
            ".expect(",
            "expect",
            "use `.get(..)`/`let-else` or a documented fallback",
        ),
        ("panic!(", "panic", "hot-path loops must be panic-free"),
        (
            "unreachable!(",
            "panic",
            "hot-path loops must be panic-free",
        ),
        ("todo!(", "panic", "hot-path loops must be panic-free"),
    ];
    for (needle, rule, hint) in needles {
        let mut from = 0;
        while let Some(found) = code[from..].find(needle) {
            let at = from + found;
            from = at + needle.len();
            let line = file.line_of(at);
            if file.in_test_block.get(line).copied().unwrap_or(false) {
                continue;
            }
            file.push(
                report,
                line,
                rule,
                format!(
                    "`{}` in a hot-path module ({hint})",
                    needle.trim_end_matches('(')
                ),
            );
        }
    }
    check_indexing(file, report);
}

/// Rule `indexing`: a `[` directly following an identifier, `)`, or `]` is
/// a panicking slice index (macro invocations like `vec![...]` and
/// attributes `#[...]` are not).
fn check_indexing(file: &FileContext<'_>, report: &mut AuditReport) {
    let code = &file.code_no_asserts;
    let bytes = code.as_bytes();
    for (at, &b) in bytes.iter().enumerate() {
        if b != b'[' || at == 0 {
            continue;
        }
        let mut p = at - 1;
        while p > 0 && (bytes[p] == b' ' || bytes[p] == b'\t') {
            p -= 1;
        }
        let prev = bytes[p];
        if !(is_ident_byte(prev) || prev == b')' || prev == b']') {
            continue;
        }
        // `name![...]` is a macro invocation and `&'a [T]` is a slice type
        // behind a lifetime — neither is an index. Likewise `mut [T]` /
        // `dyn [T]`: keywords cannot name an indexable binding, so a `[`
        // after them is a slice type in a signature.
        if is_ident_byte(prev) {
            let mut s = p;
            while s > 0 && is_ident_byte(bytes[s - 1]) {
                s -= 1;
            }
            if s > 0 && (bytes[s - 1] == b'!' || bytes[s - 1] == b'\'') {
                continue;
            }
            if matches!(&code[s..=p], "mut" | "dyn") {
                continue;
            }
        }
        let line = file.line_of(at);
        if file.in_test_block.get(line).copied().unwrap_or(false) {
            continue;
        }
        file.push(
            report,
            line,
            "indexing",
            "bare slice index in a hot-path module (use `.get(..)` or waive a documented panic)"
                .to_owned(),
        );
    }
}

/// Rule `cast`: no lossy `as` casts in CSR offset/length math — the
/// checked helpers in `seqdb::cast` exist for exactly this.
fn check_lossy_casts(file: &FileContext<'_>, report: &mut AuditReport) {
    let code = &file.code;
    let bytes = code.as_bytes();
    for cast in LOSSY_CASTS {
        let mut from = 0;
        while let Some(found) = code[from..].find(cast) {
            let at = from + found;
            from = at + cast.len();
            let bounded_left = at == 0 || !is_ident_byte(bytes[at - 1]);
            let bounded_right = bytes
                .get(at + cast.len())
                .is_none_or(|&b| !is_ident_byte(b));
            if !bounded_left || !bounded_right {
                continue;
            }
            let line = file.line_of(at);
            if file.in_test_block.get(line).copied().unwrap_or(false) {
                continue;
            }
            file.push(
                report,
                line,
                "cast",
                format!(
                    "lossy `{cast}` in CSR offset math (use the checked `seqdb::cast` helpers)"
                ),
            );
        }
    }
}

/// Rule `deprecated`: the 0.1.x shims may only be called from the API
/// equivalence suite. Definitions (`fn mine_all(`) are fine anywhere.
fn check_deprecated_shims(file: &FileContext<'_>, report: &mut AuditReport) {
    let code = &file.code;
    let bytes = code.as_bytes();
    for shim in DEPRECATED_SHIMS {
        let needle = format!("{shim}(");
        let mut from = 0;
        while let Some(found) = code[from..].find(&needle) {
            let at = from + found;
            from = at + needle.len();
            if at > 0 && is_ident_byte(bytes[at - 1]) {
                continue;
            }
            // A definition, not a call: `fn mine_all(`.
            let before = code[..at].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            let line = file.line_of(at);
            file.push(
                report,
                line,
                "deprecated",
                format!(
                    "call to deprecated shim `{shim}` outside {SHIM_EXEMPT_FILE} \
                     (use the `Miner` builder API)"
                ),
            );
        }
    }
}

// --- file walking -----------------------------------------------------------

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(relative) = path.strip_prefix(root) {
                out.push(relative.to_path_buf());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_source(relative: &str, source: &str) -> AuditReport {
        let mut report = AuditReport::default();
        audit_file(Path::new(relative), source, &mut report);
        report
    }

    #[test]
    fn unsafe_block_without_safety_comment_is_flagged() {
        let bad = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let report = audit_source("crates/seqdb/src/shared.rs", bad);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "safety");
        assert_eq!(report.violations[0].line, 2);

        let good = "fn f() {\n    // SAFETY: provably unreachable.\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert!(audit_source("crates/seqdb/src/shared.rs", good).is_clean());
    }

    #[test]
    fn unsafe_fn_declarations_are_not_blocks() {
        let source =
            "/// # Safety\n/// Caller checks i.\npub unsafe fn get(i: usize) -> u32 { 0 }\n";
        assert!(audit_source("crates/seqdb/src/shared.rs", source).is_clean());
    }

    #[test]
    fn hot_path_unwrap_expect_and_panics_are_flagged() {
        let bad = "fn f(v: &[u32]) -> u32 {\n    let a = v.first().unwrap();\n    let b = v.last().expect(\"non-empty\");\n    if *a > *b { panic!(\"bad\") }\n    *a\n}\n";
        let report = audit_source("crates/seqdb/src/store.rs", bad);
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["unwrap", "expect", "panic"]);
        // The same file outside the hot-path list is fine.
        assert!(audit_source("crates/seqdb/src/io.rs", bad).is_clean());
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        let source = "fn f(v: &[u32]) -> u32 {\n    v.first().copied().unwrap_or(0).max(v.len() as u32)\n}\n";
        let report = audit_source("crates/core/src/support.rs", source);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn bare_indexing_is_flagged_but_macros_attributes_and_types_are_not() {
        let bad = "fn f(v: &[u32], i: usize) -> u32 {\n    v[i]\n}\n";
        let report = audit_source("crates/seqdb/src/index.rs", bad);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "indexing");

        let good = "#[derive(Debug)]\nstruct S;\nfn f(n: usize) -> Vec<u32> {\n    let x: [u32; 2] = [1, 2];\n    let v = vec![0u32; n];\n    v.iter().copied().chain(x.iter().copied()).collect()\n}\nfn s<'a>(v: &'a [u32]) -> &'a [u32] {\n    v\n}\nfn m(out: &mut [u32]) {\n    out.iter_mut().for_each(|x| *x = 0);\n}\n";
        let report = audit_source("crates/seqdb/src/index.rs", good);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn assert_bodies_and_test_modules_are_exempt() {
        let source = "fn f(v: &[u32]) {\n    assert!(v[0] > 0, \"first {}\", v[0]);\n    debug_assert_eq!(v[1], 2);\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v = vec![1];\n        assert_eq!(v[0], v.first().copied().unwrap());\n    }\n}\n";
        let report = audit_source("crates/seqdb/src/store.rs", source);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn target_feature_fns_need_a_safety_comment_above_the_attribute_stack() {
        let bad = "#[cfg(target_arch = \"x86_64\")]\n#[target_feature(enable = \"avx2\")]\nfn sum_avx2(v: &[u32]) -> u32 {\n    v.iter().sum()\n}\nfn sum_scalar(v: &[u32]) -> u32 {\n    v.iter().sum()\n}\n";
        let report = audit_source("crates/seqdb/src/other.rs", bad);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "target-feature-safety");
        assert_eq!(report.violations[0].line, 2);

        // A SAFETY comment above the attribute stack (cfg + inline between
        // it and the target_feature line) satisfies the rule.
        let good = "// SAFETY: dispatch only reaches this after a runtime AVX2 check.\n#[cfg(target_arch = \"x86_64\")]\n#[inline]\n#[target_feature(enable = \"avx2\")]\nfn sum_avx2(v: &[u32]) -> u32 {\n    v.iter().sum()\n}\nfn sum_scalar(v: &[u32]) -> u32 {\n    v.iter().sum()\n}\n";
        let report = audit_source("crates/seqdb/src/other.rs", good);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn vector_specializations_need_their_scalar_twin_in_the_same_file() {
        let bad = "fn gt_mask_sse2(a: u32, b: u32) -> u32 {\n    0\n}\n";
        let report = audit_source("crates/seqdb/src/other.rs", bad);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "simd-fallback");
        assert!(
            report.violations[0].message.contains("fn gt_mask_scalar"),
            "{}",
            report.violations[0].message
        );

        let good = "fn gt_mask_scalar(a: u32, b: u32) -> u32 {\n    0\n}\nfn gt_mask_sse2(a: u32, b: u32) -> u32 {\n    0\n}\nfn gt_mask_swar(a: u32, b: u32) -> u32 {\n    0\n}\n";
        assert!(audit_source("crates/seqdb/src/other.rs", good).is_clean());

        // A bare suffix is not a specialization of the empty stem.
        let suffix_only = "fn _swar(x: u32) -> u32 {\n    x\n}\n";
        assert!(audit_source("crates/seqdb/src/other.rs", suffix_only).is_clean());
    }

    #[test]
    fn waivers_suppress_and_are_counted() {
        let source = "fn f(v: &[u32], i: usize) -> u32 {\n    // audit:allow(indexing): documented panic at the API boundary.\n    v[i]\n}\n";
        let report = audit_source("crates/seqdb/src/shard.rs", source);
        assert!(report.is_clean());
        assert_eq!(report.waived, 1);
    }

    #[test]
    fn lossy_casts_are_flagged_only_in_csr_files() {
        let bad =
            "fn f(n: u64) -> u32 {\n    n as u32\n}\nfn g(n: usize) -> u64 {\n    n as u64\n}\n";
        let report = audit_source("crates/seqdb/src/snapshot.rs", bad);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "cast");
        assert_eq!(report.violations[0].line, 2);
        assert!(audit_source("crates/core/src/engine.rs", bad).is_clean());
    }

    #[test]
    fn deprecated_shim_calls_are_confined_to_the_equivalence_suite() {
        let call = "fn t() {\n    let _ = mine_all(&db, &config);\n}\n";
        let report = audit_source("crates/core/tests/property.rs", call);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "deprecated");
        assert!(audit_source("tests/api_equivalence.rs", call).is_clean());
        // Definitions are fine anywhere.
        let def = "pub fn mine_all(db: &Db, config: &Cfg) -> Out {\n    todo()\n}\n";
        assert!(audit_source("crates/core/src/gsgrow.rs", def).is_clean());
        // `mine_all_constrained` is its own shim, not a `mine_all` call.
        let other = "fn t() {\n    let _ = mine_all_constrained(&db, &config, c);\n}\n";
        let report = audit_source("crates/core/tests/x.rs", other);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0]
            .message
            .contains("mine_all_constrained"));
    }

    #[test]
    fn audit_walks_a_tree_and_reports_file_line_diagnostics() {
        let dir = std::env::temp_dir().join(format!("xtask-audit-fixture-{}", std::process::id()));
        let hot = dir.join("crates/seqdb/src");
        std::fs::create_dir_all(&hot).unwrap();
        std::fs::write(
            hot.join("store.rs"),
            "fn f(v: &[u32]) -> u32 {\n    v.first().unwrap().wrapping_add(1)\n}\n",
        )
        .unwrap();
        let report = audit(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.violations.len(), 1);
        let rendered = report.violations[0].to_string();
        assert!(
            rendered.starts_with("crates/seqdb/src/store.rs:2: [unwrap]"),
            "{rendered}"
        );
    }

    #[test]
    fn strings_and_comments_never_trigger_rules() {
        let source = "fn f() -> &'static str {\n    // panic!(\"in a comment\") and v[0] too\n    \"call mine_all( via .unwrap() as u32 unsafe {\"\n}\n";
        let report = audit_source("crates/seqdb/src/store.rs", source);
        assert!(report.is_clean(), "{:?}", report.violations);
    }
}
