//! Entry point for workspace maintenance tasks. Today there is one:
//!
//! ```text
//! cargo run -p xtask -- audit
//! ```
//!
//! which runs the repo-specific static-analysis rules in [`xtask::audit`]
//! and exits non-zero if any un-waived violation remains.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit") => run_audit(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n\nusage: cargo run -p xtask -- audit");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- audit");
            ExitCode::FAILURE
        }
    }
}

fn run_audit() -> ExitCode {
    // The workspace root is two levels above this crate's manifest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let report = xtask::audit(&root);
    for violation in &report.violations {
        println!("{violation}");
    }
    let waived = if report.waived > 0 {
        format!(", {} waived by audit:allow", report.waived)
    } else {
        String::new()
    };
    if report.is_clean() {
        println!(
            "audit: OK — {} files scanned, 0 violations{waived}",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "audit: FAILED — {} files scanned, {} violation{}{waived}",
            report.files_scanned,
            report.violations.len(),
            if report.violations.len() == 1 {
                ""
            } else {
                "s"
            }
        );
        ExitCode::FAILURE
    }
}
