//! Discriminative pattern selection.
//!
//! "The patterns which repeat frequently in some sequences while
//! infrequently in others could be discriminative features for
//! classification" (paper, §V). This module scores every column of a
//! [`FeatureMatrix`] against the class labels and keeps the most
//! discriminative ones.
//!
//! Three standard scores are provided:
//!
//! * [`SelectionMethod::InformationGain`] — reduction of class entropy when
//!   splitting on presence (`value > 0`) of the pattern,
//! * [`SelectionMethod::ChiSquared`] — chi-squared statistic of the
//!   presence/class contingency table,
//! * [`SelectionMethod::MeanDifference`] — the spread of per-class mean
//!   supports (max minus min), which uses the *repetition counts* rather
//!   than mere presence and therefore captures exactly the paper's point
//!   that `AB` repeating five times per sequence in one group and once in
//!   the other is discriminative even though it is present in both.

use rgs_core::Pattern;

use crate::dataset::ClassId;
use crate::matrix::FeatureMatrix;

/// The scoring function used to rank patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMethod {
    /// Information gain of the presence split.
    InformationGain,
    /// Chi-squared statistic of the presence/class contingency table.
    ChiSquared,
    /// Spread of per-class mean supports (max minus min class mean).
    MeanDifference,
}

/// A pattern together with its discriminativeness score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPattern {
    /// The column index in the feature matrix the score was computed from.
    pub column: usize,
    /// The pattern.
    pub pattern: Pattern,
    /// The score (higher = more discriminative).
    pub score: f64,
}

/// Scores every column of `matrix` against `labels` with `method`.
///
/// `labels[i]` is the class of row `i`; the slice length must equal the
/// number of rows.
pub fn score_patterns(
    matrix: &FeatureMatrix,
    labels: &[ClassId],
    method: SelectionMethod,
) -> Vec<ScoredPattern> {
    assert_eq!(
        matrix.num_rows(),
        labels.len(),
        "one label per matrix row is required"
    );
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    (0..matrix.num_columns())
        .map(|column| {
            let values = matrix.column(column);
            let score = match method {
                SelectionMethod::InformationGain => information_gain(&values, labels, num_classes),
                SelectionMethod::ChiSquared => chi_squared(&values, labels, num_classes),
                SelectionMethod::MeanDifference => mean_difference(&values, labels, num_classes),
            };
            ScoredPattern {
                column,
                pattern: matrix.patterns()[column].clone(),
                score,
            }
        })
        .collect()
}

/// Scores the columns and returns the `k` highest-scoring ones, best first.
/// Ties are broken by column index for determinism.
pub fn select_top_k(
    matrix: &FeatureMatrix,
    labels: &[ClassId],
    method: SelectionMethod,
    k: usize,
) -> Vec<ScoredPattern> {
    let mut scored = score_patterns(matrix, labels, method);
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.column.cmp(&b.column))
    });
    scored.truncate(k);
    scored
}

/// Shannon entropy (base 2) of a class-count histogram.
fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

fn class_histogram(
    labels: &[ClassId],
    num_classes: usize,
    keep: impl Fn(usize) -> bool,
) -> Vec<usize> {
    let mut counts = vec![0usize; num_classes];
    for (i, &class) in labels.iter().enumerate() {
        if keep(i) {
            counts[class] += 1;
        }
    }
    counts
}

/// Information gain of splitting the rows on `value > 0`.
fn information_gain(values: &[f64], labels: &[ClassId], num_classes: usize) -> f64 {
    if num_classes == 0 || values.is_empty() {
        return 0.0;
    }
    let all = class_histogram(labels, num_classes, |_| true);
    let present = class_histogram(labels, num_classes, |i| values[i] > 0.0);
    let absent = class_histogram(labels, num_classes, |i| values[i] <= 0.0);
    let n = values.len() as f64;
    let n_present: usize = present.iter().sum();
    let n_absent: usize = absent.iter().sum();
    let conditional =
        (n_present as f64 / n) * entropy(&present) + (n_absent as f64 / n) * entropy(&absent);
    (entropy(&all) - conditional).max(0.0)
}

/// Chi-squared statistic of the presence/class contingency table.
fn chi_squared(values: &[f64], labels: &[ClassId], num_classes: usize) -> f64 {
    if num_classes == 0 || values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let present = class_histogram(labels, num_classes, |i| values[i] > 0.0);
    let absent = class_histogram(labels, num_classes, |i| values[i] <= 0.0);
    let class_totals = class_histogram(labels, num_classes, |_| true);
    let n_present: usize = present.iter().sum();
    let n_absent: usize = absent.iter().sum();
    let mut statistic = 0.0;
    for class in 0..num_classes {
        for (observed, row_total) in [(present[class], n_present), (absent[class], n_absent)] {
            let expected = (row_total as f64) * (class_totals[class] as f64) / n;
            if expected > 0.0 {
                let d = observed as f64 - expected;
                statistic += d * d / expected;
            }
        }
    }
    statistic
}

/// The spread (max - min) of the per-class mean support values.
fn mean_difference(values: &[f64], labels: &[ClassId], num_classes: usize) -> f64 {
    if num_classes == 0 || values.is_empty() {
        return 0.0;
    }
    let mut sums = vec![0.0f64; num_classes];
    let mut counts = vec![0usize; num_classes];
    for (&v, &class) in values.iter().zip(labels) {
        sums[class] += v;
        counts[class] += 1;
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    let max = means.iter().cloned().fold(f64::MIN, f64::max);
    let min = means.iter().cloned().fold(f64::MAX, f64::min);
    (max - min).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::extract_features;
    use seqdb::SequenceDatabase;

    /// The larger example of the introduction: 4 sequences where class 0
    /// repeats AB five times per sequence and class 1 only once; CD appears
    /// exactly once everywhere.
    fn intro_example() -> (SequenceDatabase, Vec<ClassId>, FeatureMatrix) {
        let db = SequenceDatabase::from_str_rows(&["CABABABABABD", "CABABABABABD", "ABCD", "ABCD"]);
        let labels = vec![0, 0, 1, 1];
        let patterns: Vec<Pattern> = ["AB", "CD"]
            .iter()
            .map(|s| Pattern::new(db.pattern_from_str(s).unwrap()))
            .collect();
        let matrix = extract_features(&db, &patterns);
        (db, labels, matrix)
    }

    #[test]
    fn mean_difference_separates_ab_from_cd_like_the_introduction_argues() {
        let (_, labels, matrix) = intro_example();
        let scored = score_patterns(&matrix, &labels, SelectionMethod::MeanDifference);
        // AB: class-0 mean 5, class-1 mean 1 -> spread 4. CD: 1 vs 1 -> 0.
        assert!((scored[0].score - 4.0).abs() < 1e-12);
        assert!((scored[1].score - 0.0).abs() < 1e-12);
        let top = select_top_k(&matrix, &labels, SelectionMethod::MeanDifference, 1);
        assert_eq!(top[0].pattern, matrix.patterns()[0].clone());
    }

    #[test]
    fn presence_based_scores_cannot_separate_the_introduction_example() {
        // Both AB and CD are present in every sequence, so presence-based
        // information gain and chi-squared are 0 for both — exactly the
        // limitation of sequence-count support the paper points out.
        let (_, labels, matrix) = intro_example();
        for method in [
            SelectionMethod::InformationGain,
            SelectionMethod::ChiSquared,
        ] {
            let scored = score_patterns(&matrix, &labels, method);
            assert!(scored.iter().all(|s| s.score.abs() < 1e-12), "{method:?}");
        }
    }

    #[test]
    fn information_gain_is_maximal_for_a_perfect_presence_split() {
        let db = SequenceDatabase::from_str_rows(&["ABAB", "AB", "CD", "CDCD"]);
        let labels = vec![0, 0, 1, 1];
        let patterns = vec![
            Pattern::new(db.pattern_from_str("AB").unwrap()),
            Pattern::new(db.pattern_from_str("C").unwrap()),
        ];
        let matrix = extract_features(&db, &patterns);
        let ig = score_patterns(&matrix, &labels, SelectionMethod::InformationGain);
        // Both columns split the two balanced classes perfectly: gain = 1 bit.
        assert!((ig[0].score - 1.0).abs() < 1e-12);
        assert!((ig[1].score - 1.0).abs() < 1e-12);
        let chi = score_patterns(&matrix, &labels, SelectionMethod::ChiSquared);
        // Perfect 2x2 separation of 4 rows has chi-squared = n = 4.
        assert!((chi[0].score - 4.0).abs() < 1e-12);
    }

    #[test]
    fn constant_columns_score_zero_everywhere() {
        let db = SequenceDatabase::from_str_rows(&["AA", "AA", "AA", "AA"]);
        let labels = vec![0, 0, 1, 1];
        let patterns = vec![Pattern::new(db.pattern_from_str("A").unwrap())];
        let matrix = extract_features(&db, &patterns);
        for method in [
            SelectionMethod::InformationGain,
            SelectionMethod::ChiSquared,
            SelectionMethod::MeanDifference,
        ] {
            let scored = score_patterns(&matrix, &labels, method);
            assert!(scored[0].score.abs() < 1e-12, "{method:?}");
        }
    }

    #[test]
    fn select_top_k_truncates_and_orders_deterministically() {
        let (_, labels, matrix) = intro_example();
        let top = select_top_k(&matrix, &labels, SelectionMethod::MeanDifference, 5);
        assert_eq!(top.len(), 2); // only two columns exist
        assert!(top[0].score >= top[1].score);
        let top0 = select_top_k(&matrix, &labels, SelectionMethod::MeanDifference, 0);
        assert!(top0.is_empty());
    }

    #[test]
    #[should_panic(expected = "one label per matrix row")]
    fn mismatched_label_length_panics() {
        let (_, _, matrix) = intro_example();
        score_patterns(&matrix, &[0, 1], SelectionMethod::ChiSquared);
    }

    #[test]
    fn entropy_helper_behaves_on_edge_cases() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[5]), 0.0);
        assert!((entropy(&[2, 2]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
    }
}
