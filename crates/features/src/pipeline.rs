//! One-call "mine → select → train → evaluate" pipeline.
//!
//! The pipeline follows the recipe of the paper's future-work paragraph:
//!
//! 1. mine the **closed** frequent repetitive gapped subsequences of the
//!    training database with CloGSgrow (closed patterns keep the result set
//!    compact without losing support information),
//! 2. turn per-sequence repetitive supports into a feature matrix,
//! 3. keep the most discriminative patterns,
//! 4. train a classifier on the selected features.
//!
//! Mining and feature extraction both run against one [`PreparedDb`]
//! snapshot of the training database, prepared exactly once per training
//! split. [`sweep_min_sup`] and [`cross_validate_pipeline`] hoist that
//! snapshot across threshold sweeps and cross-validation folds — the
//! prepared-reuse win is measured by the bench harness
//! (`BENCH_prepared_engine.json`).

use rgs_core::{MiningOutcome, MiningRequest, Mode, Pattern, PreparedDb};

use crate::classify::{Classifier, Evaluation, MultinomialNaiveBayes, NearestCentroid};
use crate::dataset::{ClassId, LabelError, LabeledDatabase};
use crate::matrix::{extract_features, extract_features_with, FeatureMatrix};
use crate::selection::{select_top_k, ScoredPattern, SelectionMethod};

/// The classifier trained at the end of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifierKind {
    /// Nearest centroid on raw repetition counts.
    NearestCentroid,
    /// Multinomial naive Bayes on repetition counts.
    NaiveBayes,
}

/// Configuration of the classification pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Support threshold for the closed-pattern mining step.
    pub min_sup: u64,
    /// How many discriminative patterns to keep as features.
    pub num_features: usize,
    /// Minimum length of candidate patterns (length-1 patterns are usually
    /// too generic to be discriminative).
    pub min_pattern_len: usize,
    /// Scoring function for the selection step.
    pub selection: SelectionMethod,
    /// Which classifier to train.
    pub classifier: ClassifierKind,
    /// Safety cap on the number of mined patterns.
    pub max_patterns: usize,
    /// Optional cap on the length of mined candidate patterns. Long traces
    /// with heavy within-sequence repetition can otherwise produce very long
    /// (and very many) closed patterns; short patterns are usually the
    /// discriminative ones anyway.
    pub max_pattern_length: Option<usize>,
}

impl PipelineConfig {
    /// A pipeline with `min_sup` for mining and `num_features` selected
    /// features, mean-difference selection, and a nearest-centroid
    /// classifier.
    pub fn new(min_sup: u64, num_features: usize) -> Self {
        Self {
            min_sup,
            num_features,
            min_pattern_len: 2,
            selection: SelectionMethod::MeanDifference,
            classifier: ClassifierKind::NearestCentroid,
            max_patterns: 100_000,
            max_pattern_length: None,
        }
    }

    /// Caps the length of mined candidate patterns.
    pub fn with_max_pattern_length(mut self, max_len: usize) -> Self {
        self.max_pattern_length = Some(max_len);
        self
    }

    /// Uses the given selection method.
    pub fn with_selection(mut self, selection: SelectionMethod) -> Self {
        self.selection = selection;
        self
    }

    /// Uses the given classifier.
    pub fn with_classifier(mut self, classifier: ClassifierKind) -> Self {
        self.classifier = classifier;
        self
    }

    /// Sets the minimum candidate pattern length.
    pub fn with_min_pattern_len(mut self, min_len: usize) -> Self {
        self.min_pattern_len = min_len;
        self
    }
}

/// A fitted pipeline: the selected patterns plus the trained classifier.
#[derive(Debug, Clone)]
pub struct FittedPipeline {
    /// The discriminative patterns used as features, best first.
    pub selected: Vec<ScoredPattern>,
    /// Which classifier was trained.
    pub classifier_kind: ClassifierKind,
    nearest_centroid: Option<NearestCentroid>,
    naive_bayes: Option<MultinomialNaiveBayes>,
}

impl FittedPipeline {
    /// The selected feature patterns (in feature-column order).
    pub fn feature_patterns(&self) -> Vec<Pattern> {
        self.selected.iter().map(|s| s.pattern.clone()).collect()
    }

    /// Extracts the selected features for an arbitrary database that shares
    /// the training catalog.
    pub fn featurize(&self, db: &seqdb::SequenceDatabase) -> FeatureMatrix {
        extract_features(db, &self.feature_patterns())
    }

    /// Predicts the class of every sequence of `data`, returning class ids
    /// of the training label space.
    pub fn predict(&self, db: &seqdb::SequenceDatabase) -> Vec<ClassId> {
        let features = self.featurize(db);
        match self.classifier_kind {
            ClassifierKind::NearestCentroid => self
                .nearest_centroid
                .as_ref()
                .expect("fitted")
                .predict_all(&features),
            ClassifierKind::NaiveBayes => self
                .naive_bayes
                .as_ref()
                .expect("fitted")
                .predict_all(&features),
        }
    }

    /// Evaluates the pipeline on labeled data (e.g. a held-out test split).
    pub fn evaluate(&self, data: &LabeledDatabase) -> Evaluation {
        let predictions = self.predict(data.database());
        Evaluation::compare(data.class_ids(), &predictions)
    }
}

/// The outcome of [`run_pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The fitted pipeline (patterns + classifier), usable on new data.
    pub pipeline: FittedPipeline,
    /// Number of closed patterns mined before selection.
    pub mined_patterns: usize,
    /// Accuracy of the classifier on its own training data.
    pub training_accuracy: f64,
    /// Training-set evaluation (confusion matrix etc.).
    pub training_evaluation: Evaluation,
}

/// Runs the full pipeline on `train` and reports the fitted model together
/// with its training-set evaluation.
///
/// Prepares the training database once (index + occurrence counts) and
/// reuses the snapshot for both the mining and the feature-extraction
/// steps. When running several configurations on the same split, prepare
/// the snapshot yourself and call [`run_pipeline_prepared`] — or use
/// [`sweep_min_sup`] / [`cross_validate_pipeline`], which do the hoisting.
pub fn run_pipeline(
    train: &LabeledDatabase,
    config: &PipelineConfig,
) -> Result<PipelineReport, LabelError> {
    let prepared = PreparedDb::new(train.database());
    run_pipeline_prepared(&prepared, train, config)
}

/// [`run_pipeline`] against a caller-prepared snapshot of the training
/// database. `prepared` must be a snapshot of `train.database()` (same
/// sequences, same catalog); the fast path for repeated mining over one
/// training split.
pub fn run_pipeline_prepared(
    prepared: &PreparedDb,
    train: &LabeledDatabase,
    config: &PipelineConfig,
) -> Result<PipelineReport, LabelError> {
    debug_assert_eq!(
        prepared.database().num_sequences(),
        train.num_sequences(),
        "prepared snapshot does not match the training split"
    );
    let mut miner = prepared
        .miner()
        .min_sup(config.min_sup)
        .mode(Mode::Closed)
        .max_patterns(config.max_patterns);
    if let Some(max_len) = config.max_pattern_length {
        miner = miner.max_pattern_length(max_len);
    }
    let mined = miner.run();
    fit_mined(prepared, train, config, &mined)
}

/// The mining request a pipeline configuration resolves to — the same
/// request `run_pipeline_prepared` builds through the [`Miner`] builder,
/// expressed as plain data so a threshold sweep can hand the whole set to
/// [`PreparedDb::batch`] at once.
///
/// [`Miner`]: rgs_core::Miner
fn mining_request(config: &PipelineConfig) -> MiningRequest {
    MiningRequest {
        min_sup: config.min_sup,
        mode: Mode::Closed,
        max_patterns: Some(config.max_patterns),
        max_pattern_length: config.max_pattern_length,
        ..MiningRequest::default()
    }
}

/// The selection/training back half of the pipeline, fed with an already
/// mined closed-pattern set (solo or batched — the batch engine pins its
/// outcomes bit-identical to solo runs, so the split is exact).
fn fit_mined(
    prepared: &PreparedDb,
    train: &LabeledDatabase,
    config: &PipelineConfig,
    mined: &MiningOutcome,
) -> Result<PipelineReport, LabelError> {
    let candidates: Vec<Pattern> = mined
        .patterns
        .iter()
        .filter(|mp| mp.pattern.len() >= config.min_pattern_len)
        .map(|mp| mp.pattern.clone())
        .collect();
    let matrix = extract_features_with(
        &prepared.support_computer(),
        prepared.database(),
        &candidates,
    );
    let selected = select_top_k(
        &matrix,
        train.class_ids(),
        config.selection,
        config.num_features.max(1),
    );
    let columns: Vec<usize> = selected.iter().map(|s| s.column).collect();
    let train_matrix = matrix.select_columns(&columns);

    let mut nearest_centroid = None;
    let mut naive_bayes = None;
    let predictions = match config.classifier {
        ClassifierKind::NearestCentroid => {
            let mut model = NearestCentroid::new();
            model.fit(&train_matrix, train.class_ids());
            let predictions = model.predict_all(&train_matrix);
            nearest_centroid = Some(model);
            predictions
        }
        ClassifierKind::NaiveBayes => {
            let mut model = MultinomialNaiveBayes::new();
            model.fit(&train_matrix, train.class_ids());
            let predictions = model.predict_all(&train_matrix);
            naive_bayes = Some(model);
            predictions
        }
    };
    let training_evaluation = Evaluation::compare(train.class_ids(), &predictions);
    Ok(PipelineReport {
        training_accuracy: training_evaluation.accuracy(),
        training_evaluation,
        mined_patterns: mined.patterns.len(),
        pipeline: FittedPipeline {
            selected,
            classifier_kind: config.classifier,
            nearest_centroid,
            naive_bayes,
        },
    })
}

/// Runs the pipeline at several support thresholds over **one** prepared
/// snapshot of the training split (the threshold sweep is the classic
/// model-selection loop; re-preparing per threshold is pure waste).
/// Returns `(min_sup, report)` pairs in input order.
///
/// All thresholds are mined in **one** [`PreparedDb::batch`] call: the
/// batch engine shares a single closed-pattern DFS at the lowest threshold
/// and routes each pattern to every threshold it satisfies, with each
/// outcome pinned bit-identical to the per-threshold solo run the sweep
/// previously looped over.
pub fn sweep_min_sup(
    train: &LabeledDatabase,
    min_sups: &[u64],
    base: &PipelineConfig,
) -> Result<Vec<(u64, PipelineReport)>, LabelError> {
    let prepared = PreparedDb::new(train.database());
    let configs: Vec<PipelineConfig> = min_sups
        .iter()
        .map(|&min_sup| PipelineConfig {
            min_sup,
            ..base.clone()
        })
        .collect();
    let requests: Vec<MiningRequest> = configs.iter().map(mining_request).collect();
    let mined = prepared.batch(&requests);
    let mut reports = Vec::with_capacity(min_sups.len());
    for (config, result) in configs.iter().zip(&mined) {
        reports.push((
            config.min_sup,
            fit_mined(&prepared, train, config, &result.outcome)?,
        ));
    }
    Ok(reports)
}

/// The outcome of [`cross_validate_pipeline`]: per-fold held-out
/// evaluations of freshly fitted pipelines.
#[derive(Debug, Clone)]
pub struct CrossValidationReport {
    /// Held-out accuracy of each fold, in fold order.
    pub fold_accuracies: Vec<f64>,
    /// Held-out evaluation (confusion matrix etc.) of each fold.
    pub fold_evaluations: Vec<Evaluation>,
}

impl CrossValidationReport {
    /// The mean held-out accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }
}

/// Stratified k-fold cross validation of the full pipeline: each fold is
/// held out once while the remaining folds form the training split, on
/// which **one** [`PreparedDb`] is prepared and shared by every mining and
/// feature-extraction call of that fold (previously the database was
/// re-prepared on each call).
pub fn cross_validate_pipeline(
    data: &LabeledDatabase,
    folds: usize,
    seed: u64,
    config: &PipelineConfig,
) -> Result<CrossValidationReport, LabelError> {
    let fold_indices = data.stratified_folds(folds, seed)?;
    let mut fold_accuracies = Vec::with_capacity(folds);
    let mut fold_evaluations = Vec::with_capacity(folds);
    for (held_out_fold, held_out) in fold_indices.iter().enumerate() {
        let mut train_indices: Vec<usize> = fold_indices
            .iter()
            .enumerate()
            .filter(|&(fold, _)| fold != held_out_fold)
            .flat_map(|(_, indices)| indices.iter().copied())
            .collect();
        train_indices.sort_unstable();
        let train = data.subset(&train_indices);
        let test = data.subset(held_out);
        // One snapshot per training split, reused by mining and
        // featurization inside `run_pipeline_prepared`.
        let prepared = PreparedDb::new(train.database());
        let report = run_pipeline_prepared(&prepared, &train, config)?;
        let evaluation = report.pipeline.evaluate(&test);
        fold_accuracies.push(evaluation.accuracy());
        fold_evaluations.push(evaluation);
    }
    Ok(CrossValidationReport {
        fold_accuracies,
        fold_evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb::SequenceDatabase;

    /// Two well-separated behaviour classes: "churners" repeat order-cancel
    /// cycles, "loyal" customers repeat order-deliver cycles.
    fn labeled_example() -> LabeledDatabase {
        let db = SequenceDatabase::from_str_rows(&[
            "OCOCOCOC",
            "OCOCOC",
            "XOCOCOCY",
            "OCOCOCOCOC",
            "ODODODOD",
            "ODODOD",
            "XODODODY",
            "ODODODODOD",
        ]);
        LabeledDatabase::new(
            db,
            vec![
                "churn".into(),
                "churn".into(),
                "churn".into(),
                "churn".into(),
                "loyal".into(),
                "loyal".into(),
                "loyal".into(),
                "loyal".into(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn pipeline_separates_two_behaviour_classes_perfectly() {
        let data = labeled_example();
        for classifier in [ClassifierKind::NearestCentroid, ClassifierKind::NaiveBayes] {
            let report = run_pipeline(
                &data,
                &PipelineConfig::new(2, 4).with_classifier(classifier),
            )
            .unwrap();
            assert!(report.mined_patterns > 0);
            assert_eq!(report.training_accuracy, 1.0, "{classifier:?}");
            assert!(!report.pipeline.selected.is_empty());
        }
    }

    #[test]
    fn fitted_pipeline_generalizes_to_unseen_sequences() {
        let data = labeled_example();
        let (train, test) = data.stratified_split(0.5, 11).unwrap();
        let report = run_pipeline(&train, &PipelineConfig::new(2, 4)).unwrap();
        let eval = report.pipeline.evaluate(&test);
        assert!(
            eval.accuracy() >= 0.75,
            "held-out accuracy too low: {}",
            eval.accuracy()
        );
    }

    #[test]
    fn selected_patterns_are_discriminative_not_shared() {
        let data = labeled_example();
        let report = run_pipeline(&data, &PipelineConfig::new(2, 2)).unwrap();
        let catalog = data.database().catalog();
        let rendered: Vec<String> = report
            .pipeline
            .feature_patterns()
            .iter()
            .map(|p| p.render(catalog))
            .collect();
        // The top features must involve the class-specific events C or D,
        // not the shared prefix O alone.
        assert!(
            rendered.iter().any(|p| p.contains('C') || p.contains('D')),
            "selected patterns {rendered:?} are not class-specific"
        );
    }

    #[test]
    fn selection_method_and_min_len_are_configurable() {
        let data = labeled_example();
        let config = PipelineConfig::new(2, 3)
            .with_selection(SelectionMethod::InformationGain)
            .with_min_pattern_len(1)
            .with_classifier(ClassifierKind::NaiveBayes);
        let report = run_pipeline(&data, &config).unwrap();
        assert!(report.training_accuracy >= 0.5);
        assert!(report.pipeline.selected.len() <= 3);
    }

    #[test]
    fn prepared_pipeline_matches_the_unprepared_one() {
        let data = labeled_example();
        let config = PipelineConfig::new(2, 4);
        let fresh = run_pipeline(&data, &config).unwrap();
        let prepared = PreparedDb::new(data.database());
        let reused = run_pipeline_prepared(&prepared, &data, &config).unwrap();
        assert_eq!(fresh.mined_patterns, reused.mined_patterns);
        assert_eq!(fresh.training_accuracy, reused.training_accuracy);
        assert_eq!(
            fresh.pipeline.feature_patterns(),
            reused.pipeline.feature_patterns()
        );
    }

    #[test]
    fn min_sup_sweep_reuses_one_snapshot_and_matches_individual_runs() {
        let data = labeled_example();
        let base = PipelineConfig::new(2, 4);
        let swept = sweep_min_sup(&data, &[2, 3, 4], &base).unwrap();
        assert_eq!(swept.len(), 3);
        for (min_sup, report) in &swept {
            let config = PipelineConfig {
                min_sup: *min_sup,
                ..base.clone()
            };
            let fresh = run_pipeline(&data, &config).unwrap();
            assert_eq!(report.mined_patterns, fresh.mined_patterns);
            assert_eq!(
                report.pipeline.feature_patterns(),
                fresh.pipeline.feature_patterns()
            );
        }
    }

    #[test]
    fn batched_sweep_matches_old_stepped_loop_exactly() {
        // The pre-batch implementation looped `run_pipeline_prepared` per
        // threshold; reproduce that loop verbatim and pin the batched
        // sweep against it, including the mined-pattern counts the batch
        // engine must replay bit-identically.
        let data = labeled_example();
        let base = PipelineConfig::new(2, 4).with_max_pattern_length(5);
        let min_sups = [1u64, 2, 3, 4, 6];
        let swept = sweep_min_sup(&data, &min_sups, &base).unwrap();
        let prepared = PreparedDb::new(data.database());
        for (&min_sup, (reported_sup, report)) in min_sups.iter().zip(&swept) {
            let config = PipelineConfig {
                min_sup,
                ..base.clone()
            };
            let stepped = run_pipeline_prepared(&prepared, &data, &config).unwrap();
            assert_eq!(*reported_sup, min_sup);
            assert_eq!(report.mined_patterns, stepped.mined_patterns, "{min_sup}");
            assert_eq!(report.training_accuracy, stepped.training_accuracy);
            assert_eq!(
                report.pipeline.feature_patterns(),
                stepped.pipeline.feature_patterns(),
                "min_sup {min_sup}"
            );
        }
    }

    #[test]
    fn cross_validation_stays_pinned_to_solo_mining() {
        // The cross-validation path intentionally stays on solo mining
        // (each fold has its own training split, so there is nothing to
        // batch); pin its per-fold numbers so a future rewire can't drift
        // them silently.
        let data = labeled_example();
        let config = PipelineConfig::new(2, 4);
        let first = cross_validate_pipeline(&data, 2, 7, &config).unwrap();
        let second = cross_validate_pipeline(&data, 2, 7, &config).unwrap();
        assert_eq!(first.fold_accuracies, second.fold_accuracies);
        // Reproduce fold 0 by hand through the solo pipeline and check the
        // held-out evaluation matches what cross-validation reported.
        let fold_indices = data.stratified_folds(2, 7).unwrap();
        let mut train_indices: Vec<usize> = fold_indices.get(1).cloned().unwrap_or_default();
        train_indices.sort_unstable();
        let train = data.subset(&train_indices);
        let test = data.subset(fold_indices.first().map(Vec::as_slice).unwrap_or(&[]));
        let report = run_pipeline(&train, &config).unwrap();
        let evaluation = report.pipeline.evaluate(&test);
        assert_eq!(
            first.fold_accuracies.first().copied(),
            Some(evaluation.accuracy()),
            "fold 0 drifted off the solo-mining path"
        );
    }

    #[test]
    fn cross_validation_hoists_one_prepared_db_per_split() {
        let data = labeled_example();
        let report = cross_validate_pipeline(&data, 2, 7, &PipelineConfig::new(2, 4)).unwrap();
        assert_eq!(report.fold_accuracies.len(), 2);
        assert_eq!(report.fold_evaluations.len(), 2);
        assert!(report.mean_accuracy() >= 0.5, "{report:?}");
        for accuracy in &report.fold_accuracies {
            assert!((0.0..=1.0).contains(accuracy));
        }
    }

    #[test]
    fn predictions_align_with_class_name_order() {
        let data = labeled_example();
        let report = run_pipeline(&data, &PipelineConfig::new(2, 4)).unwrap();
        let churn_only = data.class_database(0);
        let predictions = report.pipeline.predict(&churn_only);
        assert!(predictions.iter().all(|&c| c == 0));
    }
}
