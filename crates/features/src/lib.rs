//! # rgs-features — repetitive patterns as classification features
//!
//! The concluding section of the ICDE'09 paper sketches a follow-up
//! application of repetitive gapped subsequence mining: *"frequent
//! repetitive gapped subsequences can be used as features for classifying
//! sequences, like (buggy/un-buggy) program execution traces and purchase
//! histories of different types of customers. The patterns which repeat
//! frequently in some sequences while infrequently in others could be
//! discriminative features for classification. Our algorithms find all
//! frequent repetitive patterns and report their supports in each sequence
//! as feature values; a future work is to select discriminative ones for
//! classification."*
//!
//! This crate implements that pipeline end to end:
//!
//! * [`LabeledDatabase`] — a sequence database whose sequences carry class
//!   labels, with stratified train/test splitting,
//! * [`matrix`] — per-sequence repetitive support extraction into a
//!   [`FeatureMatrix`] (one row per sequence, one column per pattern),
//! * [`selection`] — discriminative pattern scoring (information gain,
//!   chi-squared, mean-support difference) and top-k selection,
//! * [`classify`] — simple reference classifiers (nearest centroid,
//!   multinomial naive Bayes, k-nearest-neighbour), evaluation metrics, and
//!   k-fold cross validation,
//! * [`pipeline`] — a one-call "mine → select → train → evaluate" pipeline.
//!
//! The pipeline rides on the prepared-query engine: threshold sweeps and
//! cross-validation hoist **one** [`rgs_core::PreparedDb`] per training
//! split ([`pipeline::run_pipeline_prepared`], [`pipeline::sweep_min_sup`],
//! [`pipeline::cross_validate_pipeline`]) instead of re-indexing per call —
//! and a long-lived service can persist that snapshot with
//! `PreparedDb::write_snapshot` and reopen it zero-copy on restart.
//!
//! # Example
//!
//! ```
//! use seqdb::SequenceDatabase;
//! use rgs_features::{LabeledDatabase, pipeline::{PipelineConfig, run_pipeline}};
//!
//! // Two "customers who churn" (lots of cancel-after-order repetition) and
//! // two who do not.
//! let db = SequenceDatabase::from_str_rows(&[
//!     "OCOCOCOC", "OCOCOC", "ODODODOD", "ODODOD",
//! ]);
//! let labeled = LabeledDatabase::new(db, vec![
//!     "churn".into(), "churn".into(), "loyal".into(), "loyal".into(),
//! ]).unwrap();
//!
//! let report = run_pipeline(&labeled, &PipelineConfig::new(2, 4)).unwrap();
//! assert!(report.training_accuracy >= 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod dataset;
pub mod matrix;
pub mod pipeline;
pub mod selection;

pub use classify::{Classifier, Evaluation, KnnClassifier, MultinomialNaiveBayes, NearestCentroid};
pub use dataset::{ClassId, LabeledDatabase};
pub use matrix::{extract_features, extract_features_with, FeatureMatrix};
pub use pipeline::{
    cross_validate_pipeline, run_pipeline, run_pipeline_prepared, sweep_min_sup,
    CrossValidationReport, PipelineConfig, PipelineReport,
};
pub use selection::{score_patterns, select_top_k, ScoredPattern, SelectionMethod};
