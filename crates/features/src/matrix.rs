//! Per-sequence repetitive support extraction into a feature matrix.
//!
//! The paper's future-work sketch says the miners "report their supports in
//! each sequence as feature values". For a pattern `P`, the per-sequence
//! feature value of sequence `Si` is the maximum number of non-overlapping
//! instances of `P` inside `Si` — exactly the contribution of `Si` to the
//! global repetitive support (the per-sequence maxima are independent, so
//! the global leftmost support set restricted to `Si` attains each of them).

use rgs_core::{Pattern, SupportComputer};
use seqdb::SequenceDatabase;

/// A dense feature matrix: one row per sequence of the database, one column
/// per pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    patterns: Vec<Pattern>,
    /// Row-major values, `rows * columns` entries.
    values: Vec<f64>,
    rows: usize,
}

impl FeatureMatrix {
    /// Creates a matrix from its parts. `values` must hold
    /// `rows * patterns.len()` entries in row-major order.
    pub fn from_parts(patterns: Vec<Pattern>, values: Vec<f64>, rows: usize) -> Self {
        assert_eq!(
            values.len(),
            rows * patterns.len(),
            "value buffer must be rows x columns"
        );
        Self {
            patterns,
            values,
            rows,
        }
    }

    /// The patterns labelling the columns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of rows (sequences).
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (patterns).
    pub fn num_columns(&self) -> usize {
        self.patterns.len()
    }

    /// The feature vector of sequence `row`.
    pub fn row(&self, row: usize) -> &[f64] {
        let cols = self.num_columns();
        &self.values[row * cols..(row + 1) * cols]
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// The value at `(row, column)`.
    pub fn value(&self, row: usize, column: usize) -> f64 {
        self.values[row * self.num_columns() + column]
    }

    /// The column of values for pattern index `column`.
    pub fn column(&self, column: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.value(r, column)).collect()
    }

    /// Restricts the matrix to the given column indices (in that order).
    pub fn select_columns(&self, columns: &[usize]) -> FeatureMatrix {
        let patterns: Vec<Pattern> = columns.iter().map(|&c| self.patterns[c].clone()).collect();
        let mut values = Vec::with_capacity(self.rows * columns.len());
        for r in 0..self.rows {
            for &c in columns {
                values.push(self.value(r, c));
            }
        }
        FeatureMatrix::from_parts(patterns, values, self.rows)
    }

    /// Restricts the matrix to the given row indices (in that order), e.g.
    /// to carve train/test subsets out of a matrix computed on the full
    /// database.
    pub fn select_rows(&self, rows: &[usize]) -> FeatureMatrix {
        let mut values = Vec::with_capacity(rows.len() * self.num_columns());
        for &r in rows {
            values.extend_from_slice(self.row(r));
        }
        FeatureMatrix::from_parts(self.patterns.clone(), values, rows.len())
    }

    /// The mean of each column.
    pub fn column_means(&self) -> Vec<f64> {
        let cols = self.num_columns();
        let mut means = vec![0.0; cols];
        if self.rows == 0 {
            return means;
        }
        for row in self.rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Binarizes the matrix: every value `> threshold` becomes `1.0`, the
    /// rest `0.0` (presence features).
    pub fn binarized(&self, threshold: f64) -> FeatureMatrix {
        FeatureMatrix {
            patterns: self.patterns.clone(),
            values: self
                .values
                .iter()
                .map(|&v| if v > threshold { 1.0 } else { 0.0 })
                .collect(),
            rows: self.rows,
        }
    }
}

/// Computes the feature matrix of `patterns` over `db`: entry `(i, j)` is
/// the per-sequence repetitive support of pattern `j` in sequence `i`.
pub fn extract_features(db: &SequenceDatabase, patterns: &[Pattern]) -> FeatureMatrix {
    let sc = SupportComputer::new(db);
    extract_features_with(&sc, db, patterns)
}

/// [`extract_features`] reusing an existing [`SupportComputer`] (avoids
/// rebuilding the inverted index when extracting several pattern sets).
pub fn extract_features_with(
    sc: &SupportComputer<'_>,
    db: &SequenceDatabase,
    patterns: &[Pattern],
) -> FeatureMatrix {
    let rows = db.num_sequences();
    let cols = patterns.len();
    let mut values = vec![0.0f64; rows * cols];
    for (j, pattern) in patterns.iter().enumerate() {
        let support_set = sc.support_set(pattern);
        for (seq, instances) in support_set.per_sequence() {
            values[seq * cols + j] = instances.len() as f64;
        }
    }
    FeatureMatrix::from_parts(patterns.to_vec(), values, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD", "ABABAB"])
    }

    fn patterns(db: &SequenceDatabase, strs: &[&str]) -> Vec<Pattern> {
        strs.iter()
            .map(|s| Pattern::new(db.pattern_from_str(s).unwrap()))
            .collect()
    }

    #[test]
    fn per_sequence_supports_match_example_1_1() {
        // In Example 1.1, AB has 3 non-overlapping instances in S1 and 1 in
        // S2; CD has 1 in each.
        let db = db();
        let pats = patterns(&db, &["AB", "CD"]);
        let matrix = extract_features(&db, &pats);
        assert_eq!(matrix.num_rows(), 3);
        assert_eq!(matrix.num_columns(), 2);
        assert_eq!(matrix.row(0), &[3.0, 1.0]);
        assert_eq!(matrix.row(1), &[1.0, 1.0]);
        assert_eq!(matrix.row(2), &[3.0, 0.0]);
    }

    #[test]
    fn per_sequence_values_sum_to_the_global_support() {
        let db = db();
        let pats = patterns(&db, &["AB", "CD", "A", "ABB"]);
        let sc = SupportComputer::new(&db);
        let matrix = extract_features(&db, &pats);
        for (j, p) in pats.iter().enumerate() {
            let total: f64 = matrix.column(j).iter().sum();
            assert_eq!(total, sc.support(p) as f64, "pattern {p:?}");
        }
    }

    #[test]
    fn select_columns_and_rows_reorder_and_subset() {
        let db = db();
        let pats = patterns(&db, &["AB", "CD", "A"]);
        let matrix = extract_features(&db, &pats);
        let cols = matrix.select_columns(&[2, 0]);
        assert_eq!(cols.num_columns(), 2);
        assert_eq!(cols.patterns()[0], pats[2]);
        assert_eq!(cols.row(0), &[3.0, 3.0]); // A appears 3 times in S1
        let rows = matrix.select_rows(&[2, 1]);
        assert_eq!(rows.num_rows(), 2);
        assert_eq!(rows.row(0), matrix.row(2));
        assert_eq!(rows.row(1), matrix.row(1));
    }

    #[test]
    fn column_means_and_binarization() {
        let db = db();
        let pats = patterns(&db, &["AB"]);
        let matrix = extract_features(&db, &pats);
        let means = matrix.column_means();
        assert!((means[0] - (3.0 + 1.0 + 3.0) / 3.0).abs() < 1e-12);
        let bin = matrix.binarized(1.0);
        assert_eq!(bin.column(0), vec![1.0, 0.0, 1.0]);
        let presence = matrix.binarized(0.0);
        assert_eq!(presence.column(0), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_pattern_list_yields_zero_width_matrix() {
        let db = db();
        let matrix = extract_features(&db, &[]);
        assert_eq!(matrix.num_rows(), 3);
        assert_eq!(matrix.num_columns(), 0);
        assert_eq!(matrix.row(1), &[] as &[f64]);
        assert!(matrix.column_means().is_empty());
    }

    #[test]
    #[should_panic(expected = "rows x columns")]
    fn from_parts_validates_the_buffer_size() {
        FeatureMatrix::from_parts(vec![Pattern::empty()], vec![1.0, 2.0, 3.0], 2);
    }
}
