//! Labeled sequence databases: the input to the classification pipeline.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use seqdb::{Sequence, SequenceDatabase};

/// A dense class identifier (index into [`LabeledDatabase::class_names`]).
pub type ClassId = usize;

/// Errors raised when assembling or splitting a labeled database.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelError {
    /// The number of labels does not match the number of sequences.
    LengthMismatch {
        /// Number of sequences in the database.
        sequences: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// A split fraction outside `(0, 1)` was requested.
    InvalidFraction(f64),
    /// A class has too few sequences for the requested operation (e.g. a
    /// stratified split or cross-validation fold count).
    ClassTooSmall {
        /// The class in question.
        class: String,
        /// How many sequences it has.
        size: usize,
    },
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::LengthMismatch { sequences, labels } => write!(
                f,
                "label count ({labels}) does not match sequence count ({sequences})"
            ),
            LabelError::InvalidFraction(x) => {
                write!(f, "split fraction {x} must lie strictly between 0 and 1")
            }
            LabelError::ClassTooSmall { class, size } => {
                write!(f, "class {class:?} has only {size} sequence(s)")
            }
        }
    }
}

impl std::error::Error for LabelError {}

/// A sequence database whose sequences carry class labels.
///
/// Labels are interned: the public API exposes both the original label
/// strings and dense [`ClassId`]s (the order of first appearance).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDatabase {
    database: SequenceDatabase,
    class_names: Vec<String>,
    class_ids: Vec<ClassId>,
}

impl LabeledDatabase {
    /// Pairs a database with one label per sequence.
    pub fn new(database: SequenceDatabase, labels: Vec<String>) -> Result<Self, LabelError> {
        if database.num_sequences() != labels.len() {
            return Err(LabelError::LengthMismatch {
                sequences: database.num_sequences(),
                labels: labels.len(),
            });
        }
        let mut class_names: Vec<String> = Vec::new();
        let mut class_ids = Vec::with_capacity(labels.len());
        for label in labels {
            let id = match class_names.iter().position(|c| *c == label) {
                Some(id) => id,
                None => {
                    class_names.push(label);
                    class_names.len() - 1
                }
            };
            class_ids.push(id);
        }
        Ok(Self {
            database,
            class_names,
            class_ids,
        })
    }

    /// The underlying (unlabeled) sequence database.
    pub fn database(&self) -> &SequenceDatabase {
        &self.database
    }

    /// The distinct class names, in order of first appearance.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// The number of sequences.
    pub fn num_sequences(&self) -> usize {
        self.class_ids.len()
    }

    /// The dense class id of each sequence, index-aligned with the database.
    pub fn class_ids(&self) -> &[ClassId] {
        &self.class_ids
    }

    /// The class id of sequence `seq`.
    pub fn class_of(&self, seq: usize) -> Option<ClassId> {
        self.class_ids.get(seq).copied()
    }

    /// The class name of sequence `seq`.
    pub fn label_of(&self, seq: usize) -> Option<&str> {
        self.class_of(seq)
            .and_then(|id| self.class_names.get(id).map(String::as_str))
    }

    /// How many sequences belong to each class, keyed by class id.
    pub fn class_sizes(&self) -> BTreeMap<ClassId, usize> {
        let mut sizes = BTreeMap::new();
        for &id in &self.class_ids {
            *sizes.entry(id).or_insert(0) += 1;
        }
        sizes
    }

    /// The sequence indices belonging to class `class`.
    pub fn sequences_of_class(&self, class: ClassId) -> Vec<usize> {
        self.class_ids
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Builds a new labeled database containing only the sequences at
    /// `indices` (in that order), sharing the event catalog.
    pub fn subset(&self, indices: &[usize]) -> LabeledDatabase {
        let sequences: Vec<Sequence> = indices
            .iter()
            .filter_map(|&i| self.database.sequence(i).map(seqdb::SeqView::to_sequence))
            .collect();
        let class_ids: Vec<ClassId> = indices.iter().filter_map(|&i| self.class_of(i)).collect();
        LabeledDatabase {
            database: SequenceDatabase::from_parts(self.database.catalog().clone(), sequences),
            class_names: self.class_names.clone(),
            class_ids,
        }
    }

    /// A per-class view: the sub-database of just the sequences of `class`.
    pub fn class_database(&self, class: ClassId) -> SequenceDatabase {
        let indices = self.sequences_of_class(class);
        let sequences: Vec<Sequence> = indices
            .iter()
            .filter_map(|&i| self.database.sequence(i).map(seqdb::SeqView::to_sequence))
            .collect();
        SequenceDatabase::from_parts(self.database.catalog().clone(), sequences)
    }

    /// Splits the database into a training and a test part, stratified by
    /// class: each class contributes approximately `train_fraction` of its
    /// sequences to the training part (at least one to each side when the
    /// class has two or more sequences).
    pub fn stratified_split(
        &self,
        train_fraction: f64,
        seed: u64,
    ) -> Result<(LabeledDatabase, LabeledDatabase), LabelError> {
        if !(train_fraction > 0.0 && train_fraction < 1.0) {
            return Err(LabelError::InvalidFraction(train_fraction));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train_indices = Vec::new();
        let mut test_indices = Vec::new();
        for class in 0..self.num_classes() {
            let mut members = self.sequences_of_class(class);
            if members.is_empty() {
                continue;
            }
            if members.len() < 2 {
                return Err(LabelError::ClassTooSmall {
                    class: self.class_names[class].clone(),
                    size: members.len(),
                });
            }
            members.shuffle(&mut rng);
            // Sign loss is impossible: the fraction and the length are non-negative.
            #[allow(clippy::cast_sign_loss)]
            let mut train_count = ((members.len() as f64) * train_fraction).round() as usize;
            train_count = train_count.clamp(1, members.len() - 1);
            train_indices.extend_from_slice(&members[..train_count]);
            test_indices.extend_from_slice(&members[train_count..]);
        }
        train_indices.sort_unstable();
        test_indices.sort_unstable();
        Ok((self.subset(&train_indices), self.subset(&test_indices)))
    }

    /// Splits the sequence indices into `folds` stratified folds for cross
    /// validation. Every fold receives at least one sequence of every class,
    /// which requires every class to have at least `folds` sequences.
    pub fn stratified_folds(&self, folds: usize, seed: u64) -> Result<Vec<Vec<usize>>, LabelError> {
        assert!(folds >= 2, "cross validation needs at least two folds");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut result = vec![Vec::new(); folds];
        for class in 0..self.num_classes() {
            let mut members = self.sequences_of_class(class);
            if members.len() < folds {
                return Err(LabelError::ClassTooSmall {
                    class: self.class_names[class].clone(),
                    size: members.len(),
                });
            }
            members.shuffle(&mut rng);
            for (i, seq) in members.into_iter().enumerate() {
                result[i % folds].push(seq);
            }
        }
        for fold in &mut result {
            fold.sort_unstable();
        }
        Ok(result)
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        let sizes: Vec<String> = self
            .class_sizes()
            .into_iter()
            .map(|(id, n)| format!("{}={}", self.class_names[id], n))
            .collect();
        format!(
            "{} sequences, {} events, {} classes ({})",
            self.num_sequences(),
            self.database.num_events(),
            self.num_classes(),
            sizes.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LabeledDatabase {
        let db = SequenceDatabase::from_str_rows(&[
            "ABAB", "ABABAB", "ABBA", "CDCD", "CDCDCD", "CDDC", "ABCD", "DCBA",
        ]);
        LabeledDatabase::new(
            db,
            vec![
                "x".into(),
                "x".into(),
                "x".into(),
                "y".into(),
                "y".into(),
                "y".into(),
                "z".into(),
                "z".into(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn labels_are_interned_in_order_of_first_appearance() {
        let data = toy();
        assert_eq!(data.class_names(), &["x", "y", "z"]);
        assert_eq!(data.num_classes(), 3);
        assert_eq!(data.class_of(0), Some(0));
        assert_eq!(data.class_of(4), Some(1));
        assert_eq!(data.label_of(7), Some("z"));
        assert_eq!(data.class_of(99), None);
        let sizes = data.class_sizes();
        assert_eq!(sizes[&0], 3);
        assert_eq!(sizes[&2], 2);
    }

    #[test]
    fn mismatched_label_count_is_rejected() {
        let db = SequenceDatabase::from_str_rows(&["AB", "CD"]);
        let err = LabeledDatabase::new(db, vec!["only-one".into()]).unwrap_err();
        assert!(matches!(
            err,
            LabelError::LengthMismatch {
                sequences: 2,
                labels: 1
            }
        ));
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn subset_preserves_labels_and_catalog() {
        let data = toy();
        let sub = data.subset(&[1, 4, 6]);
        assert_eq!(sub.num_sequences(), 3);
        assert_eq!(sub.class_ids(), &[0, 1, 2]);
        assert_eq!(
            sub.database().catalog().len(),
            data.database().catalog().len()
        );
        assert_eq!(sub.database().sequence(0).unwrap().len(), 6);
    }

    #[test]
    fn class_database_extracts_one_class() {
        let data = toy();
        let y = data.class_database(1);
        assert_eq!(y.num_sequences(), 3);
        // All sequences of class y are over C and D only.
        let a = data.database().catalog().id("A").unwrap();
        assert_eq!(y.event_occurrences(a), 0);
    }

    #[test]
    fn stratified_split_keeps_every_class_on_both_sides() {
        let data = toy();
        let (train, test) = data.stratified_split(0.5, 7).unwrap();
        assert_eq!(train.num_sequences() + test.num_sequences(), 8);
        for class in 0..data.num_classes() {
            assert!(
                !train.sequences_of_class(class).is_empty(),
                "class {class} missing from train"
            );
            assert!(
                !test.sequences_of_class(class).is_empty(),
                "class {class} missing from test"
            );
        }
    }

    #[test]
    fn stratified_split_is_deterministic_per_seed() {
        let data = toy();
        let (a_train, _) = data.stratified_split(0.6, 42).unwrap();
        let (b_train, _) = data.stratified_split(0.6, 42).unwrap();
        assert_eq!(a_train.class_ids(), b_train.class_ids());
        assert_eq!(a_train.num_sequences(), b_train.num_sequences());
    }

    #[test]
    fn invalid_split_fractions_are_rejected() {
        let data = toy();
        assert!(matches!(
            data.stratified_split(0.0, 1),
            Err(LabelError::InvalidFraction(_))
        ));
        assert!(matches!(
            data.stratified_split(1.0, 1),
            Err(LabelError::InvalidFraction(_))
        ));
    }

    #[test]
    fn split_rejects_singleton_classes() {
        let db = SequenceDatabase::from_str_rows(&["AB", "CD", "EF"]);
        let data = LabeledDatabase::new(db, vec!["a".into(), "a".into(), "b".into()]).unwrap();
        assert!(matches!(
            data.stratified_split(0.5, 1),
            Err(LabelError::ClassTooSmall { .. })
        ));
    }

    #[test]
    fn stratified_folds_cover_every_sequence_exactly_once() {
        let data = toy();
        let folds = data.stratified_folds(2, 3).unwrap();
        assert_eq!(folds.len(), 2);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
        // Each fold holds at least one sequence of every class.
        for fold in &folds {
            for class in 0..data.num_classes() {
                assert!(fold.iter().any(|&i| data.class_of(i) == Some(class)));
            }
        }
    }

    #[test]
    fn folds_reject_classes_smaller_than_the_fold_count() {
        let data = toy();
        assert!(matches!(
            data.stratified_folds(3, 1),
            Err(LabelError::ClassTooSmall { .. })
        ));
    }

    #[test]
    fn summary_mentions_every_class() {
        let data = toy();
        let summary = data.summary();
        assert!(summary.contains("8 sequences"));
        assert!(summary.contains("x=3"));
        assert!(summary.contains("z=2"));
    }
}
