//! Reference classifiers and evaluation utilities.
//!
//! These classifiers are intentionally simple — the point of the crate is
//! the *feature pipeline* (repetitive-support features plus discriminative
//! selection), not state-of-the-art learning. They are nonetheless complete,
//! deterministic, and dependency-free, which keeps the end-to-end
//! "mine → select → classify" experiments reproducible.

use std::collections::BTreeMap;

use crate::dataset::ClassId;
use crate::matrix::FeatureMatrix;

/// A classifier over dense feature vectors.
pub trait Classifier {
    /// Fits the classifier to a training matrix and its row labels.
    ///
    /// # Panics
    ///
    /// Implementations panic when `labels.len()` differs from the number of
    /// matrix rows or when the training set is empty.
    fn fit(&mut self, features: &FeatureMatrix, labels: &[ClassId]);

    /// Predicts the class of one feature vector (same column order as the
    /// training matrix).
    fn predict(&self, row: &[f64]) -> ClassId;

    /// Predicts every row of a matrix.
    fn predict_all(&self, features: &FeatureMatrix) -> Vec<ClassId> {
        features.rows().map(|row| self.predict(row)).collect()
    }
}

fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn validate_training_input(features: &FeatureMatrix, labels: &[ClassId]) {
    assert_eq!(
        features.num_rows(),
        labels.len(),
        "one label per training row is required"
    );
    assert!(features.num_rows() > 0, "training set must not be empty");
}

/// Nearest-centroid classifier: one mean feature vector per class, a row is
/// assigned to the class of the closest centroid (Euclidean distance).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NearestCentroid {
    centroids: BTreeMap<ClassId, Vec<f64>>,
}

impl NearestCentroid {
    /// Creates an unfitted classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fitted centroids, keyed by class.
    pub fn centroids(&self) -> &BTreeMap<ClassId, Vec<f64>> {
        &self.centroids
    }
}

impl Classifier for NearestCentroid {
    fn fit(&mut self, features: &FeatureMatrix, labels: &[ClassId]) {
        validate_training_input(features, labels);
        let cols = features.num_columns();
        let mut sums: BTreeMap<ClassId, (Vec<f64>, usize)> = BTreeMap::new();
        for (row, &class) in features.rows().zip(labels) {
            let entry = sums.entry(class).or_insert_with(|| (vec![0.0; cols], 0));
            for (s, &v) in entry.0.iter_mut().zip(row) {
                *s += v;
            }
            entry.1 += 1;
        }
        self.centroids = sums
            .into_iter()
            .map(|(class, (sum, count))| {
                (class, sum.into_iter().map(|s| s / count as f64).collect())
            })
            .collect();
    }

    fn predict(&self, row: &[f64]) -> ClassId {
        assert!(!self.centroids.is_empty(), "classifier is not fitted");
        self.centroids
            .iter()
            .min_by(|(_, a), (_, b)| {
                euclidean_distance(row, a)
                    .partial_cmp(&euclidean_distance(row, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(&class, _)| class)
            .expect("at least one centroid")
    }
}

/// Multinomial naive Bayes with Laplace smoothing, suited to the
/// non-negative repetition-count features produced by
/// [`crate::matrix::extract_features`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultinomialNaiveBayes {
    /// log prior per class.
    log_priors: BTreeMap<ClassId, f64>,
    /// log feature probability per class (same column order as training).
    log_likelihoods: BTreeMap<ClassId, Vec<f64>>,
    /// Laplace smoothing constant.
    alpha: f64,
}

impl MultinomialNaiveBayes {
    /// Creates an unfitted classifier with Laplace smoothing `alpha = 1`.
    pub fn new() -> Self {
        Self::with_alpha(1.0)
    }

    /// Creates an unfitted classifier with the given smoothing constant.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0, "smoothing constant must be positive");
        Self {
            log_priors: BTreeMap::new(),
            log_likelihoods: BTreeMap::new(),
            alpha,
        }
    }
}

impl Classifier for MultinomialNaiveBayes {
    fn fit(&mut self, features: &FeatureMatrix, labels: &[ClassId]) {
        validate_training_input(features, labels);
        let cols = features.num_columns();
        let n = labels.len() as f64;
        let mut class_counts: BTreeMap<ClassId, usize> = BTreeMap::new();
        let mut feature_sums: BTreeMap<ClassId, Vec<f64>> = BTreeMap::new();
        for (row, &class) in features.rows().zip(labels) {
            *class_counts.entry(class).or_insert(0) += 1;
            let sums = feature_sums.entry(class).or_insert_with(|| vec![0.0; cols]);
            for (s, &v) in sums.iter_mut().zip(row) {
                debug_assert!(v >= 0.0, "multinomial NB requires non-negative features");
                *s += v;
            }
        }
        self.log_priors = class_counts
            .iter()
            .map(|(&class, &count)| (class, (count as f64 / n).ln()))
            .collect();
        self.log_likelihoods = feature_sums
            .into_iter()
            .map(|(class, sums)| {
                let total: f64 = sums.iter().sum::<f64>() + self.alpha * cols as f64;
                let logs = sums
                    .into_iter()
                    .map(|s| ((s + self.alpha) / total).ln())
                    .collect();
                (class, logs)
            })
            .collect();
    }

    fn predict(&self, row: &[f64]) -> ClassId {
        assert!(!self.log_priors.is_empty(), "classifier is not fitted");
        self.log_priors
            .iter()
            .map(|(&class, &prior)| {
                let likelihood: f64 = self.log_likelihoods[&class]
                    .iter()
                    .zip(row)
                    .map(|(&log_p, &count)| log_p * count)
                    .sum();
                (class, prior + likelihood)
            })
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(class, _)| class)
            .expect("at least one class")
    }
}

/// k-nearest-neighbour classifier (Euclidean distance, majority vote, ties
/// broken towards the smaller class id for determinism).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnClassifier {
    k: usize,
    rows: Vec<Vec<f64>>,
    labels: Vec<ClassId>,
}

impl KnnClassifier {
    /// Creates an unfitted k-NN classifier.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        Self {
            k,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, features: &FeatureMatrix, labels: &[ClassId]) {
        validate_training_input(features, labels);
        self.rows = features.rows().map(<[f64]>::to_vec).collect();
        self.labels = labels.to_vec();
    }

    fn predict(&self, row: &[f64]) -> ClassId {
        assert!(!self.rows.is_empty(), "classifier is not fitted");
        let mut distances: Vec<(f64, ClassId)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(r, &class)| (euclidean_distance(row, r), class))
            .collect();
        distances.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        let mut votes: BTreeMap<ClassId, usize> = BTreeMap::new();
        for (_, class) in distances.into_iter().take(self.k) {
            *votes.entry(class).or_insert(0) += 1;
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(class, _)| class)
            .expect("at least one vote")
    }
}

/// The result of evaluating predictions against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// `confusion[actual][predicted]` counts.
    pub confusion: Vec<Vec<usize>>,
    /// Total number of evaluated rows.
    pub total: usize,
    /// Number of correct predictions.
    pub correct: usize,
}

impl Evaluation {
    /// Compares predictions against the true labels.
    pub fn compare(truth: &[ClassId], predicted: &[ClassId]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let num_classes = truth
            .iter()
            .chain(predicted)
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        let mut confusion = vec![vec![0usize; num_classes]; num_classes];
        let mut correct = 0;
        for (&t, &p) in truth.iter().zip(predicted) {
            confusion[t][p] += 1;
            if t == p {
                correct += 1;
            }
        }
        Self {
            confusion,
            total: truth.len(),
            correct,
        }
    }

    /// Overall accuracy in `[0, 1]` (1.0 for an empty evaluation).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Precision of one class: `TP / (TP + FP)`, or 1.0 when the class was
    /// never predicted.
    pub fn precision(&self, class: ClassId) -> f64 {
        let predicted: usize = self.confusion.iter().map(|row| row[class]).sum();
        if predicted == 0 {
            return 1.0;
        }
        self.confusion[class][class] as f64 / predicted as f64
    }

    /// Recall of one class: `TP / (TP + FN)`, or 1.0 when the class never
    /// occurs in the truth.
    pub fn recall(&self, class: ClassId) -> f64 {
        let actual: usize = self.confusion[class].iter().sum();
        if actual == 0 {
            return 1.0;
        }
        self.confusion[class][class] as f64 / actual as f64
    }

    /// F1 score of one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: ClassId) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 across all classes.
    pub fn macro_f1(&self) -> f64 {
        let classes = self.confusion.len();
        if classes == 0 {
            return 1.0;
        }
        (0..classes).map(|c| self.f1(c)).sum::<f64>() / classes as f64
    }
}

/// Fits `classifier` on `(train, train_labels)` and evaluates it on
/// `(test, test_labels)`.
pub fn train_and_evaluate<C: Classifier>(
    classifier: &mut C,
    train: &FeatureMatrix,
    train_labels: &[ClassId],
    test: &FeatureMatrix,
    test_labels: &[ClassId],
) -> Evaluation {
    classifier.fit(train, train_labels);
    let predictions = classifier.predict_all(test);
    Evaluation::compare(test_labels, &predictions)
}

/// k-fold cross validation over a precomputed feature matrix.
///
/// `folds[i]` holds the row indices of fold `i` (e.g. from
/// [`crate::dataset::LabeledDatabase::stratified_folds`]); each fold is used
/// once as the test set while the remaining folds train a fresh classifier
/// created by `make_classifier`.
pub fn cross_validate<C: Classifier>(
    matrix: &FeatureMatrix,
    labels: &[ClassId],
    folds: &[Vec<usize>],
    mut make_classifier: impl FnMut() -> C,
) -> Vec<Evaluation> {
    folds
        .iter()
        .enumerate()
        .map(|(i, test_rows)| {
            let train_rows: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            let train = matrix.select_rows(&train_rows);
            let test = matrix.select_rows(test_rows);
            let train_labels: Vec<ClassId> = train_rows.iter().map(|&r| labels[r]).collect();
            let test_labels: Vec<ClassId> = test_rows.iter().map(|&r| labels[r]).collect();
            let mut classifier = make_classifier();
            train_and_evaluate(&mut classifier, &train, &train_labels, &test, &test_labels)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgs_core::Pattern;

    /// A tiny linearly separable dataset: class 0 has large first feature,
    /// class 1 has large second feature.
    fn separable() -> (FeatureMatrix, Vec<ClassId>) {
        let patterns = vec![Pattern::empty(), Pattern::empty()];
        let values = vec![
            5.0, 0.0, //
            4.0, 1.0, //
            5.0, 1.0, //
            0.0, 5.0, //
            1.0, 4.0, //
            0.0, 4.0, //
        ];
        (
            FeatureMatrix::from_parts(patterns, values, 6),
            vec![0, 0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn nearest_centroid_learns_a_separable_problem() {
        let (matrix, labels) = separable();
        let mut nc = NearestCentroid::new();
        nc.fit(&matrix, &labels);
        assert_eq!(nc.centroids().len(), 2);
        assert_eq!(nc.predict(&[6.0, 0.0]), 0);
        assert_eq!(nc.predict(&[0.0, 6.0]), 1);
        let eval = Evaluation::compare(&labels, &nc.predict_all(&matrix));
        assert_eq!(eval.accuracy(), 1.0);
    }

    #[test]
    fn naive_bayes_learns_a_separable_problem() {
        let (matrix, labels) = separable();
        let mut nb = MultinomialNaiveBayes::new();
        nb.fit(&matrix, &labels);
        assert_eq!(nb.predict(&[3.0, 0.0]), 0);
        assert_eq!(nb.predict(&[0.0, 3.0]), 1);
        let eval = Evaluation::compare(&labels, &nb.predict_all(&matrix));
        assert_eq!(eval.accuracy(), 1.0);
    }

    #[test]
    fn knn_learns_a_separable_problem_for_various_k() {
        let (matrix, labels) = separable();
        for k in [1, 3, 5] {
            let mut knn = KnnClassifier::new(k);
            knn.fit(&matrix, &labels);
            assert_eq!(knn.predict(&[5.0, 0.5]), 0, "k = {k}");
            assert_eq!(knn.predict(&[0.5, 5.0]), 1, "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn knn_rejects_k_zero() {
        KnnClassifier::new(0);
    }

    #[test]
    #[should_panic(expected = "not fitted")]
    fn predicting_before_fitting_panics() {
        NearestCentroid::new().predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "one label per training row")]
    fn fit_rejects_mismatched_labels() {
        let (matrix, _) = separable();
        NearestCentroid::new().fit(&matrix, &[0, 1]);
    }

    #[test]
    fn evaluation_metrics_on_a_known_confusion_matrix() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let predicted = vec![0, 0, 1, 1, 1, 0];
        let eval = Evaluation::compare(&truth, &predicted);
        assert_eq!(eval.confusion, vec![vec![2, 1], vec![1, 2]]);
        assert!((eval.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((eval.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((eval.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((eval.f1(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((eval.macro_f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evaluation_edge_cases() {
        let eval = Evaluation::compare(&[], &[]);
        assert_eq!(eval.accuracy(), 1.0);
        assert_eq!(eval.macro_f1(), 1.0);
        // A class that never occurs and is never predicted gets
        // precision = recall = 1 by convention.
        let eval = Evaluation::compare(&[0, 2], &[0, 2]);
        assert_eq!(eval.precision(1), 1.0);
        assert_eq!(eval.recall(1), 1.0);
    }

    #[test]
    fn cross_validation_runs_every_fold_once() {
        let (matrix, labels) = separable();
        let folds = vec![vec![0, 3], vec![1, 4], vec![2, 5]];
        let evals = cross_validate(&matrix, &labels, &folds, NearestCentroid::new);
        assert_eq!(evals.len(), 3);
        let total: usize = evals.iter().map(|e| e.total).sum();
        assert_eq!(total, 6);
        for eval in &evals {
            assert_eq!(eval.accuracy(), 1.0);
        }
    }

    #[test]
    fn train_and_evaluate_reports_test_performance_only() {
        let (matrix, _labels) = separable();
        let train = matrix.select_rows(&[0, 1, 3, 4]);
        let test = matrix.select_rows(&[2, 5]);
        let mut nb = MultinomialNaiveBayes::with_alpha(0.5);
        let eval = train_and_evaluate(&mut nb, &train, &[0, 0, 1, 1], &test, &[0, 1]);
        assert_eq!(eval.total, 2);
        assert_eq!(eval.accuracy(), 1.0);
    }
}
