//! Server assembly: boot, accept loop, worker pool, graceful shutdown.
//!
//! One process holds one [`PreparedDb`] behind an [`Arc`] and serves every
//! request from it. The acceptor thread owns the listener and applies
//! admission control inline: a connection either enters the bounded queue
//! or is answered `429` right there — the worker pool never sees load it
//! cannot absorb. Workers block on the queue, handle one connection at a
//! time, and drain whatever is queued when shutdown closes the queue.

use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use rgs_core::PreparedDb;
use seqdb::snapshot::verify;
use seqdb::DatabaseStats;

use crate::admission::{AdmissionQueue, Admit};
use crate::cache::ResultCache;
use crate::http;
use crate::metrics::{Histogram, ServeCounters};
use crate::protocol;
use crate::worker;

/// Tunables for one server instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads mining concurrently.
    pub workers: usize,
    /// Connections allowed to wait for a worker before shedding starts.
    pub queue_capacity: usize,
    /// Result-cache entries ([`ResultCache`]); 0 disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to requests that do not carry `timeout_ms`.
    /// `None` means no default deadline.
    pub default_timeout_ms: Option<u64>,
    /// Socket read timeout while parsing a request, milliseconds.
    pub read_timeout_ms: u64,
    /// Value of the `Retry-After` header on shed (`429`) responses.
    pub retry_after_seconds: u32,
    /// Largest mining batch one worker drains per dequeue: everything
    /// queued at that moment (up to this cap) is mined in one shared DFS
    /// pass via [`PreparedDb::batch_with_deadlines`]. 1 disables batching.
    ///
    /// [`PreparedDb::batch_with_deadlines`]: rgs_core::PreparedDb::batch_with_deadlines
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            queue_capacity: 64,
            cache_capacity: 128,
            default_timeout_ms: None,
            read_timeout_ms: 10_000,
            retry_after_seconds: 1,
            max_batch: 16,
        }
    }
}

/// Everything a worker needs to answer a request, shared via [`Arc`].
#[derive(Debug)]
pub struct ServeContext {
    /// The one corpus this process serves.
    pub prepared: Arc<PreparedDb>,
    /// The admission queue between acceptor and workers.
    pub queue: AdmissionQueue,
    /// The mining result cache.
    pub cache: ResultCache,
    /// End-to-end `/mine` latency (read → response written).
    pub latency: Histogram,
    /// Time connections spend queued before a worker picks them up.
    pub queue_wait: Histogram,
    /// Monotonic request counters.
    pub counters: ServeCounters,
    /// The configuration the server was started with.
    pub config: ServeConfig,
    /// When the server started (for `/healthz` uptime).
    pub started: Instant,
    /// Corpus statistics, computed once at boot for `/stats`.
    pub db_stats: DatabaseStats,
}

/// A running server: the listener thread, the worker pool, and the shared
/// context. Dropping without [`Server::shutdown`] detaches the threads;
/// call `shutdown` for a graceful drain.
#[derive(Debug)]
pub struct Server {
    context: Arc<ServeContext>,
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and worker threads.
    pub fn start(
        prepared: Arc<PreparedDb>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let db_stats = prepared.stats();
        let context = Arc::new(ServeContext {
            prepared,
            queue: AdmissionQueue::new(config.queue_capacity),
            cache: ResultCache::new(config.cache_capacity),
            latency: Histogram::default(),
            queue_wait: Histogram::default(),
            counters: ServeCounters::default(),
            config,
            started: Instant::now(),
            db_stats,
        });
        let stop = Arc::new(AtomicBool::new(false));

        let worker_handles = (0..workers)
            .map(|i| {
                let ctx = Arc::clone(&context);
                std::thread::Builder::new()
                    .name(format!("rgs-serve-worker-{i}"))
                    .spawn(move || {
                        let max_batch = ctx.config.max_batch.max(1);
                        while let Some(jobs) = ctx.queue.pop_batch(max_batch) {
                            worker::handle_batch(&ctx, jobs);
                        }
                    })
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let acceptor = {
            let ctx = Arc::clone(&context);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("rgs-serve-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &ctx, &stop))?
        };

        Ok(Server {
            context,
            local_addr,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The shared context — exposed so tests and the load generator can
    /// read counters without going through `/stats`.
    pub fn context(&self) -> &Arc<ServeContext> {
        &self.context
    }

    /// Stops accepting, drains queued requests, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // accept() has no timeout; poke the listener so the acceptor wakes
        // up, observes the flag, and exits.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Closing the queue wakes idle workers; busy ones finish their
        // in-flight request, drain what is queued, then exit.
        self.context.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<ServeContext>, stop: &AtomicBool) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            // This may be the shutdown poke itself; either way, stop.
            refuse(
                stream,
                ctx,
                503,
                "Service Unavailable",
                "server is shutting down",
            );
            return;
        }
        ctx.counters.accepted.fetch_add(1, Ordering::Relaxed);
        match ctx.queue.try_admit(stream) {
            Admit::Queued(_) => {}
            Admit::Full(stream) => {
                ctx.counters.shed.fetch_add(1, Ordering::Relaxed);
                refuse(
                    stream,
                    ctx,
                    429,
                    "Too Many Requests",
                    "admission queue is full; retry shortly",
                );
            }
            Admit::Closed(stream) => {
                refuse(
                    stream,
                    ctx,
                    503,
                    "Service Unavailable",
                    "server is shutting down",
                );
                return;
            }
        }
    }
}

/// Writes a one-off refusal on a connection that never reached a worker.
fn refuse(
    mut stream: TcpStream,
    ctx: &Arc<ServeContext>,
    status: u16,
    reason: &str,
    message: &str,
) {
    let retry = ctx.config.retry_after_seconds.to_string();
    let headers: &[(&str, &str)] = if status == 429 {
        &[("Retry-After", retry.as_str())]
    } else {
        &[]
    };
    let _ = http::write_response(
        &mut stream,
        status,
        reason,
        headers,
        &protocol::error_body(status, message),
    );
    // The request bytes were never read off this connection, so dropping
    // the stream now would send RST and could destroy the buffered
    // response before the client reads it. Half-close the write side and
    // drain what the client already sent, bounded by a short timeout.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let mut sink = [0u8; 512];
    while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
}

/// Opens and verifies a snapshot image for serving.
///
/// The image is checked with [`seqdb::snapshot::verify`] first — a server
/// must refuse to boot on a corrupt or truncated image rather than crash
/// on request N — then opened zero-copy into a [`PreparedDb`].
pub fn boot_snapshot(path: &std::path::Path) -> Result<Arc<PreparedDb>, String> {
    let report = verify::verify_file(path)
        .map_err(|err| format!("cannot read snapshot {}: {err}", path.display()))?;
    if !report.is_clean() {
        let mut lines = format!(
            "snapshot {} failed verification ({} violations):",
            path.display(),
            report.violations.len()
        );
        for violation in &report.violations {
            lines.push_str(&format!("\n  - {violation}"));
        }
        return Err(lines);
    }
    let prepared = PreparedDb::open_snapshot(path)
        .map_err(|err| format!("cannot open snapshot {}: {err}", path.display()))?;
    Ok(Arc::new(prepared))
}
