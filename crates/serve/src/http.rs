//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The workspace is offline, so there is no HTTP crate to lean on — and the
//! service needs only a sliver of the protocol: one request per connection
//! (`Connection: close` on every response), `Content-Length` bodies, and a
//! handful of response codes. Everything else is rejected with a
//! descriptive status instead of being half-implemented: no chunked
//! transfer encoding, no keep-alive, no continuation lines.
//!
//! Hard limits keep a hostile or confused client from holding a worker:
//! headers are capped at [`MAX_HEAD_BYTES`], bodies at [`MAX_BODY_BYTES`],
//! and the caller sets a socket read timeout before parsing.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers accepted before `431`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum request body bytes accepted before `413`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request: the method, the request target, and the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased by the client per spec (`GET`, `POST`).
    pub method: String,
    /// The request target, e.g. `/mine` (query strings are kept verbatim).
    pub path: String,
    /// The decoded UTF-8 body (empty when the request carries none).
    pub body: String,
}

/// Why a request could not be read. Each variant maps to one response
/// status via [`ReadError::status`].
#[derive(Debug)]
pub enum ReadError {
    /// The socket failed or timed out mid-request.
    Io(io::Error),
    /// The bytes are not a well-formed HTTP/1.1 request.
    BadRequest(String),
    /// Headers exceeded [`MAX_HEAD_BYTES`].
    HeadersTooLarge,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The request uses a transfer mechanism this server does not speak.
    Unsupported(String),
}

impl ReadError {
    /// The `(status, reason, detail)` triple the error should be answered
    /// with.
    pub fn status(&self) -> (u16, &'static str, String) {
        match self {
            ReadError::Io(err) if err.kind() == io::ErrorKind::WouldBlock => (
                408,
                "Request Timeout",
                "connection idle past the read timeout".to_owned(),
            ),
            ReadError::Io(err) if err.kind() == io::ErrorKind::TimedOut => (
                408,
                "Request Timeout",
                "connection idle past the read timeout".to_owned(),
            ),
            ReadError::Io(err) => (400, "Bad Request", format!("read failed: {err}")),
            ReadError::BadRequest(detail) => (400, "Bad Request", detail.clone()),
            ReadError::HeadersTooLarge => (
                431,
                "Request Header Fields Too Large",
                format!("headers exceed {MAX_HEAD_BYTES} bytes"),
            ),
            ReadError::BodyTooLarge => (
                413,
                "Content Too Large",
                format!("body exceeds {MAX_BODY_BYTES} bytes"),
            ),
            ReadError::Unsupported(detail) => (501, "Not Implemented", detail.clone()),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(err: io::Error) -> Self {
        ReadError::Io(err)
    }
}

/// Reads and parses one request from `stream`.
///
/// The stream should already carry a read timeout (the worker sets one), so
/// a stalled client surfaces as a `WouldBlock`/`TimedOut` I/O error rather
/// than a hung thread.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let (head, mut leftover) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::BadRequest("empty request".to_owned()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::BadRequest("missing method".to_owned()))?;
    let path = parts
        .next()
        .filter(|p| !p.is_empty())
        .ok_or_else(|| ReadError::BadRequest("missing request target".to_owned()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing HTTP version".to_owned()))?;
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(ReadError::Unsupported(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest(format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    ReadError::BadRequest(format!("invalid Content-Length {value:?}"))
                })?;
            }
            "transfer-encoding" => {
                return Err(ReadError::Unsupported(
                    "chunked transfer encoding is not supported; send Content-Length".to_owned(),
                ));
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::BodyTooLarge);
    }

    // The head read may have pulled in a prefix of the body; take the rest
    // off the wire exactly.
    if leftover.len() > content_length {
        return Err(ReadError::BadRequest(
            "more body bytes than Content-Length declares".to_owned(),
        ));
    }
    let mut body = Vec::with_capacity(content_length);
    body.append(&mut leftover);
    let missing = content_length - body.len();
    if missing > 0 {
        let mut rest = vec![0u8; missing];
        stream.read_exact(&mut rest)?;
        body.extend_from_slice(&rest);
    }
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::BadRequest("body is not valid UTF-8".to_owned()))?;

    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
    })
}

/// Reads until the `\r\n\r\n` head terminator; returns the head text and
/// any body bytes that came along in the final read.
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_terminator(&buf) {
            if end > MAX_HEAD_BYTES {
                return Err(ReadError::HeadersTooLarge);
            }
            let leftover = buf.split_off(end + 4);
            buf.truncate(end);
            let head = String::from_utf8(buf)
                .map_err(|_| ReadError::BadRequest("headers are not valid UTF-8".to_owned()))?;
            return Ok((head, leftover));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::HeadersTooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::BadRequest(
                "connection closed before the headers ended".to_owned(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one complete response and flushes it. Every response carries
/// `Connection: close`; the caller drops the stream afterwards.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut out = String::with_capacity(body.len() + 256);
    out.push_str(&format!("HTTP/1.1 {status} {reason}\r\n"));
    out.push_str("Content-Type: application/json\r\n");
    out.push_str(&format!("Content-Length: {}\r\n", body.len()));
    out.push_str("Connection: close\r\n");
    for (name, value) in extra_headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `read_request` against raw bytes pushed through a real socket
    /// pair.
    fn parse_bytes(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).expect("connect");
            client.write_all(&raw).expect("write");
            // Keep the connection open briefly so a short read sees EOF
            // only when the bytes genuinely ran out.
            client.shutdown(std::net::Shutdown::Write).ok();
        });
        let (mut server, _) = listener.accept().expect("accept");
        server
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .expect("timeout");
        let result = read_request(&mut server);
        writer.join().expect("writer");
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_bytes(
            b"POST /mine HTTP/1.1\r\nHost: x\r\nContent-Length: 13\r\n\r\n{\"min_sup\":2}",
        )
        .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/mine");
        assert_eq!(req.body, "{\"min_sup\":2}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_bytes(b"GET /stats HTTP/1.1\r\n\r\n").expect("valid request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_malformed_requests_with_the_right_status() {
        let cases: [(&[u8], u16); 5] = [
            (b"NONSENSE\r\n\r\n", 400),
            (b"GET /x HTTP/2\r\n\r\n", 501),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
            (b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413),
        ];
        for (raw, expected) in cases {
            let err = parse_bytes(raw).expect_err("must fail");
            assert_eq!(err.status().0, expected, "{raw:?}");
        }
    }

    #[test]
    fn oversized_headers_are_cut_off() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES)).as_bytes());
        let err = parse_bytes(&raw).expect_err("too large");
        assert_eq!(err.status().0, 431);
    }

    #[test]
    fn response_writer_emits_a_complete_message() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).expect("connect");
            let mut text = String::new();
            client.read_to_string(&mut text).expect("read");
            text
        });
        let (mut server, _) = listener.accept().expect("accept");
        write_response(
            &mut server,
            429,
            "Too Many Requests",
            &[("Retry-After", "1")],
            "{}",
        )
        .expect("write");
        drop(server);
        let text = reader.join().expect("reader");
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
