//! The request worker: one connection in, one response out.
//!
//! Lifecycle of a `/mine` request: read → parse → canonicalize → cache
//! probe → mine (with an optional deadline sink) → respond, recording
//! latency and counters along the way. Cached responses skip the mining
//! step entirely and are flagged `"cached": true` in the envelope.
//!
//! This module is on the xtask audit hot-path list: no panics, no
//! `unwrap`/`expect`, no bare indexing. Every I/O failure on the response
//! path is swallowed — if the client hung up there is nobody left to tell.

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rgs_core::{canonical_key, CollectSink, DeadlineSink, MinedPattern, Miner, MiningReport};

use crate::admission::Job;
use crate::cache::{CachedResult, ResultCache};
use crate::http::{self, Request};
use crate::metrics::HistogramSnapshot;
use crate::protocol;
use crate::server::ServeContext;

/// Handles one admitted connection from read to response.
pub fn handle(ctx: &ServeContext, job: Job) {
    let Job {
        mut stream,
        accepted_at,
    } = job;
    ctx.queue_wait.record(accepted_at.elapsed());
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        ctx.config.read_timeout_ms.max(1),
    )));

    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(err) => {
            let (status, reason, detail) = err.status();
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, status, reason, &detail);
            return;
        }
    };
    route(ctx, &mut stream, &request);
}

fn route(ctx: &ServeContext, stream: &mut TcpStream, request: &Request) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = http::write_response(stream, 200, "OK", &[], &health_body(ctx));
        }
        ("GET", "/stats") => {
            let _ = http::write_response(stream, 200, "OK", &[], &stats_body(ctx));
        }
        ("POST", "/mine") => mine(ctx, stream, &request.body),
        ("GET", "/mine") => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 405, "Method Not Allowed", "use POST /mine");
        }
        (_, path) => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(
                stream,
                404,
                "Not Found",
                &format!("unknown route {path:?}; try POST /mine, GET /stats, GET /healthz"),
            );
        }
    }
}

fn mine(ctx: &ServeContext, stream: &mut TcpStream, body: &str) {
    let started = Instant::now();
    let parsed = match protocol::parse_mine_request(body) {
        Ok(parsed) => parsed,
        Err(err) => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, err.status, "Bad Request", &err.message);
            return;
        }
    };

    let canonical = canonical_key(&parsed.request);
    let key = ResultCache::key(ctx.prepared.image_checksum(), &canonical);
    if let Some(hit) = ctx.cache.get(&key) {
        ctx.counters.cache_served.fetch_add(1, Ordering::Relaxed);
        ctx.counters.mined.fetch_add(1, Ordering::Relaxed);
        let elapsed = started.elapsed();
        let envelope = protocol::mine_response_body(
            &hit.patterns_json,
            hit.count,
            hit.truncated,
            false,
            true,
            elapsed.as_secs_f64() * 1000.0,
        );
        let _ = http::write_response(stream, 200, "OK", &[], &envelope);
        ctx.latency.record(elapsed);
        return;
    }

    let timeout_ms = parsed.timeout_ms.or(ctx.config.default_timeout_ms);
    let miner = Miner::from_shared(Arc::clone(&ctx.prepared)).with_request(parsed.request);
    let (patterns, report) = run(miner, timeout_ms);

    let deadline_exceeded = report.cancelled;
    if deadline_exceeded {
        ctx.counters
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
    }
    let patterns_json = protocol::render_patterns(&patterns, ctx.prepared.catalog());
    let truncated = report.truncated;
    // A deadline-cut run is a partial answer; caching it would serve the
    // partial result to future callers who gave the server more time.
    if !deadline_exceeded {
        ctx.cache.insert(
            key,
            CachedResult {
                patterns_json: patterns_json.clone(),
                count: patterns.len(),
                truncated,
            },
        );
    }
    ctx.counters.mined.fetch_add(1, Ordering::Relaxed);
    let elapsed = started.elapsed();
    let envelope = protocol::mine_response_body(
        &patterns_json,
        patterns.len(),
        truncated,
        deadline_exceeded,
        false,
        elapsed.as_secs_f64() * 1000.0,
    );
    let _ = http::write_response(stream, 200, "OK", &[], &envelope);
    ctx.latency.record(elapsed);
}

/// Runs the miner, wrapping the collector in a [`DeadlineSink`] when a
/// timeout applies. The report's `cancelled` flag is the deadline signal.
fn run(miner: Miner<'static>, timeout_ms: Option<u64>) -> (Vec<MinedPattern>, MiningReport) {
    match timeout_ms {
        Some(ms) => {
            let deadline = Instant::now() + Duration::from_millis(ms);
            let mut sink = DeadlineSink::new(CollectSink::new(), deadline);
            let report = miner.run_with_sink(&mut sink);
            (sink.into_inner().into_patterns(), report)
        }
        None => {
            let mut sink = CollectSink::new();
            let report = miner.run_with_sink(&mut sink);
            (sink.into_patterns(), report)
        }
    }
}

fn respond_error(stream: &mut TcpStream, status: u16, reason: &str, message: &str) {
    let _ = http::write_response(
        stream,
        status,
        reason,
        &[],
        &protocol::error_body(status, message),
    );
}

fn health_body(ctx: &ServeContext) -> String {
    format!(
        "{{\"status\":\"ok\",\"uptime_s\":{:.1},\"workers\":{},\"snapshot_checksum\":{}}}",
        ctx.started.elapsed().as_secs_f64(),
        ctx.config.workers.max(1),
        checksum_json(ctx),
    )
}

fn checksum_json(ctx: &ServeContext) -> String {
    match ctx.prepared.image_checksum() {
        Some(sum) => format!("\"{sum:016x}\""),
        None => "null".to_owned(),
    }
}

fn histogram_json(snap: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_ms\":{:.3},\"p50_ms\":{:.3},\"p90_ms\":{:.3},\
         \"p99_ms\":{:.3},\"max_ms\":{:.3}}}",
        snap.count, snap.mean_ms, snap.p50_ms, snap.p90_ms, snap.p99_ms, snap.max_ms
    )
}

/// Builds the `/stats` document: counters, queue, cache, latency
/// histograms, snapshot identity, and the corpus-level [`DatabaseStats`]
/// computed once at boot.
///
/// [`DatabaseStats`]: seqdb::DatabaseStats
fn stats_body(ctx: &ServeContext) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');

    out.push_str("\"counters\":{");
    for (i, (name, value)) in ctx.counters.load().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("},");

    out.push_str(&format!(
        "\"queue\":{{\"depth\":{},\"capacity\":{}}},",
        ctx.queue.depth(),
        ctx.queue.capacity()
    ));

    let cache = ctx.cache.stats();
    out.push_str(&format!(
        "\"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
         \"len\":{},\"capacity\":{}}},",
        cache.hits, cache.misses, cache.insertions, cache.evictions, cache.len, cache.capacity
    ));

    out.push_str(&format!(
        "\"latency\":{},",
        histogram_json(&ctx.latency.snapshot())
    ));
    out.push_str(&format!(
        "\"queue_wait\":{},",
        histogram_json(&ctx.queue_wait.snapshot())
    ));

    out.push_str(&format!(
        "\"snapshot\":{{\"checksum\":{},\"version\":{}}},",
        checksum_json(ctx),
        match ctx.prepared.image_version() {
            Some(version) => version.to_string(),
            None => "null".to_owned(),
        }
    ));

    let db = &ctx.db_stats;
    out.push_str(&format!(
        "\"database\":{{\"num_sequences\":{},\"num_events\":{},\"total_length\":{},\
         \"min_length\":{},\"max_length\":{},\"avg_length\":{:.3},\"store_bytes\":{},\
         \"num_shards\":{}}}",
        db.num_sequences,
        db.num_events,
        db.total_length,
        db.min_length,
        db.max_length,
        db.avg_length,
        db.store_bytes,
        db.num_shards
    ));

    out.push('}');
    out
}
