//! The request worker: a drained batch of connections in, one response out
//! on each.
//!
//! Lifecycle of a `/mine` request: read → parse → canonicalize → cache
//! probe → join the dequeue's mining batch → respond, recording latency
//! and counters along the way. Cached responses, protocol errors, and
//! non-mining routes are answered before the batch forms; the remaining
//! cache misses are mined together in **one** shared DFS pass
//! ([`PreparedDb::batch_with_deadlines`]), whose per-request results are
//! pinned bit-identical to solo runs — so coalescing is invisible on the
//! wire. Each member carries its own deadline; an expired member comes
//! back truncated without poisoning its siblings.
//!
//! This module is on the xtask audit hot-path list: no panics, no
//! `unwrap`/`expect`, no bare indexing. Every I/O failure on the response
//! path is swallowed — if the client hung up there is nobody left to tell.
//!
//! [`PreparedDb::batch_with_deadlines`]: rgs_core::PreparedDb::batch_with_deadlines

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use rgs_core::{canonical_key, MiningRequest};

use crate::admission::Job;
use crate::cache::{CachedResult, ResultCache};
use crate::http::{self, Request};
use crate::metrics::HistogramSnapshot;
use crate::protocol;
use crate::server::ServeContext;

/// A `/mine` cache miss waiting for its batch: the connection plus
/// everything needed to mine and respond.
struct PendingMine {
    stream: TcpStream,
    request: MiningRequest,
    cache_key: String,
    started: Instant,
    deadline: Option<Instant>,
}

/// Handles one admitted connection from read to response (a batch of one).
pub fn handle(ctx: &ServeContext, job: Job) {
    handle_batch(ctx, vec![job]);
}

/// Handles one drained batch of admitted connections: answers everything
/// that needs no mining, then mines the remaining requests in one shared
/// DFS pass and responds to each.
pub fn handle_batch(ctx: &ServeContext, jobs: Vec<Job>) {
    let mut pending: Vec<PendingMine> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if let Some(mine) = receive(ctx, job) {
            pending.push(mine);
        }
    }
    if pending.is_empty() {
        return;
    }

    let batch_size = pending.len() as u64;
    ctx.counters.batches.fetch_add(1, Ordering::Relaxed);
    ctx.counters
        .batched_requests
        .fetch_add(batch_size, Ordering::Relaxed);
    ctx.counters
        .max_batch_size
        .fetch_max(batch_size, Ordering::Relaxed);

    let requests: Vec<MiningRequest> = pending.iter().map(|p| p.request.clone()).collect();
    let deadlines: Vec<Option<Instant>> = pending.iter().map(|p| p.deadline).collect();
    let results = ctx.prepared.batch_with_deadlines(&requests, &deadlines);
    for (mine, result) in pending.into_iter().zip(results) {
        respond_mined(ctx, mine, &result);
    }
}

/// Reads and routes one connection. Returns the pending mining work when
/// the request is a `/mine` cache miss; everything else is answered here.
fn receive(ctx: &ServeContext, job: Job) -> Option<PendingMine> {
    let Job {
        mut stream,
        accepted_at,
    } = job;
    ctx.queue_wait.record(accepted_at.elapsed());
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        ctx.config.read_timeout_ms.max(1),
    )));

    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(err) => {
            let (status, reason, detail) = err.status();
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, status, reason, &detail);
            return None;
        }
    };
    route(ctx, stream, &request)
}

fn route(ctx: &ServeContext, mut stream: TcpStream, request: &Request) -> Option<PendingMine> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = http::write_response(&mut stream, 200, "OK", &[], &health_body(ctx));
        }
        ("GET", "/stats") => {
            let _ = http::write_response(&mut stream, 200, "OK", &[], &stats_body(ctx));
        }
        ("POST", "/mine") => return mine(ctx, stream, &request.body),
        ("GET", "/mine") => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, 405, "Method Not Allowed", "use POST /mine");
        }
        (_, path) => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(
                &mut stream,
                404,
                "Not Found",
                &format!("unknown route {path:?}; try POST /mine, GET /stats, GET /healthz"),
            );
        }
    }
    None
}

/// Parses a `/mine` body and probes the cache. A hit (or error) is
/// answered right away; a miss joins the worker's current mining batch.
fn mine(ctx: &ServeContext, mut stream: TcpStream, body: &str) -> Option<PendingMine> {
    let started = Instant::now();
    let parsed = match protocol::parse_mine_request(body) {
        Ok(parsed) => parsed,
        Err(err) => {
            ctx.counters.errors.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, err.status, "Bad Request", &err.message);
            return None;
        }
    };

    let canonical = canonical_key(&parsed.request);
    let cache_key = ResultCache::key(ctx.prepared.image_checksum(), &canonical);
    if let Some(hit) = ctx.cache.get(&cache_key) {
        ctx.counters.cache_served.fetch_add(1, Ordering::Relaxed);
        ctx.counters.mined.fetch_add(1, Ordering::Relaxed);
        let elapsed = started.elapsed();
        let envelope = protocol::mine_response_body(
            &hit.patterns_json,
            hit.count,
            hit.truncated,
            false,
            true,
            elapsed.as_secs_f64() * 1000.0,
        );
        let _ = http::write_response(&mut stream, 200, "OK", &[], &envelope);
        ctx.latency.record(elapsed);
        return None;
    }

    let deadline = parsed
        .timeout_ms
        .or(ctx.config.default_timeout_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    Some(PendingMine {
        stream,
        request: parsed.request,
        cache_key,
        started,
        deadline,
    })
}

/// Responds to one batch member with its (solo-identical) mining result
/// and caches it when its deadline did not cut it short.
fn respond_mined(ctx: &ServeContext, mine: PendingMine, result: &rgs_core::MiningResult) {
    let PendingMine {
        mut stream,
        cache_key,
        started,
        ..
    } = mine;
    let deadline_exceeded = result.cancelled;
    if deadline_exceeded {
        ctx.counters
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
    }
    let patterns = &result.outcome.patterns;
    let patterns_json = protocol::render_patterns(patterns, ctx.prepared.catalog());
    let truncated = result.outcome.truncated;
    // A deadline-cut run is a partial answer; caching it would serve the
    // partial result to future callers who gave the server more time.
    if !deadline_exceeded {
        ctx.cache.insert(
            cache_key,
            CachedResult {
                patterns_json: patterns_json.clone(),
                count: patterns.len(),
                truncated,
            },
        );
    }
    ctx.counters.mined.fetch_add(1, Ordering::Relaxed);
    let elapsed = started.elapsed();
    let envelope = protocol::mine_response_body(
        &patterns_json,
        patterns.len(),
        truncated,
        deadline_exceeded,
        false,
        elapsed.as_secs_f64() * 1000.0,
    );
    let _ = http::write_response(&mut stream, 200, "OK", &[], &envelope);
    ctx.latency.record(elapsed);
}

fn respond_error(stream: &mut TcpStream, status: u16, reason: &str, message: &str) {
    let _ = http::write_response(
        stream,
        status,
        reason,
        &[],
        &protocol::error_body(status, message),
    );
}

fn health_body(ctx: &ServeContext) -> String {
    format!(
        "{{\"status\":\"ok\",\"uptime_s\":{:.1},\"workers\":{},\"snapshot_checksum\":{}}}",
        ctx.started.elapsed().as_secs_f64(),
        ctx.config.workers.max(1),
        checksum_json(ctx),
    )
}

fn checksum_json(ctx: &ServeContext) -> String {
    match ctx.prepared.image_checksum() {
        Some(sum) => format!("\"{sum:016x}\""),
        None => "null".to_owned(),
    }
}

fn histogram_json(snap: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_ms\":{:.3},\"p50_ms\":{:.3},\"p90_ms\":{:.3},\
         \"p99_ms\":{:.3},\"max_ms\":{:.3}}}",
        snap.count, snap.mean_ms, snap.p50_ms, snap.p90_ms, snap.p99_ms, snap.max_ms
    )
}

/// Builds the `/stats` document: counters, queue, cache, latency
/// histograms, snapshot identity, and the corpus-level [`DatabaseStats`]
/// computed once at boot.
///
/// [`DatabaseStats`]: seqdb::DatabaseStats
fn stats_body(ctx: &ServeContext) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');

    out.push_str("\"counters\":{");
    for (i, (name, value)) in ctx.counters.load().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("},");

    out.push_str(&format!(
        "\"queue\":{{\"depth\":{},\"capacity\":{}}},",
        ctx.queue.depth(),
        ctx.queue.capacity()
    ));

    let cache = ctx.cache.stats();
    out.push_str(&format!(
        "\"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
         \"len\":{},\"capacity\":{}}},",
        cache.hits, cache.misses, cache.insertions, cache.evictions, cache.len, cache.capacity
    ));

    out.push_str(&format!(
        "\"latency\":{},",
        histogram_json(&ctx.latency.snapshot())
    ));
    out.push_str(&format!(
        "\"queue_wait\":{},",
        histogram_json(&ctx.queue_wait.snapshot())
    ));

    out.push_str(&format!(
        "\"snapshot\":{{\"checksum\":{},\"version\":{}}},",
        checksum_json(ctx),
        match ctx.prepared.image_version() {
            Some(version) => version.to_string(),
            None => "null".to_owned(),
        }
    ));

    // Which growth-kernel backend every mining worker in this process
    // dispatches to (runtime CPU detection, overridable via
    // RGS_FORCE_SCALAR) — operators comparing throughput across machines
    // need this next to the latency histograms, not in a CPU spec sheet.
    out.push_str(&format!(
        "\"kernel\":{{\"backend\":\"{}\",\"cpu_features\":\"{}\"}},",
        seqdb::simd::active_backend().name(),
        seqdb::simd::detected_features()
    ));

    let db = &ctx.db_stats;
    out.push_str(&format!(
        "\"database\":{{\"num_sequences\":{},\"num_events\":{},\"total_length\":{},\
         \"min_length\":{},\"max_length\":{},\"avg_length\":{:.3},\"store_bytes\":{},\
         \"num_shards\":{}}}",
        db.num_sequences,
        db.num_events,
        db.total_length,
        db.min_length,
        db.max_length,
        db.avg_length,
        db.store_bytes,
        db.num_shards
    ));

    out.push('}');
    out
}
