//! Admission control: a bounded queue between the acceptor and workers.
//!
//! The acceptor thread calls [`AdmissionQueue::try_admit`] for every
//! connection. If the queue is at capacity the caller sheds the request
//! with `429 Retry-After` instead of letting latency pile up invisibly —
//! an explicit, bounded failure beats an unbounded backlog. Workers block
//! in [`AdmissionQueue::pop`]; on shutdown [`AdmissionQueue::close`] wakes
//! them all, and each drains what is already queued before exiting.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// One admitted connection, stamped so the worker can report queue wait.
#[derive(Debug)]
pub struct Job {
    /// The accepted client connection, not yet read from.
    pub stream: TcpStream,
    /// When the acceptor admitted the connection.
    pub accepted_at: Instant,
}

/// Outcome of an admission attempt. The refused variants hand the stream
/// back so the acceptor can answer `429`/`503` on it.
#[derive(Debug)]
pub enum Admit {
    /// Admitted; the queue now holds this many jobs.
    Queued(usize),
    /// The queue is at capacity — shed the request.
    Full(TcpStream),
    /// The server is shutting down — refuse the request.
    Closed(TcpStream),
}

#[derive(Debug)]
struct Inner {
    queue: VecDeque<Job>,
    closed: bool,
}

/// A bounded MPMC queue of accepted connections.
#[derive(Debug)]
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` waiting connections.
    /// Capacity is clamped to at least 1 — a zero-capacity queue would
    /// shed every request.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Tries to enqueue a connection without blocking.
    pub fn try_admit(&self, stream: TcpStream) -> Admit {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Admit::Closed(stream);
        }
        if inner.queue.len() >= self.capacity {
            return Admit::Full(stream);
        }
        inner.queue.push_back(Job {
            stream,
            accepted_at: Instant::now(),
        });
        let depth = inner.queue.len();
        drop(inner);
        self.ready.notify_one();
        Admit::Queued(depth)
    }

    /// Blocks until a job is available or the queue is closed *and*
    /// drained. `None` tells the worker to exit.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = inner.queue.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until at least one job is available, then drains up to
    /// `max` jobs in one grab — the server's "join the current batch"
    /// dequeue. Whatever is queued *right now* becomes one mining batch;
    /// nobody waits for stragglers. `None` tells the worker to exit.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let max = max.max(1);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !inner.queue.is_empty() {
                let take = inner.queue.len().min(max);
                let batch: Vec<Job> = inner.queue.drain(..take).collect();
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks the queue closed and wakes every blocked worker. Jobs already
    /// queued are still handed out (graceful drain); new admissions get
    /// [`Admit::Closed`].
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Number of jobs currently waiting (racy, for `/stats`).
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// The configured capacity (after the ≥1 clamp).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::Arc;

    /// A connected socket pair for feeding the queue in tests.
    fn socket() -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let _server = listener.accept().expect("accept");
        client
    }

    #[test]
    fn fills_up_then_sheds() {
        let q = AdmissionQueue::new(2);
        assert!(matches!(q.try_admit(socket()), Admit::Queued(1)));
        assert!(matches!(q.try_admit(socket()), Admit::Queued(2)));
        assert!(matches!(q.try_admit(socket()), Admit::Full(_)));
        assert_eq!(q.depth(), 2);
        // Popping frees a slot.
        assert!(q.pop().is_some());
        assert!(matches!(q.try_admit(socket()), Admit::Queued(2)));
    }

    #[test]
    fn close_refuses_new_work_but_drains_old() {
        let q = AdmissionQueue::new(4);
        assert!(matches!(q.try_admit(socket()), Admit::Queued(1)));
        q.close();
        assert!(matches!(q.try_admit(socket()), Admit::Closed(_)));
        // The queued job still comes out, then workers see None.
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(AdmissionQueue::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop().is_none())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(waiter.join().expect("join"), "worker saw shutdown");
    }

    #[test]
    fn pop_batch_drains_whatever_is_queued_up_to_max() {
        let q = AdmissionQueue::new(8);
        for _ in 0..5 {
            assert!(matches!(q.try_admit(socket()), Admit::Queued(_)));
        }
        let batch = q.pop_batch(3).expect("batch");
        assert_eq!(batch.len(), 3);
        let rest = q.pop_batch(16).expect("rest");
        assert_eq!(rest.len(), 2);
        assert_eq!(q.depth(), 0);
        // Closed and empty → workers see None.
        q.close();
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn capacity_zero_is_clamped() {
        let q = AdmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(matches!(q.try_admit(socket()), Admit::Queued(1)));
        assert!(matches!(q.try_admit(socket()), Admit::Full(_)));
    }
}
