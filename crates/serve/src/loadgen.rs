//! The load generator behind `rgs-serve loadgen`.
//!
//! Boots a real server (snapshot on disk, verified, ephemeral port) for
//! each benchmark dataset and drives it with concurrent closed-loop
//! clients over real sockets — the measured path is exactly what a
//! production caller sees: connect, HTTP round-trip, parse.
//!
//! Two phases per dataset:
//!
//! - **`cache_cold`** — every request is distinct (thresholds × modes ×
//!   gap constraints), so each one mines. This measures end-to-end mining
//!   latency through the service.
//! - **`cache_hot`** — one fixed request repeated from every client; after
//!   the first miss the cache serves everything. This measures the
//!   service's saturating QPS and protocol overhead.
//!
//! Results land in `BENCH_serve.json` next to the other `BENCH_*.json`
//! reports.

use std::io::{self, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rgs_bench::datasets::{
    fig2_dataset, fig2_thresholds, fig5_fig6_threshold, fig5_largest, Scale,
};
use rgs_core::PreparedDb;
use seqdb::SequenceDatabase;

use crate::client;
use crate::server::{boot_snapshot, ServeConfig, Server};

/// Loadgen tunables (all settable from the CLI).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Dataset scale (`dev` or `paper`).
    pub scale: Scale,
    /// Where to write the JSON report.
    pub out: PathBuf,
    /// Concurrent closed-loop clients.
    pub client_threads: usize,
    /// Requests per client in the `cache_hot` phase.
    pub hot_requests_per_thread: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            scale: Scale::Dev,
            out: PathBuf::from("BENCH_serve.json"),
            client_threads: 4,
            hot_requests_per_thread: 150,
        }
    }
}

/// One measured phase.
#[derive(Debug, Clone)]
struct PhaseResult {
    phase: &'static str,
    requests: usize,
    errors: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

/// Runs the full benchmark and writes the report to `config.out`.
/// Returns the JSON text that was written.
pub fn run(config: &LoadgenConfig) -> io::Result<String> {
    let serve_config = ServeConfig {
        queue_capacity: 256,
        ..ServeConfig::default()
    };
    let mut dataset_reports = Vec::new();

    let (fig2_name, fig2_db) = fig2_dataset(config.scale);
    // The upper thresholds of the Fig. 2 sweep; the lowest ones are deep
    // mining runs that belong in the offline benchmarks, not a QPS probe.
    let thresholds = fig2_thresholds(config.scale);
    let thresholds = &thresholds[..thresholds.len().min(3)];
    let fig2_bodies: Vec<String> = mine_bodies(thresholds);
    dataset_reports.push(bench_dataset(
        &fig2_name,
        &fig2_db,
        &fig2_bodies,
        &serve_config,
        config,
    )?);

    let (fig5_name, fig5_db) = fig5_largest(config.scale);
    let fig5_bodies: Vec<String> = mine_bodies(&[fig5_fig6_threshold(config.scale)]);
    dataset_reports.push(bench_dataset(
        &fig5_name,
        &fig5_db,
        &fig5_bodies,
        &serve_config,
        config,
    )?);

    let json = report_json(config, &serve_config, &dataset_reports);
    let mut file = std::fs::File::create(&config.out)?;
    file.write_all(json.as_bytes())?;
    Ok(json)
}

/// The distinct request bodies for the `cache_cold` phase: every support
/// threshold crossed with three modes and two gap-constraint settings.
///
/// Every body carries a pattern-length and output budget so one
/// pathological (threshold, corpus) pair cannot stall the whole benchmark
/// — the point here is service throughput, not exhaustive enumeration
/// (the mining benchmarks in `rgs-bench` cover that).
fn mine_bodies(thresholds: &[u64]) -> Vec<String> {
    let mut bodies = Vec::new();
    for &min_sup in thresholds {
        for mode in ["closed", "maximal", "top-k"] {
            bodies.push(format!(
                "{{\"min_sup\":{min_sup},\"mode\":\"{mode}\",\"max_len\":8,\
                 \"max_patterns\":2000}}"
            ));
            bodies.push(format!(
                "{{\"min_sup\":{min_sup},\"mode\":\"{mode}\",\"max_gap\":4,\
                 \"max_window\":20,\"max_len\":8,\"max_patterns\":2000}}"
            ));
        }
    }
    bodies
}

fn bench_dataset(
    name: &str,
    db: &SequenceDatabase,
    cold_bodies: &[String],
    serve_config: &ServeConfig,
    config: &LoadgenConfig,
) -> io::Result<String> {
    // Serve from a real snapshot image so the measured path includes the
    // mmap-backed store, exactly like production.
    let snapshot_path = temp_snapshot_path(name);
    let prepared = PreparedDb::from_database(db.clone());
    let snapshot_bytes = prepared
        .write_snapshot(&snapshot_path)
        .map_err(|err| io::Error::other(format!("write snapshot: {err}")))?;
    drop(prepared);
    let shared = boot_snapshot(&snapshot_path).map_err(io::Error::other)?;
    let checksum = shared.image_checksum().unwrap_or(0);

    let server = Server::start(Arc::clone(&shared), ("127.0.0.1", 0), serve_config.clone())?;
    let addr = server.local_addr();

    let cold = drive(addr, cold_bodies, config.client_threads, 1, "cache_cold");
    // One fixed body, repeated: everything after the first request is a
    // cache hit.
    let hot_body = cold_bodies
        .first()
        .cloned()
        .unwrap_or_else(|| "{}".to_owned());
    let hot = drive(
        addr,
        std::slice::from_ref(&hot_body),
        config.client_threads,
        config.hot_requests_per_thread,
        "cache_hot",
    );

    let cache = server.context().cache.stats();
    server.shutdown();
    let _ = std::fs::remove_file(&snapshot_path);

    Ok(format!(
        "{{\"dataset\": \"{name}\", \"snapshot_bytes\": {snapshot_bytes}, \
         \"checksum\": \"{checksum:016x}\", \"phases\": [{}, {}], \
         \"cache_hits\": {}, \"cache_misses\": {}}}",
        phase_json(&cold),
        phase_json(&hot),
        cache.hits,
        cache.misses,
    ))
}

/// Runs `threads` closed-loop clients, each sending `rounds` passes over
/// its share of `bodies`, and aggregates latencies.
fn drive(
    addr: SocketAddr,
    bodies: &[String],
    threads: usize,
    rounds: usize,
    phase: &'static str,
) -> PhaseResult {
    let bodies: Arc<Vec<String>> = Arc::new(bodies.to_vec());
    let threads = threads.max(1);
    let timeout = Duration::from_secs(60);
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut errors = 0usize;
                for _round in 0..rounds {
                    for i in 0..bodies.len() {
                        // Stripe the request mix across clients so they do
                        // not march through it in lockstep.
                        let body = &bodies[(t + i) % bodies.len()];
                        let sent = Instant::now();
                        match client::mine(addr, body, timeout) {
                            Ok(response) if response.status == 200 => {
                                latencies.push(sent.elapsed());
                            }
                            Ok(_) | Err(_) => errors += 1,
                        }
                    }
                }
                (latencies, errors)
            })
        })
        .collect();

    let mut all = Vec::new();
    let mut errors = 0usize;
    for handle in handles {
        if let Ok((latencies, errs)) = handle.join() {
            all.extend(latencies);
            errors += errs;
        } else {
            errors += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    all.sort_unstable();

    #[allow(clippy::cast_precision_loss)]
    let qps = all.len() as f64 / wall;
    PhaseResult {
        phase,
        requests: all.len(),
        errors,
        qps,
        p50_ms: percentile_ms(&all, 0.50),
        p99_ms: percentile_ms(&all, 0.99),
        max_ms: all.last().map_or(0.0, |d| d.as_secs_f64() * 1000.0),
    }
}

fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted
        .get(rank - 1)
        .map_or(0.0, |d| d.as_secs_f64() * 1000.0)
}

fn phase_json(result: &PhaseResult) -> String {
    format!(
        "{{\"phase\": \"{}\", \"requests\": {}, \"errors\": {}, \"qps\": {:.1}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}",
        result.phase,
        result.requests,
        result.errors,
        result.qps,
        result.p50_ms,
        result.p99_ms,
        result.max_ms
    )
}

fn report_json(
    config: &LoadgenConfig,
    serve_config: &ServeConfig,
    dataset_reports: &[String],
) -> String {
    let scale = match config.scale {
        Scale::Dev => "dev",
        Scale::Paper => "paper",
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"serve\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"workers\": {},\n", serve_config.workers));
    out.push_str(&format!(
        "  \"client_threads\": {},\n",
        config.client_threads
    ));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    out.push_str("  \"datasets\": [\n");
    for (i, report) in dataset_reports.iter().enumerate() {
        out.push_str("    ");
        out.push_str(report);
        if i + 1 < dataset_reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn temp_snapshot_path(name: &str) -> PathBuf {
    let tag: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    std::env::temp_dir().join(format!(
        "rgs-serve-loadgen-{}-{tag}.snapshot",
        std::process::id()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_bodies_are_distinct() {
        let bodies = mine_bodies(&[40, 30, 20]);
        assert_eq!(bodies.len(), 3 * 3 * 2);
        let unique: std::collections::HashSet<_> = bodies.iter().collect();
        assert_eq!(unique.len(), bodies.len());
    }

    #[test]
    fn percentiles_pick_the_right_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert!((percentile_ms(&sorted, 0.50) - 50.0).abs() < 1e-9);
        assert!((percentile_ms(&sorted, 0.99) - 99.0).abs() < 1e-9);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }
}
