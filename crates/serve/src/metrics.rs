//! Lock-free serving metrics: counters and log₂ latency histograms.
//!
//! Everything here is a plain [`AtomicU64`], updated with relaxed ordering
//! — the numbers feed `/stats`, not control flow, so the only requirement
//! is that each individual increment lands. Histograms bucket by
//! power-of-two microsecond ranges, which gives ~5% worst-case relative
//! error on the quantiles `/stats` reports while costing one atomic add
//! per observation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: bucket `i` covers `[2^i, 2^(i+1))` µs, with
/// bucket 0 also absorbing sub-microsecond observations. 2^25 µs ≈ 33 s,
/// far past any deadline the server will allow; larger observations clamp
/// into the last bucket.
pub const BUCKETS: usize = 26;

/// A fixed-bucket latency histogram safe to share across worker threads.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// A point-in-time read of a [`Histogram`], in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded so far.
    pub count: u64,
    /// Arithmetic mean, ms.
    pub mean_ms: f64,
    /// Median (upper bucket bound), ms.
    pub p50_ms: f64,
    /// 90th percentile (upper bucket bound), ms.
    pub p90_ms: f64,
    /// 99th percentile (upper bucket bound), ms.
    pub p99_ms: f64,
    /// Largest single observation, ms (exact, not bucketed).
    pub max_ms: f64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = bucket_for(us);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Reads the histogram. Concurrent recording may skew a snapshot by a
    /// handful of observations; that is fine for `/stats`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = counts.iter().sum();
        let total_us = self.total_us.load(Ordering::Relaxed);
        let max_us = self.max_us.load(Ordering::Relaxed);
        let mean_ms = if count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            let mean = total_us as f64 / count as f64 / 1000.0;
            mean
        };
        HistogramSnapshot {
            count,
            mean_ms,
            p50_ms: quantile_ms(&counts, count, 0.50),
            p90_ms: quantile_ms(&counts, count, 0.90),
            p99_ms: quantile_ms(&counts, count, 0.99),
            #[allow(clippy::cast_precision_loss)]
            max_ms: max_us as f64 / 1000.0,
        }
    }
}

fn bucket_for(us: u64) -> usize {
    if us < 2 {
        return 0;
    }
    let log2 = 63usize.saturating_sub(usize::try_from(us.leading_zeros()).unwrap_or(64));
    log2.min(BUCKETS - 1)
}

/// The upper bound of the first bucket whose cumulative count reaches
/// `q * count`, in ms. Zero when the histogram is empty.
fn quantile_ms(counts: &[u64; BUCKETS], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let target = ((count as f64) * q).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= target {
            let upper_us = 1u64 << (i + 1);
            #[allow(clippy::cast_precision_loss)]
            return upper_us as f64 / 1000.0;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let fallback = (1u64 << BUCKETS) as f64 / 1000.0;
    fallback
}

/// Monotonic request counters for the whole server, exported by `/stats`.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections accepted off the listener.
    pub accepted: AtomicU64,
    /// `/mine` requests fully served (any outcome except shed/error).
    pub mined: AtomicU64,
    /// `/mine` responses answered straight from the result cache.
    pub cache_served: AtomicU64,
    /// Requests rejected with `429` because the admission queue was full.
    pub shed: AtomicU64,
    /// Requests answered with a 4xx/5xx protocol or HTTP error.
    pub errors: AtomicU64,
    /// `/mine` responses whose deadline expired mid-mining (truncated).
    pub deadline_exceeded: AtomicU64,
    /// Mining batches executed (one shared DFS pass per batch; cache hits
    /// and errors are answered before batching and do not join).
    pub batches: AtomicU64,
    /// `/mine` requests that went through a mining batch (sum of batch
    /// sizes; `batched_requests / batches` is the mean batch size).
    pub batched_requests: AtomicU64,
    /// Largest mining batch executed so far.
    pub max_batch_size: AtomicU64,
}

impl ServeCounters {
    /// Relaxed load of every counter as `(name, value)` pairs, in a stable
    /// order for JSON export.
    pub fn load(&self) -> [(&'static str, u64); 9] {
        [
            ("accepted", self.accepted.load(Ordering::Relaxed)),
            ("mined", self.mined.load(Ordering::Relaxed)),
            ("cache_served", self.cache_served.load(Ordering::Relaxed)),
            ("shed", self.shed.load(Ordering::Relaxed)),
            ("errors", self.errors.load(Ordering::Relaxed)),
            (
                "deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            ),
            ("batches", self.batches.load(Ordering::Relaxed)),
            (
                "batched_requests",
                self.batched_requests.load(Ordering::Relaxed),
            ),
            (
                "max_batch_size",
                self.max_batch_size.load(Ordering::Relaxed),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::default();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_ms, 0.0);
        assert_eq!(snap.max_ms, 0.0);
    }

    #[test]
    fn quantiles_bracket_the_observations() {
        let h = Histogram::default();
        // 99 fast observations at ~1ms, one slow at ~500ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(1_000));
        }
        h.record(Duration::from_millis(500));
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // 1000µs lands in bucket [2^9, 2^10) -> upper bound 1024µs.
        assert!((snap.p50_ms - 1.024).abs() < 1e-9, "{}", snap.p50_ms);
        assert!((snap.p90_ms - 1.024).abs() < 1e-9, "{}", snap.p90_ms);
        // p99 over 100 obs targets the 99th, still the fast bucket...
        assert!(snap.p99_ms <= 1.024 + 1e-9, "{}", snap.p99_ms);
        // ...while the max reports the slow outlier exactly.
        assert!((snap.max_ms - 500.0).abs() < 1.0, "{}", snap.max_ms);
        assert!(snap.mean_ms > 5.0 && snap.mean_ms < 7.0, "{}", snap.mean_ms);
    }

    #[test]
    fn extreme_observations_clamp_instead_of_panicking() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(3600));
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert!(snap.max_ms >= 3_600_000.0);
    }

    #[test]
    fn counters_export_in_a_stable_order() {
        let c = ServeCounters::default();
        c.mined.fetch_add(3, Ordering::Relaxed);
        c.shed.fetch_add(1, Ordering::Relaxed);
        let loaded = c.load();
        assert_eq!(loaded[1], ("mined", 3));
        assert_eq!(loaded[3], ("shed", 1));
    }
}
