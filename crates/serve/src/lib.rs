//! `rgs-serve`: a long-running mining service over one shared snapshot.
//!
//! The mining stack below this crate is *prepared-once/query-many*: a
//! [`PreparedDb`](rgs_core::PreparedDb) is immutable, shareable behind an
//! [`Arc`](std::sync::Arc), and produces bit-identical results for a given
//! request no matter how it is executed. This crate is the serving layer
//! that cashes those properties in:
//!
//! - **one snapshot, many requests** — the daemon verifies and opens a
//!   snapshot image once at boot ([`boot_snapshot`]) and serves every
//!   request from the shared [`PreparedDb`](rgs_core::PreparedDb);
//! - **admission control** — a bounded queue between the acceptor and the
//!   worker pool ([`admission`]); overload is answered with `429
//!   Retry-After` instead of unbounded latency;
//! - **deadlines** — per-request `timeout_ms` (or a server default) wraps
//!   the collector in a [`DeadlineSink`](rgs_core::DeadlineSink), so a slow
//!   request returns a truncated-but-well-formed response;
//! - **a result cache** — mining determinism over an immutable corpus
//!   makes an LRU cache keyed by `(image checksum, canonical request)`
//!   correct by construction ([`cache`]);
//! - **observability** — `GET /stats` and `GET /healthz` export queue
//!   depth, cache counters, latency histograms, and corpus statistics
//!   ([`metrics`]).
//!
//! The HTTP layer ([`http`]) is hand-rolled over [`std::net`] — the
//! workspace is fully offline, so the protocol surface is deliberately
//! tiny: HTTP/1.1, one request per connection, `Content-Length` bodies.
//!
//! # Endpoints
//!
//! | endpoint | body | reply |
//! |---|---|---|
//! | `POST /mine` | JSON [`MiningRequest`](rgs_core::MiningRequest) fields | patterns + envelope |
//! | `GET /stats` | — | counters, queue, cache, histograms, corpus stats |
//! | `GET /healthz` | — | liveness + snapshot identity |
//!
//! See `ARCHITECTURE.md` (Layer 5) for the request lifecycle and the
//! `rgs-serve` binary for the CLI entry points (`serve`, `query`,
//! `loadgen`).

pub mod admission;
pub mod cache;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod worker;

pub use server::{boot_snapshot, ServeConfig, Server};
