//! The LRU result cache.
//!
//! Mining is deterministic over an immutable [`PreparedDb`]: the same
//! canonical request against the same corpus bytes always yields the same
//! patterns, bit for bit (the equivalence suite and the serve e2e test
//! both pin this). That makes caching *correct by construction* — a cache
//! key is `(image checksum, canonical request key)` and an entry never
//! goes stale while the process holds the snapshot.
//!
//! Entries are whole rendered response payloads, not pattern objects:
//! a hit costs one map lookup and one string clone, no re-rendering.
//!
//! This module is on the xtask audit hot-path list: no panics, no
//! `unwrap`/`expect`, no bare indexing. Lock poisoning is absorbed with
//! [`PoisonError::into_inner`] — the state is a plain map plus counters,
//! always valid even if a holder panicked.
//!
//! [`PreparedDb`]: rgs_core::PreparedDb

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// A cached mining result: the rendered patterns array plus the envelope
/// fields a response needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// The rendered JSON array of patterns, exactly as first served.
    pub patterns_json: String,
    /// Number of patterns in the array.
    pub count: usize,
    /// Whether the original run hit an output budget (`max_patterns`).
    pub truncated: bool,
}

#[derive(Debug)]
struct Entry {
    result: CachedResult,
    /// This entry's position in the LRU order (key into `order`).
    tick: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<String, Entry>,
    /// LRU order: oldest tick first. Values are keys into `entries`.
    order: BTreeMap<u64, String>,
    /// Monotonic use counter; bumped on every insert and hit.
    next_tick: u64,
}

/// Point-in-time cache statistics for `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries pushed out by the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub len: usize,
    /// Configured capacity (0 = disabled).
    pub capacity: usize,
}

/// A thread-safe LRU cache of rendered mining results.
///
/// Capacity 0 disables caching entirely: every lookup misses and inserts
/// are dropped, but the counters still run so `/stats` stays meaningful.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding up to `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            state: Mutex::new(CacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Builds the full cache key from the corpus identity and the
    /// canonical request key. Heap-built databases have no image checksum;
    /// they share the `"heap"` namespace, which is correct as long as one
    /// server process holds exactly one `PreparedDb` — the server never
    /// swaps corpora in place.
    pub fn key(image_checksum: Option<u64>, canonical_request: &str) -> String {
        match image_checksum {
            Some(sum) => format!("{sum:016x}|{canonical_request}"),
            None => format!("heap|{canonical_request}"),
        }
    }

    /// Looks up `key`, refreshing its LRU position on a hit.
    pub fn get(&self, key: &str) -> Option<CachedResult> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let tick = state.next_tick;
        state.next_tick += 1;
        if let Some(entry) = state.entries.get_mut(key) {
            let old_tick = entry.tick;
            entry.tick = tick;
            let result = entry.result.clone();
            state.order.remove(&old_tick);
            state.order.insert(tick, key.to_owned());
            drop(state);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(result)
        } else {
            drop(state);
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// one if the cache is full. A no-op when capacity is 0.
    pub fn insert(&self, key: String, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let tick = state.next_tick;
        state.next_tick += 1;
        if let Some(existing) = state.entries.get_mut(&key) {
            let old_tick = existing.tick;
            existing.result = result;
            existing.tick = tick;
            state.order.remove(&old_tick);
            state.order.insert(tick, key);
            drop(state);
            self.insertions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut evicted = 0u64;
        while state.entries.len() >= self.capacity {
            if let Some((_, victim)) = state.order.pop_first() {
                state.entries.remove(&victim);
                evicted += 1;
            } else {
                // order and entries disagree; clear both rather than loop.
                state.entries.clear();
                break;
            }
        }
        state.order.insert(tick, key.clone());
        state.entries.insert(key, Entry { result, tick });
        drop(state);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Reads the counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        let len = self
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            patterns_json: format!("[\"{tag}\"]"),
            count: 1,
            truncated: false,
        }
    }

    #[test]
    fn hit_after_insert_and_counters_track() {
        let cache = ResultCache::new(4);
        let key = ResultCache::key(Some(0xdead_beef), "v1;sup=2");
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), result("a"));
        assert_eq!(cache.get(&key).expect("hit").patterns_json, "[\"a\"]");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(2);
        cache.insert("a".to_owned(), result("a"));
        cache.insert("b".to_owned(), result("b"));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.get("a").is_some());
        cache.insert("c".to_owned(), result("c"));
        assert!(cache.get("a").is_some(), "recently used survives");
        assert!(cache.get("b").is_none(), "cold entry evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_a_key_refreshes_without_growing() {
        let cache = ResultCache::new(2);
        cache.insert("a".to_owned(), result("a1"));
        cache.insert("a".to_owned(), result("a2"));
        assert_eq!(cache.stats().len, 1);
        assert_eq!(cache.get("a").expect("hit").patterns_json, "[\"a2\"]");
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn capacity_zero_disables_storage_but_not_counters() {
        let cache = ResultCache::new(0);
        cache.insert("a".to_owned(), result("a"));
        assert!(cache.get("a").is_none());
        let stats = cache.stats();
        assert_eq!(stats.len, 0);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 0);
    }

    #[test]
    fn heap_and_image_namespaces_do_not_collide() {
        let heap = ResultCache::key(None, "v1;sup=2");
        let image = ResultCache::key(Some(2), "v1;sup=2");
        assert_ne!(heap, image);
        assert!(heap.starts_with("heap|"));
        assert!(image.starts_with("0000000000000002|"));
    }
}
