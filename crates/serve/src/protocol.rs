//! The wire protocol: JSON bodies in, JSON bodies out.
//!
//! A `POST /mine` body is a flat JSON object describing a
//! [`MiningRequest`]. Every field is optional — omitted fields take the
//! library defaults, so `{}` means "closed patterns, min_sup 2". Unknown
//! fields are rejected by name rather than ignored: a typo like
//! `"min_supp"` silently mining with the default support would be far
//! worse than a 400.
//!
//! Responses use a single envelope shape (see [`mine_response_body`]) so
//! clients can always look at `truncated` / `deadline_exceeded` / `cached`
//! regardless of how the request went.

use rgs_core::json::{self, Value};
use rgs_core::{MinedPattern, MiningRequest, Mode};
use seqdb::EventCatalog;

/// A parsed `/mine` body: the mining request plus serve-level options that
/// are not part of the canonical mining key.
#[derive(Debug, Clone, PartialEq)]
pub struct MineRequest {
    /// The mining parameters, canonicalized by `rgs_core::canonical_key`.
    pub request: MiningRequest,
    /// Per-request deadline in milliseconds, overriding the server default.
    pub timeout_ms: Option<u64>,
}

/// A request the server refuses: carries the HTTP status to answer with
/// and a message naming the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// HTTP status code (always 400 today; kept explicit for future codes).
    pub status: u16,
    /// Human-readable reason, quoted back in the error body.
    pub message: String,
}

impl ProtocolError {
    fn bad(message: impl Into<String>) -> Self {
        ProtocolError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Parses a `/mine` request body.
///
/// An empty body is treated as `{}`: every field at its default.
pub fn parse_mine_request(body: &str) -> Result<MineRequest, ProtocolError> {
    let text = if body.trim().is_empty() { "{}" } else { body };
    let value =
        json::parse(text).map_err(|err| ProtocolError::bad(format!("invalid JSON: {err}")))?;
    let members = value
        .as_obj()
        .ok_or_else(|| ProtocolError::bad("request body must be a JSON object"))?;

    let mut request = MiningRequest::default();
    let mut timeout_ms = None;
    for (name, field) in members {
        match name.as_str() {
            "min_sup" => request.min_sup = parse_u64(name, field)?,
            "mode" => request.mode = parse_mode(field)?,
            "min_gap" => request.constraints.min_gap = parse_u32(name, field)?,
            "max_gap" => request.constraints.max_gap = parse_opt_u32(name, field)?,
            "max_window" => request.constraints.max_window = parse_opt_u32(name, field)?,
            "top_k" => request.top_k = parse_opt_usize(name, field)?,
            "min_len" => request.min_len = parse_usize(name, field)?,
            "max_len" => request.max_pattern_length = parse_opt_usize(name, field)?,
            "max_patterns" => request.max_patterns = parse_opt_usize(name, field)?,
            "timeout_ms" => {
                timeout_ms = if field.is_null() {
                    None
                } else {
                    Some(parse_u64(name, field)?)
                };
            }
            other => {
                return Err(ProtocolError::bad(format!(
                    "unknown field {other:?}; accepted fields: min_sup, mode, min_gap, \
                     max_gap, max_window, top_k, min_len, max_len, max_patterns, timeout_ms"
                )));
            }
        }
    }
    Ok(MineRequest {
        request,
        timeout_ms,
    })
}

fn parse_u64(name: &str, field: &Value) -> Result<u64, ProtocolError> {
    field
        .as_u64()
        .ok_or_else(|| ProtocolError::bad(format!("field {name:?} must be a non-negative integer")))
}

fn parse_u32(name: &str, field: &Value) -> Result<u32, ProtocolError> {
    let raw = parse_u64(name, field)?;
    u32::try_from(raw)
        .map_err(|_| ProtocolError::bad(format!("field {name:?} exceeds the u32 range")))
}

fn parse_usize(name: &str, field: &Value) -> Result<usize, ProtocolError> {
    let raw = parse_u64(name, field)?;
    usize::try_from(raw)
        .map_err(|_| ProtocolError::bad(format!("field {name:?} exceeds the usize range")))
}

fn parse_opt_u32(name: &str, field: &Value) -> Result<Option<u32>, ProtocolError> {
    if field.is_null() {
        Ok(None)
    } else {
        parse_u32(name, field).map(Some)
    }
}

fn parse_opt_usize(name: &str, field: &Value) -> Result<Option<usize>, ProtocolError> {
    if field.is_null() {
        Ok(None)
    } else {
        parse_usize(name, field).map(Some)
    }
}

fn parse_mode(field: &Value) -> Result<Mode, ProtocolError> {
    let text = field
        .as_str()
        .ok_or_else(|| ProtocolError::bad("field \"mode\" must be a string"))?;
    match text {
        "all" => Ok(Mode::All),
        "closed" => Ok(Mode::Closed),
        "maximal" => Ok(Mode::Maximal),
        "top-k" | "topk" | "top_k" => Ok(Mode::TopK),
        other => Err(ProtocolError::bad(format!(
            "unknown mode {other:?}; one of \"all\", \"closed\", \"maximal\", \"top-k\""
        ))),
    }
}

/// Renders mined patterns as a JSON array of
/// `{"pattern": "A B", "support": 4, "len": 2}` objects.
pub fn render_patterns(patterns: &[MinedPattern], catalog: &EventCatalog) -> String {
    let mut out = String::with_capacity(patterns.len() * 48 + 2);
    out.push('[');
    for (i, mined) in patterns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"pattern\":");
        out.push_str(&json::escape(&mined.pattern.render_with(catalog, " ")));
        out.push_str(&format!(
            ",\"support\":{},\"len\":{}}}",
            mined.support,
            mined.pattern.len()
        ));
    }
    out.push(']');
    out
}

/// Builds the `/mine` response envelope around an already-rendered
/// `patterns_json` array.
pub fn mine_response_body(
    patterns_json: &str,
    count: usize,
    truncated: bool,
    deadline_exceeded: bool,
    cached: bool,
    elapsed_ms: f64,
) -> String {
    format!(
        "{{\"patterns\":{patterns_json},\"count\":{count},\"truncated\":{truncated},\
         \"deadline_exceeded\":{deadline_exceeded},\"cached\":{cached},\
         \"elapsed_ms\":{elapsed_ms:.3}}}"
    )
}

/// Builds the uniform error body: `{"error":{"code":400,"message":"…"}}`.
pub fn error_body(code: u16, message: &str) -> String {
    format!(
        "{{\"error\":{{\"code\":{code},\"message\":{}}}}}",
        json::escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgs_core::DEFAULT_TOP_K;

    #[test]
    fn empty_body_means_all_defaults() {
        let parsed = parse_mine_request("").expect("empty body");
        assert_eq!(parsed.request, MiningRequest::default());
        assert_eq!(parsed.timeout_ms, None);
        assert_eq!(parsed, parse_mine_request("{}").expect("empty object"));
    }

    #[test]
    fn every_field_lands_in_the_request() {
        let parsed = parse_mine_request(
            r#"{"min_sup": 7, "mode": "top-k", "min_gap": 1, "max_gap": 4,
                "max_window": 12, "top_k": 25, "min_len": 2, "max_len": 9,
                "max_patterns": 1000, "timeout_ms": 250}"#,
        )
        .expect("full body");
        let r = &parsed.request;
        assert_eq!(r.min_sup, 7);
        assert_eq!(r.mode, Mode::TopK);
        assert_eq!(r.constraints.min_gap, 1);
        assert_eq!(r.constraints.max_gap, Some(4));
        assert_eq!(r.constraints.max_window, Some(12));
        assert_eq!(r.top_k, Some(25));
        assert_eq!(r.min_len, 2);
        assert_eq!(r.max_pattern_length, Some(9));
        assert_eq!(r.max_patterns, Some(1000));
        assert_eq!(parsed.timeout_ms, Some(250));
        assert!(r.is_ranked());
        assert_eq!(r.effective_k(), 25);
    }

    #[test]
    fn mode_spellings_and_nulls() {
        for (text, mode) in [
            ("all", Mode::All),
            ("closed", Mode::Closed),
            ("maximal", Mode::Maximal),
            ("top-k", Mode::TopK),
            ("topk", Mode::TopK),
            ("top_k", Mode::TopK),
        ] {
            let parsed = parse_mine_request(&format!("{{\"mode\":\"{text}\"}}")).expect(text);
            assert_eq!(parsed.request.mode, mode, "{text}");
        }
        let parsed = parse_mine_request(r#"{"max_gap": null, "timeout_ms": null}"#).expect("nulls");
        assert_eq!(parsed.request.constraints.max_gap, None);
        assert_eq!(parsed.timeout_ms, None);
        assert_eq!(parsed.request.effective_k(), DEFAULT_TOP_K);
    }

    #[test]
    fn bad_bodies_name_the_problem() {
        let cases = [
            ("[1,2]", "JSON object"),
            ("{\"min_supp\": 3}", "min_supp"),
            ("{\"min_sup\": -1}", "non-negative"),
            ("{\"min_sup\": 1.5}", "non-negative"),
            ("{\"mode\": \"openish\"}", "openish"),
            ("{\"mode\": 4}", "must be a string"),
            ("{\"min_gap\": 4294967296}", "u32"),
            ("{not json", "invalid JSON"),
        ];
        for (body, needle) in cases {
            let err = parse_mine_request(body).expect_err(body);
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains(needle), "{body} -> {}", err.message);
        }
    }

    #[test]
    fn response_bodies_are_valid_json() {
        let body = mine_response_body("[]", 0, false, true, false, 1.25);
        let value = json::parse(&body).expect("envelope parses");
        assert_eq!(value.get("count").and_then(Value::as_u64), Some(0));
        assert_eq!(
            value.get("deadline_exceeded").and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(value.get("cached").and_then(Value::as_bool), Some(false));

        let err = error_body(429, "queue full \"now\"");
        let value = json::parse(&err).expect("error parses");
        let error = value.get("error").expect("error member");
        assert_eq!(error.get("code").and_then(Value::as_u64), Some(429));
        assert_eq!(
            error.get("message").and_then(Value::as_str),
            Some("queue full \"now\"")
        );
    }
}
