//! A minimal blocking client for talking to a running `rgs-serve`.
//!
//! The server speaks one-request-per-connection HTTP/1.1 with
//! `Connection: close`, so the client is symmetric and simple: connect,
//! write the request, read to EOF, split status from body. Used by the
//! e2e test, the load generator, and the `rgs-serve query` subcommand —
//! all three exercising the exact bytes a real client would see.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A complete exchange: the response status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code from the status line.
    pub status: u16,
    /// The response body (always JSON from this server).
    pub body: String,
    /// Raw header block, for tests asserting on e.g. `Retry-After`.
    pub headers: String,
}

/// Sends one request and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;

    let message = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(message.as_bytes())?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

/// `GET path` with an empty body.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<Response> {
    request(addr, "GET", path, "", timeout)
}

/// `POST /mine` with a JSON body.
pub fn mine(addr: SocketAddr, body: &str, timeout: Duration) -> io::Result<Response> {
    request(addr, "POST", "/mine", body, timeout)
}

fn parse_response(raw: &str) -> io::Result<Response> {
    let bad = |detail: &str| io::Error::new(io::ErrorKind::InvalidData, detail.to_owned());
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let (status_line, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    // "HTTP/1.1 200 OK" — the status code is the second token.
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| bad("response status line is malformed"))?;
    Ok(Response {
        status,
        body: body.to_owned(),
        headers: headers.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_headers_and_body() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\
                   Connection: close\r\n\r\n{\"error\":{}}";
        let response = parse_response(raw).expect("parse");
        assert_eq!(response.status, 429);
        assert_eq!(response.body, "{\"error\":{}}");
        assert!(response.headers.contains("Retry-After: 1"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("BOOP woo\r\n\r\nbody").is_err());
    }
}
