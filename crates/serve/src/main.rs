//! `rgs-serve` — the mining service daemon and its companion tools.
//!
//! ```text
//! rgs-serve serve   --snapshot IMG [--addr HOST:PORT] [--port P]
//!                   [--workers N] [--queue N] [--cache N]
//!                   [--timeout-ms MS] [--read-timeout-ms MS] [--max-batch N]
//! rgs-serve query   --addr HOST:PORT [--body JSON] [--stats] [--healthz]
//!                   [--timeout-ms MS]
//! rgs-serve loadgen [--scale dev|paper] [--out PATH] [--threads N]
//!                   [--hot-requests N]
//! ```
//!
//! `serve` verifies the snapshot image, opens it zero-copy, and serves
//! `POST /mine` / `GET /stats` / `GET /healthz` until the process is
//! killed. `query` is a tiny client for scripting and smoke tests: it
//! sends one request and prints the JSON response body. `loadgen` boots
//! throwaway servers over the benchmark synthetics and writes
//! `BENCH_serve.json` (QPS, p50/p99 per phase).

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rgs_bench::datasets::Scale;
use rgs_serve::loadgen::{self, LoadgenConfig};
use rgs_serve::{boot_snapshot, client, ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("rgs-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("loadgen") => run_loadgen(&args[1..]),
        Some("--help" | "-h") | None => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        // Bare `rgs-serve --snapshot …` serves, matching the issue's
        // quickstart spelling.
        Some(flag) if flag.starts_with("--") => serve(args),
        Some(other) => Err(format!(
            "unknown subcommand {other:?}; one of serve, query, loadgen"
        )),
    }
}

fn print_usage() {
    println!(
        "rgs-serve — long-running mining service over one shared snapshot\n\n\
         USAGE:\n  \
         rgs-serve serve   --snapshot IMG [--addr HOST:PORT] [--port P]\n                    \
         [--workers N] [--queue N] [--cache N]\n                    \
         [--timeout-ms MS] [--read-timeout-ms MS] [--max-batch N]\n  \
         rgs-serve query   --addr HOST:PORT [--body JSON] [--stats] [--healthz]\n  \
         rgs-serve loadgen [--scale dev|paper] [--out PATH] [--threads N]\n\n\
         Endpoints: POST /mine, GET /stats, GET /healthz.\n\
         Build an image first: rgs-mine snapshot build --input FILE --out IMG"
    );
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut snapshot: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut config = ServeConfig::default();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let next_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        let parse_num = |value: String, what: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("{what} must be an integer"))
        };
        match args[i].as_str() {
            "--help" | "-h" => {
                print_usage();
                return Ok(ExitCode::SUCCESS);
            }
            "--snapshot" => snapshot = Some(PathBuf::from(next_value(&mut i)?)),
            "--addr" => addr = next_value(&mut i)?,
            "--port" => addr = format!("127.0.0.1:{}", parse_num(next_value(&mut i)?, "port")?),
            "--workers" => {
                config.workers = usize::try_from(parse_num(next_value(&mut i)?, "workers")?)
                    .map_err(|_| "workers out of range".to_owned())?;
            }
            "--queue" => {
                config.queue_capacity = usize::try_from(parse_num(next_value(&mut i)?, "queue")?)
                    .map_err(|_| "queue out of range".to_owned())?;
            }
            "--cache" => {
                config.cache_capacity = usize::try_from(parse_num(next_value(&mut i)?, "cache")?)
                    .map_err(|_| "cache out of range".to_owned())?;
            }
            "--timeout-ms" => {
                config.default_timeout_ms = Some(parse_num(next_value(&mut i)?, "timeout-ms")?);
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms = parse_num(next_value(&mut i)?, "read-timeout-ms")?;
            }
            "--max-batch" => {
                config.max_batch = usize::try_from(parse_num(next_value(&mut i)?, "max-batch")?)
                    .map_err(|_| "max-batch out of range".to_owned())?;
            }
            other => return Err(format!("unknown flag {other:?} for serve")),
        }
        i += 1;
    }

    let snapshot = snapshot.ok_or_else(|| {
        "serve needs --snapshot IMG (build one with `rgs-mine snapshot build`)".to_owned()
    })?;
    let prepared = boot_snapshot(&snapshot)?;
    let stats = prepared.stats();
    let server = Server::start(prepared, addr.as_str(), config)
        .map_err(|err| format!("cannot bind {addr}: {err}"))?;
    println!(
        "rgs-serve: serving {} ({} sequences, {} events) on http://{}",
        snapshot.display(),
        stats.num_sequences,
        stats.total_length,
        server.local_addr()
    );
    println!("rgs-serve: POST /mine, GET /stats, GET /healthz — ^C to stop");
    // Serve until the process is killed. The acceptor and workers are
    // non-daemon threads; parking the main thread keeps them alive.
    loop {
        std::thread::park();
    }
}

fn query(args: &[String]) -> Result<ExitCode, String> {
    let mut addr: Option<String> = None;
    let mut body = "{}".to_owned();
    let mut path: Option<&'static str> = None;
    let mut timeout_ms: u64 = 30_000;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let next_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match args[i].as_str() {
            "--addr" => addr = Some(next_value(&mut i)?),
            "--body" => body = next_value(&mut i)?,
            "--stats" => path = Some("/stats"),
            "--healthz" => path = Some("/healthz"),
            "--timeout-ms" => {
                timeout_ms = next_value(&mut i)?
                    .parse()
                    .map_err(|_| "timeout-ms must be an integer".to_owned())?;
            }
            other => return Err(format!("unknown flag {other:?} for query")),
        }
        i += 1;
    }

    let addr = resolve(&addr.ok_or_else(|| "query needs --addr HOST:PORT".to_owned())?)?;
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let response = match path {
        Some(get_path) => client::get(addr, get_path, timeout),
        None => client::mine(addr, &body, timeout),
    }
    .map_err(|err| format!("request to {addr} failed: {err}"))?;
    println!("{}", response.body);
    if response.status == 200 {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("rgs-serve: server answered {}", response.status);
        Ok(ExitCode::FAILURE)
    }
}

fn run_loadgen(args: &[String]) -> Result<ExitCode, String> {
    let mut config = LoadgenConfig::default();

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let next_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match args[i].as_str() {
            "--scale" => {
                let value = next_value(&mut i)?;
                config.scale = Scale::parse(&value)
                    .ok_or_else(|| format!("unknown scale {value:?}; dev or paper"))?;
            }
            "--out" => config.out = PathBuf::from(next_value(&mut i)?),
            "--threads" => {
                config.client_threads = next_value(&mut i)?
                    .parse()
                    .map_err(|_| "threads must be an integer".to_owned())?;
            }
            "--hot-requests" => {
                config.hot_requests_per_thread = next_value(&mut i)?
                    .parse()
                    .map_err(|_| "hot-requests must be an integer".to_owned())?;
            }
            other => return Err(format!("unknown flag {other:?} for loadgen")),
        }
        i += 1;
    }

    eprintln!(
        "rgs-serve loadgen: scale {:?}, {} client threads -> {}",
        config.scale,
        config.client_threads,
        config.out.display()
    );
    let json = loadgen::run(&config).map_err(|err| format!("loadgen failed: {err}"))?;
    println!("{json}");
    Ok(ExitCode::SUCCESS)
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|err| format!("cannot resolve {addr}: {err}"))?
        .next()
        .ok_or_else(|| format!("{addr} resolved to no addresses"))
}
