//! Seeded property tests of request canonicalization on the wire path.
//!
//! The result cache is only correct if `canonical_key` is a *semantic*
//! fingerprint of a wire request: two JSON bodies that mean the same
//! mining job must map to the same key regardless of field order, omitted
//! defaults, or `null`s — and any body that means a different job must map
//! to a different key. Cases are generated with a deterministic seeded
//! PRNG, so failures reproduce from the printed case.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rgs_core::canonical_key;
use rgs_serve::protocol::parse_mine_request;

const CASES: usize = 128;

/// One randomly drawn request, kept as field fragments so the test can
/// render it with shuffled order and optional default elision.
#[derive(Debug, Clone)]
struct Case {
    min_sup: u64,
    mode: &'static str,
    min_gap: u32,
    max_gap: Option<u32>,
    max_window: Option<u32>,
    top_k: Option<usize>,
    min_len: usize,
    max_len: Option<usize>,
    max_patterns: Option<usize>,
}

fn draw(rng: &mut StdRng) -> Case {
    let modes = ["all", "closed", "maximal", "top-k"];
    Case {
        min_sup: rng.gen_range(1..50u64),
        mode: modes[rng.gen_range(0..modes.len())],
        min_gap: rng.gen_range(0..3u32),
        max_gap: rng.gen_bool(0.5).then(|| rng.gen_range(1..8u32)),
        max_window: rng.gen_bool(0.5).then(|| rng.gen_range(5..30u32)),
        top_k: rng.gen_bool(0.4).then(|| rng.gen_range(1..20usize)),
        min_len: rng.gen_range(0..4usize),
        max_len: rng.gen_bool(0.5).then(|| rng.gen_range(2..10usize)),
        max_patterns: rng.gen_bool(0.3).then(|| rng.gen_range(10..1000usize)),
    }
}

impl Case {
    /// Renders the case as JSON field fragments. With `elide_defaults`,
    /// fields at their wire default are randomly omitted or written
    /// explicitly (`null` for absent optionals) — both spell the same
    /// request.
    fn fields(&self, rng: &mut StdRng, elide_defaults: bool) -> Vec<String> {
        let mut fields = Vec::new();
        let mut push = |rng: &mut StdRng, is_default: bool, explicit: String| {
            if !(elide_defaults && is_default && rng.gen_bool(0.5)) {
                fields.push(explicit);
            }
        };
        push(
            rng,
            self.min_sup == 2,
            format!("\"min_sup\":{}", self.min_sup),
        );
        push(
            rng,
            self.mode == "closed",
            format!("\"mode\":\"{}\"", self.mode),
        );
        push(
            rng,
            self.min_gap == 0,
            format!("\"min_gap\":{}", self.min_gap),
        );
        push(rng, self.max_gap.is_none(), opt("max_gap", self.max_gap));
        push(
            rng,
            self.max_window.is_none(),
            opt("max_window", self.max_window),
        );
        push(rng, self.top_k.is_none(), opt("top_k", self.top_k));
        push(
            rng,
            self.min_len == 0,
            format!("\"min_len\":{}", self.min_len),
        );
        push(rng, self.max_len.is_none(), opt("max_len", self.max_len));
        push(
            rng,
            self.max_patterns.is_none(),
            opt("max_patterns", self.max_patterns),
        );
        fields
    }

    fn body(&self, rng: &mut StdRng, shuffle: bool, elide_defaults: bool) -> String {
        let mut fields = self.fields(rng, elide_defaults);
        if shuffle {
            fields.shuffle(rng);
        }
        format!("{{{}}}", fields.join(","))
    }

    fn key(&self, body: &str) -> String {
        let parsed = parse_mine_request(body)
            .unwrap_or_else(|err| panic!("case {self:?}: body {body} rejected: {}", err.message));
        canonical_key(&parsed.request)
    }
}

fn opt<T: std::fmt::Display>(name: &str, value: Option<T>) -> String {
    match value {
        Some(v) => format!("\"{name}\":{v}"),
        None => format!("\"{name}\":null"),
    }
}

#[test]
fn field_order_and_elided_defaults_never_change_the_key() {
    let mut rng = StdRng::seed_from_u64(0xCA9A_11CE);
    for case_no in 0..CASES {
        let case = draw(&mut rng);
        let reference = case.key(&case.body(&mut rng, false, false));
        for variant in 0..4 {
            let body = case.body(&mut rng, true, true);
            let key = case.key(&body);
            assert_eq!(
                key, reference,
                "case {case_no} variant {variant}: {case:?}\nbody {body}"
            );
        }
        // timeout_ms is a serve-level option, not a mining parameter: it
        // must never split the key.
        let timed = format!(
            "{{\"timeout_ms\":{},{}}}",
            rng.gen_range(1..10_000u64),
            case.fields(&mut rng, false).join(",")
        );
        assert_eq!(case.key(&timed), reference, "case {case_no}: {timed}");
    }
}

#[test]
fn semantic_differences_always_split_the_key() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CA5E);
    for case_no in 0..CASES {
        let case = draw(&mut rng);
        let reference = case.key(&case.body(&mut rng, false, false));

        let mut mutated = Vec::new();
        let mut bump = case.clone();
        bump.min_sup += 1;
        mutated.push(bump);
        let mut gap = case.clone();
        gap.min_gap += 1;
        mutated.push(gap);
        let mut window = case.clone();
        window.max_window = Some(window.max_window.map_or(5, |w| w + 1));
        mutated.push(window);
        let mut len = case.clone();
        len.min_len += 1;
        mutated.push(len);
        let mut cap = case.clone();
        cap.max_patterns = Some(cap.max_patterns.map_or(10, |c| c + 1));
        mutated.push(cap);

        for (i, variant) in mutated.iter().enumerate() {
            let key = variant.key(&variant.body(&mut rng, true, false));
            assert_ne!(
                key, reference,
                "case {case_no} mutation {i}: {case:?} vs {variant:?}"
            );
        }
    }
}

#[test]
fn known_equivalences_collapse_to_one_key() {
    // mode top-k with the default k IS top_k=10 over closed patterns.
    let a = parse_mine_request("{\"mode\":\"top-k\"}")
        .expect("a")
        .request;
    let b = parse_mine_request("{\"mode\":\"closed\",\"top_k\":10}")
        .expect("b")
        .request;
    assert_eq!(canonical_key(&a), canonical_key(&b));

    // min_sup 0 normalizes to 1 (support is at least one occurrence).
    let zero = parse_mine_request("{\"min_sup\":0}").expect("zero").request;
    let one = parse_mine_request("{\"min_sup\":1}").expect("one").request;
    assert_eq!(canonical_key(&zero), canonical_key(&one));

    // The three top-k spellings agree.
    for spelling in ["top-k", "topk", "top_k"] {
        let parsed = parse_mine_request(&format!("{{\"mode\":\"{spelling}\"}}"))
            .expect(spelling)
            .request;
        assert_eq!(canonical_key(&parsed), canonical_key(&a), "{spelling}");
    }
}
