//! End-to-end tests: a real server on an ephemeral port, driven through
//! real sockets, checked against in-process mining.
//!
//! The core contract is *bit identity*: the bytes `POST /mine` returns for
//! a request must render exactly the patterns an in-process [`Miner`] run
//! produces for the same request over the same snapshot — across all four
//! modes, with and without gap constraints. On top of that: deadlines
//! produce well-formed truncated responses, a full admission queue sheds
//! with `429 Retry-After`, repeated requests come from the result cache,
//! and `/stats`/`/healthz` report it all.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rgs_bench::datasets::{fig2_dataset, Scale};
use rgs_core::json::{self, Value};
use rgs_core::{CollectSink, Miner, PreparedDb};
use rgs_serve::client;
use rgs_serve::protocol::{parse_mine_request, render_patterns};
use rgs_serve::{boot_snapshot, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rgs-serve-e2e-{}-{tag}.snapshot",
        std::process::id()
    ))
}

/// Writes the fig2 dev corpus to a snapshot, verifies + opens it, and
/// starts a server on an ephemeral port.
fn boot(tag: &str, config: ServeConfig) -> (Server, Arc<PreparedDb>, PathBuf) {
    let (_name, db) = fig2_dataset(Scale::Dev);
    let path = temp_path(tag);
    PreparedDb::from_database(db)
        .write_snapshot(&path)
        .expect("write snapshot");
    let shared = boot_snapshot(&path).expect("boot snapshot");
    let server = Server::start(Arc::clone(&shared), ("127.0.0.1", 0), config).expect("start");
    (server, shared, path)
}

/// The raw `"patterns"` array substring of a `/mine` response body —
/// compared byte-for-byte against in-process rendering.
fn patterns_field(body: &str) -> &str {
    let start = body.find("\"patterns\":").expect("patterns field") + "\"patterns\":".len();
    let end = body.find(",\"count\":").expect("count field");
    &body[start..end]
}

fn parse(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|err| panic!("response is not valid JSON: {err}\n{body}"))
}

#[test]
fn served_results_are_bit_identical_to_in_process_mining() {
    let (server, shared, path) = boot("identity", ServeConfig::default());
    let addr = server.local_addr();

    let mut nonempty = 0usize;
    for mode in ["all", "closed", "maximal", "top-k"] {
        for constraints in ["", ",\"min_gap\":1,\"max_gap\":4,\"max_window\":20"] {
            // Unconstrained all-mode enumeration explodes combinatorially
            // on this corpus; cap the pattern length there (the bench
            // suite's "all-capped" workload does the same).
            let cap = if mode == "all" { ",\"max_len\":4" } else { "" };
            let body = format!("{{\"min_sup\":15,\"mode\":\"{mode}\"{cap}{constraints}}}");
            let response = client::mine(addr, &body, TIMEOUT).expect("mine request");
            assert_eq!(
                response.status, 200,
                "{mode}{constraints}: {}",
                response.body
            );

            // The reference: the same wire body parsed by the same
            // protocol, mined in-process over the same shared snapshot.
            let request = parse_mine_request(&body).expect("parse body").request;
            let mut sink = CollectSink::new();
            Miner::from_shared(Arc::clone(&shared))
                .with_request(request)
                .run_with_sink(&mut sink);
            let expected = render_patterns(sink.patterns(), shared.catalog());

            let served = patterns_field(&response.body);
            assert_eq!(served, expected, "mode {mode}, constraints {constraints:?}");

            let envelope = parse(&response.body);
            let count = envelope
                .get("count")
                .and_then(Value::as_u64)
                .expect("count");
            assert_eq!(count as usize, sink.patterns().len());
            assert_eq!(
                envelope.get("deadline_exceeded").and_then(Value::as_bool),
                Some(false)
            );
            if !sink.patterns().is_empty() {
                nonempty += 1;
            }
        }
    }
    assert!(
        nonempty >= 6,
        "the corpus should yield patterns ({nonempty})"
    );

    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn deadline_bounded_requests_return_well_formed_truncated_responses() {
    let (server, _shared, path) = boot("deadline", ServeConfig::default());
    let addr = server.local_addr();

    // timeout_ms 0: the deadline has passed before the first pattern is
    // emitted, so the run is cancelled immediately — but the response must
    // still be a complete, valid envelope.
    let body = "{\"min_sup\":10,\"mode\":\"closed\",\"timeout_ms\":0}";
    let response = client::mine(addr, body, TIMEOUT).expect("mine request");
    assert_eq!(response.status, 200, "{}", response.body);
    let envelope = parse(&response.body);
    assert_eq!(
        envelope.get("deadline_exceeded").and_then(Value::as_bool),
        Some(true),
        "{}",
        response.body
    );
    assert_eq!(envelope.get("cached").and_then(Value::as_bool), Some(false));
    let count = envelope
        .get("count")
        .and_then(Value::as_u64)
        .expect("count");
    let listed = envelope
        .get("patterns")
        .and_then(Value::as_arr)
        .expect("patterns array")
        .len();
    assert_eq!(count as usize, listed, "count matches the array");

    // The full (un-deadlined) run finds strictly more.
    let full = client::mine(addr, "{\"min_sup\":10,\"mode\":\"closed\"}", TIMEOUT).expect("full");
    let full_count = parse(&full.body)
        .get("count")
        .and_then(Value::as_u64)
        .expect("count");
    assert!(
        full_count > count,
        "deadline truncated ({count} vs {full_count})"
    );

    // A cancelled run must not be cached: the same request without the
    // deadline already mined fresh (checked above via full_count), and
    // /stats records the deadline.
    let stats = parse(&client::get(addr, "/stats", TIMEOUT).expect("stats").body);
    let counters = stats.get("counters").expect("counters");
    assert!(
        counters
            .get("deadline_exceeded")
            .and_then(Value::as_u64)
            .expect("counter")
            >= 1
    );

    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn overload_sheds_with_429_retry_after_instead_of_stalling() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout_ms: 3_000,
        ..ServeConfig::default()
    };
    let (server, _shared, path) = boot("shed", config);
    let addr = server.local_addr();

    // Occupy the single worker with a connection that never sends its
    // request, then fill the queue with a second one.
    let hold_worker = TcpStream::connect(addr).expect("conn 1");
    std::thread::sleep(Duration::from_millis(200));
    let hold_queue = TcpStream::connect(addr).expect("conn 2");
    std::thread::sleep(Duration::from_millis(200));

    // The next request must be shed immediately — not stall behind the
    // stuck connections.
    let shed_started = std::time::Instant::now();
    let response = client::mine(addr, "{}", TIMEOUT).expect("shed request");
    assert_eq!(response.status, 429, "{}", response.body);
    assert!(
        response.headers.contains("Retry-After:"),
        "{}",
        response.headers
    );
    assert!(
        shed_started.elapsed() < Duration::from_secs(2),
        "shedding must be immediate, took {:?}",
        shed_started.elapsed()
    );
    let envelope = parse(&response.body);
    assert_eq!(
        envelope
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_u64),
        Some(429)
    );
    assert!(
        server
            .context()
            .counters
            .shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    drop(hold_worker);
    drop(hold_queue);
    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn repeated_requests_hit_the_result_cache() {
    let (server, _shared, path) = boot("cache", ServeConfig::default());
    let addr = server.local_addr();

    let body = "{\"min_sup\":15,\"mode\":\"closed\"}";
    let first = client::mine(addr, body, TIMEOUT).expect("first");
    assert_eq!(first.status, 200);
    assert_eq!(
        parse(&first.body).get("cached").and_then(Value::as_bool),
        Some(false)
    );

    // Same request, different field order and an explicit default — the
    // canonical key maps it to the same cache entry.
    let second = client::mine(
        addr,
        "{\"mode\":\"closed\",\"min_sup\":15,\"min_gap\":0}",
        TIMEOUT,
    )
    .expect("second");
    assert_eq!(second.status, 200);
    assert_eq!(
        parse(&second.body).get("cached").and_then(Value::as_bool),
        Some(true),
        "{}",
        second.body
    );
    assert_eq!(
        patterns_field(&first.body),
        patterns_field(&second.body),
        "cache serves identical bytes"
    );

    let stats = parse(&client::get(addr, "/stats", TIMEOUT).expect("stats").body);
    let cache = stats.get("cache").expect("cache");
    assert!(cache.get("hits").and_then(Value::as_u64).expect("hits") >= 1);
    assert!(cache.get("len").and_then(Value::as_u64).expect("len") >= 1);
    let counters = stats.get("counters").expect("counters");
    assert!(
        counters
            .get("cache_served")
            .and_then(Value::as_u64)
            .expect("served")
            >= 1
    );

    server.shutdown();
    let _ = std::fs::remove_file(path);
}

/// Occupies the single worker with a connection that sends nothing, so
/// every request admitted meanwhile queues up and is drained as one batch
/// the moment the holder is released.
fn occupy_worker(addr: std::net::SocketAddr) -> TcpStream {
    let holder = TcpStream::connect(addr).expect("holder connect");
    std::thread::sleep(Duration::from_millis(200));
    holder
}

#[test]
fn concurrent_requests_coalesce_into_one_batch_with_identical_bytes() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 16,
        read_timeout_ms: 3_000,
        ..ServeConfig::default()
    };
    let (server, shared, path) = boot("batch", config);
    let addr = server.local_addr();

    // Distinct requests (no cache collisions) spanning modes, thresholds,
    // constraints, and top-k — the shapes the batch engine must keep
    // private per member.
    let bodies = [
        "{\"min_sup\":15,\"mode\":\"closed\"}".to_owned(),
        "{\"min_sup\":25,\"mode\":\"closed\"}".to_owned(),
        "{\"min_sup\":15,\"mode\":\"maximal\"}".to_owned(),
        "{\"min_sup\":15,\"mode\":\"all\",\"max_len\":3}".to_owned(),
        "{\"min_sup\":15,\"mode\":\"top-k\",\"top_k\":5}".to_owned(),
        "{\"min_sup\":15,\"mode\":\"closed\",\"min_gap\":1,\"max_gap\":4}".to_owned(),
    ];

    // Stall the lone worker, let every client queue up behind it, then
    // release: the worker drains them all in one pop and mines one batch.
    let holder = occupy_worker(addr);
    let clients: Vec<_> = bodies
        .iter()
        .map(|body| {
            let body = body.clone();
            std::thread::spawn(move || client::mine(addr, &body, TIMEOUT).expect("mine"))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(500));
    drop(holder);

    for (body, client) in bodies.iter().zip(clients) {
        let response = client.join().expect("client thread");
        assert_eq!(response.status, 200, "{body}: {}", response.body);
        // Bit-identity vs a solo in-process run of the same wire request.
        let request = parse_mine_request(body).expect("parse body").request;
        let mut sink = CollectSink::new();
        Miner::from_shared(Arc::clone(&shared))
            .with_request(request)
            .run_with_sink(&mut sink);
        let expected = render_patterns(sink.patterns(), shared.catalog());
        assert_eq!(
            patterns_field(&response.body),
            expected,
            "batched response diverges from solo for {body}"
        );
        assert_eq!(
            parse(&response.body)
                .get("deadline_exceeded")
                .and_then(Value::as_bool),
            Some(false)
        );
    }

    // The batch counters must show real coalescing: all six requests went
    // through fewer batches than requests, and one batch held several.
    let stats = parse(&client::get(addr, "/stats", TIMEOUT).expect("stats").body);
    let counters = stats.get("counters").expect("counters");
    let batches = counters
        .get("batches")
        .and_then(Value::as_u64)
        .expect("batches counter");
    let batched_requests = counters
        .get("batched_requests")
        .and_then(Value::as_u64)
        .expect("batched_requests counter");
    let max_batch_size = counters
        .get("max_batch_size")
        .and_then(Value::as_u64)
        .expect("max_batch_size counter");
    assert_eq!(batched_requests, bodies.len() as u64);
    assert!(batches < batched_requests, "requests were not coalesced");
    assert!(max_batch_size >= 2, "no batch held more than one request");

    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn deadline_expired_batch_member_does_not_poison_siblings() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 16,
        read_timeout_ms: 3_000,
        ..ServeConfig::default()
    };
    let (server, shared, path) = boot("batch-deadline", config);
    let addr = server.local_addr();

    // One member's deadline has already passed when the batch starts; its
    // sibling (same scan group, no deadline) must still come back complete.
    let doomed_body = "{\"min_sup\":10,\"mode\":\"closed\",\"timeout_ms\":0}";
    let healthy_body = "{\"min_sup\":10,\"mode\":\"closed\"}";

    let holder = occupy_worker(addr);
    let doomed =
        std::thread::spawn(move || client::mine(addr, doomed_body, TIMEOUT).expect("doomed mine"));
    let healthy = std::thread::spawn(move || {
        client::mine(addr, healthy_body, TIMEOUT).expect("healthy mine")
    });
    std::thread::sleep(Duration::from_millis(500));
    drop(holder);

    let doomed = doomed.join().expect("doomed thread");
    assert_eq!(doomed.status, 200, "{}", doomed.body);
    assert_eq!(
        parse(&doomed.body)
            .get("deadline_exceeded")
            .and_then(Value::as_bool),
        Some(true),
        "{}",
        doomed.body
    );

    let healthy = healthy.join().expect("healthy thread");
    assert_eq!(healthy.status, 200, "{}", healthy.body);
    let healthy_envelope = parse(&healthy.body);
    assert_eq!(
        healthy_envelope
            .get("deadline_exceeded")
            .and_then(Value::as_bool),
        Some(false),
        "sibling was poisoned: {}",
        healthy.body
    );
    let request = parse_mine_request(healthy_body)
        .expect("parse body")
        .request;
    let mut sink = CollectSink::new();
    Miner::from_shared(Arc::clone(&shared))
        .with_request(request)
        .run_with_sink(&mut sink);
    assert_eq!(
        patterns_field(&healthy.body),
        render_patterns(sink.patterns(), shared.catalog()),
        "sibling of an expired member lost patterns"
    );

    let stats = parse(&client::get(addr, "/stats", TIMEOUT).expect("stats").body);
    let counters = stats.get("counters").expect("counters");
    assert!(
        counters
            .get("deadline_exceeded")
            .and_then(Value::as_u64)
            .expect("counter")
            >= 1
    );

    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn healthz_reports_the_snapshot_identity() {
    let (server, shared, path) = boot("health", ServeConfig::default());
    let addr = server.local_addr();

    let response = client::get(addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(response.status, 200);
    let envelope = parse(&response.body);
    assert_eq!(envelope.get("status").and_then(Value::as_str), Some("ok"));
    let expected = format!("{:016x}", shared.image_checksum().expect("image checksum"));
    assert_eq!(
        envelope.get("snapshot_checksum").and_then(Value::as_str),
        Some(expected.as_str())
    );

    // /stats carries the same identity plus corpus dimensions.
    let stats = parse(&client::get(addr, "/stats", TIMEOUT).expect("stats").body);
    let snapshot = stats.get("snapshot").expect("snapshot");
    assert_eq!(
        snapshot.get("checksum").and_then(Value::as_str),
        Some(expected.as_str())
    );
    let database = stats.get("database").expect("database");
    assert!(
        database
            .get("num_sequences")
            .and_then(Value::as_u64)
            .expect("sequences")
            > 0
    );

    // ... and the growth-kernel backend the workers dispatch to, so
    // operators can tell vectorized and forced-scalar deployments apart.
    let kernel = stats.get("kernel").expect("kernel");
    let backend = kernel
        .get("backend")
        .and_then(Value::as_str)
        .expect("backend");
    assert_eq!(
        backend,
        seqdb::simd::active_backend().name(),
        "served backend must match the in-process dispatch decision"
    );
    assert!(
        ["scalar", "swar", "sse2", "avx2"].contains(&backend),
        "unknown backend name {backend}"
    );
    assert!(kernel.get("cpu_features").and_then(Value::as_str).is_some());

    server.shutdown();
    let _ = std::fs::remove_file(path);
}

#[test]
fn unknown_routes_and_bad_bodies_are_refused_cleanly() {
    let (server, _shared, path) = boot("errors", ServeConfig::default());
    let addr = server.local_addr();

    let missing = client::get(addr, "/nope", TIMEOUT).expect("404");
    assert_eq!(missing.status, 404);

    let wrong_method = client::get(addr, "/mine", TIMEOUT).expect("405");
    assert_eq!(wrong_method.status, 405);

    let bad_field = client::mine(addr, "{\"min_supp\":3}", TIMEOUT).expect("400");
    assert_eq!(bad_field.status, 400);
    let message = parse(&bad_field.body)
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Value::as_str)
        .expect("message")
        .to_owned();
    assert!(message.contains("min_supp"), "{message}");

    // A raw garbage request straight on the socket.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"BLORP\r\n\r\n").expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown");
    let mut raw = String::new();
    use std::io::Read;
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    server.shutdown();
    let _ = std::fs::remove_file(path);
}
