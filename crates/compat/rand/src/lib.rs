//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API subset this workspace uses — seedable
//! [`rngs::StdRng`], [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`] — on top of a SplitMix64 generator.
//! Deterministic given a seed; the streams differ from upstream `rand`.

#![forbid(unsafe_code)]
// The sampling shims intentionally fold every integer width through u64
// with wrapping/truncating `as` casts, mirroring upstream `rand`'s
// widening-then-reduce technique; the lossiness is the algorithm.
#![allow(
    clippy::cast_lossless,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap
)]

/// Core random-number generation: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u8, u16, u32, u64);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
signed_sample_range!(i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value from `range` (half-open or inclusive).
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Small, fast, and
    /// statistically solid for simulation workloads (it seeds xoshiro in
    /// the reference implementations).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = Self { state: seed };
            // Warm up so that nearby seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!((3..7).contains(&rng.gen_range(3usize..7)));
            assert!((3..=7).contains(&rng.gen_range(3u32..=7)));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 - 30_000.0).abs() < 1_500.0, "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}
