//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the API subset this workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] configuration methods, [`Bencher::iter`],
//! [`BenchmarkId`], and [`black_box`] — with a simple timing loop instead of
//! criterion's statistical machinery. Each benchmark prints its mean and
//! minimum wall-clock time per iteration.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a benchmark
/// body whose result is unused.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs one benchmark body repeatedly and records timings.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    warm_up: Duration,
    total: Duration,
    fastest: Duration,
    measured: usize,
}

impl Bencher {
    fn new(iterations: usize, warm_up: Duration) -> Self {
        Self {
            iterations,
            warm_up,
            total: Duration::ZERO,
            fastest: Duration::MAX,
            measured: 0,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass (bounded by the configured warm-up time).
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up.min(Duration::from_millis(200)) {
            black_box(routine());
        }
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.fastest = self.fastest.min(elapsed);
            self.measured += 1;
        }
    }

    fn report(&self, group: &str, id: &BenchmarkId) {
        if self.measured == 0 {
            println!("{group}/{id}: no measurements (b.iter was never called)");
            return;
        }
        let mean = self.total / self.measured as u32;
        println!(
            "{group}/{id}: mean {mean:?}, min {:?} over {} iterations",
            self.fastest, self.measured
        );
    }
}

/// A named group of related benchmarks with shared configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // Criterion samples are batches; a handful of plain iterations keeps
        // `cargo bench` runtimes reasonable for this stand-in.
        self.sample_size = samples.clamp(1, 20);
        self
    }

    /// Accepted for API compatibility; the stand-in keeps measurement time
    /// implicit in the sample count.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up = time;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up);
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up);
        f(&mut bencher, input);
        bencher.report(&self.name, &id);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with `criterion_group!` expansions.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== benchmark group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(10, Duration::from_millis(200));
        f(&mut bencher);
        bencher.report("bench", &id);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::new(3, Duration::from_millis(1));
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert!(runs >= 3);
        assert_eq!(b.measured, 3);
        assert!(b.total >= b.fastest);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("demo");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
