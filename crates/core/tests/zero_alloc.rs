//! Pins the columnar-refactor allocation guarantee: steady-state pattern
//! growth performs **zero per-step heap allocations**.
//!
//! A counting global allocator wraps the system allocator; each measured
//! region warms its buffers once, snapshots the counter, re-runs the hot
//! loop many times, and asserts the counter did not move. Everything runs
//! inside ONE test function so unrelated test threads cannot pollute the
//! global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rgs_core::{GapConstraints, InstanceBuffer, Pattern, SupportComputer, SupportSet};
use seqdb::SequenceDatabase;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator; bumping an atomic
// counter on the side does not affect layout or aliasing guarantees.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the caller upholds `GlobalAlloc::alloc`'s contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: the caller upholds `GlobalAlloc::dealloc`'s contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the caller upholds `GlobalAlloc::realloc`'s contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: the caller upholds `GlobalAlloc::alloc_zeroed`'s contract.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `hot` once to warm every buffer, then `repeats` more times under
/// the counter and asserts not a single allocation happened.
///
/// The counter is process-global, and the libtest harness thread
/// occasionally performs a couple of allocations of its own at an
/// unpredictable moment — so a non-zero measurement is re-measured (twice)
/// before failing. A genuine per-step allocation in the hot loop shows up
/// in *every* attempt (at least `repeats` counts each), so the retry can
/// only absorb unrelated O(1) noise, never a real regression.
fn assert_zero_alloc(label: &str, repeats: usize, mut hot: impl FnMut()) {
    hot();
    let mut measured = 0;
    for _ in 0..3 {
        let before = allocations();
        for _ in 0..repeats {
            hot();
        }
        measured = allocations() - before;
        if measured == 0 {
            return;
        }
    }
    panic!("{label}: {measured} allocations in {repeats} warm iterations");
}

#[test]
fn steady_state_growth_allocates_nothing() {
    // A database with enough repetition that growth chains stay non-trivial
    // (the paper's running example, tripled).
    let db = SequenceDatabase::from_str_rows(&[
        "ABCACBDDBABCACBDDB",
        "ACDBACADDACDBACADD",
        "ABCABCAABBCCABCABC",
    ]);
    let index = seqdb::ShardedIndex::single(db.inverted_index());
    let sc = SupportComputer::borrowed(&db, &index);
    let pattern = Pattern::new(db.pattern_from_str("ACBD").unwrap());
    let events: Vec<_> = db.catalog().ids().collect();
    let first = pattern.events()[0];

    // 1. Landmark reconstruction through the double-buffered SoA
    //    InstanceBuffer: re-running the same reconstruction reuses both
    //    generations' arenas.
    let mut buffer = InstanceBuffer::new();
    let unbounded = GapConstraints::unbounded();
    assert_zero_alloc("InstanceBuffer::reconstruct", 100, || {
        buffer.reconstruct(&index, &pattern, &unbounded);
        assert!(!buffer.is_empty());
    });

    // 2. Constrained reconstruction shares the same loop and the same
    //    buffers.
    let constrained = GapConstraints::max_gap(4);
    assert_zero_alloc("InstanceBuffer::reconstruct (constrained)", 100, || {
        buffer.reconstruct(&index, &pattern, &constrained);
    });

    // 3. The compressed-instance growth chain (`supComp`) ping-ponging
    //    between two warm support sets — the exact shape of the DFS hot
    //    loop, where the miners recycle sets through a pool.
    let mut support = SupportSet::new();
    let mut spare = SupportSet::new();
    assert_zero_alloc("instance_growth_into chain", 100, || {
        sc.initial_support_set_into(first, &mut support);
        for &event in &pattern.events()[1..] {
            sc.instance_growth_into(&support, event, usize::MAX, &mut spare);
            std::mem::swap(&mut support, &mut spare);
        }
        assert!(!support.is_empty());
    });

    // 4. A fan of growth attempts from one frequent pattern across the whole
    //    alphabet — the per-node loop of GSgrow — into one recycled set.
    let base = sc.support_set(&Pattern::new(db.pattern_from_str("AC").unwrap()));
    let mut grown = SupportSet::new();
    assert_zero_alloc("per-node growth fan", 100, || {
        for &event in &events {
            sc.instance_growth_into(&base, event, usize::MAX, &mut grown);
        }
    });

    // 5. Shard-parallel growth: the same hot loops through a sharded
    //    prepared database, where every `next` query routes through the
    //    shard map. Routing is a binary search over the boundaries — no
    //    heap — so steady-state sharded growth must stay allocation-free
    //    too.
    let sharded = rgs_core::PreparedDb::new_sharded(&db, 3, 1);
    assert_eq!(sharded.shard_count(), 3);
    let ssc = sharded.support_computer();
    let mut support = SupportSet::new();
    let mut spare = SupportSet::new();
    assert_zero_alloc("sharded instance_growth_into chain", 100, || {
        ssc.initial_support_set_into(first, &mut support);
        for &event in &pattern.events()[1..] {
            ssc.instance_growth_into(&support, event, usize::MAX, &mut spare);
            std::mem::swap(&mut support, &mut spare);
        }
        assert!(!support.is_empty());
    });
    // Per-shard fragments (the two-level queue's grid unit) recycle their
    // buffer the same way.
    let mut fragment = SupportSet::new();
    assert_zero_alloc("sharded initial-support fragments", 100, || {
        for shard in 0..sharded.shard_count() {
            ssc.initial_support_fragment_into(first, shard, &mut fragment);
        }
    });
    let sharded_base = ssc.support_set(&Pattern::new(db.pattern_from_str("AC").unwrap()));
    assert_zero_alloc("sharded per-node growth fan", 100, || {
        for &event in &events {
            ssc.instance_growth_into(&sharded_base, event, usize::MAX, &mut grown);
        }
    });
}
