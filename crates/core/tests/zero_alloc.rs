//! Pins the columnar-refactor allocation guarantee: steady-state pattern
//! growth performs **zero per-step heap allocations**.
//!
//! A counting global allocator wraps the system allocator; each measured
//! region warms its buffers once, snapshots the counter, re-runs the hot
//! loop many times, and asserts the counter did not move. Everything runs
//! inside ONE test function so unrelated test threads cannot pollute the
//! global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rgs_core::{GapConstraints, InstanceBuffer, Pattern, SupportComputer, SupportSet};
use seqdb::SequenceDatabase;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `hot` once to warm every buffer, then `repeats` more times under
/// the counter and asserts not a single allocation happened.
fn assert_zero_alloc(label: &str, repeats: usize, mut hot: impl FnMut()) {
    hot();
    let before = allocations();
    for _ in 0..repeats {
        hot();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{label}: {} allocations in {repeats} warm iterations",
        after - before
    );
}

#[test]
fn steady_state_growth_allocates_nothing() {
    // A database with enough repetition that growth chains stay non-trivial
    // (the paper's running example, tripled).
    let db = SequenceDatabase::from_str_rows(&[
        "ABCACBDDBABCACBDDB",
        "ACDBACADDACDBACADD",
        "ABCABCAABBCCABCABC",
    ]);
    let index = db.inverted_index();
    let sc = SupportComputer::borrowed(&db, &index);
    let pattern = Pattern::new(db.pattern_from_str("ACBD").unwrap());
    let events: Vec<_> = db.catalog().ids().collect();
    let first = pattern.events()[0];

    // 1. Landmark reconstruction through the double-buffered SoA
    //    InstanceBuffer: re-running the same reconstruction reuses both
    //    generations' arenas.
    let mut buffer = InstanceBuffer::new();
    let unbounded = GapConstraints::unbounded();
    assert_zero_alloc("InstanceBuffer::reconstruct", 100, || {
        buffer.reconstruct(&index, &pattern, &unbounded);
        assert!(!buffer.is_empty());
    });

    // 2. Constrained reconstruction shares the same loop and the same
    //    buffers.
    let constrained = GapConstraints::max_gap(4);
    assert_zero_alloc("InstanceBuffer::reconstruct (constrained)", 100, || {
        buffer.reconstruct(&index, &pattern, &constrained);
    });

    // 3. The compressed-instance growth chain (`supComp`) ping-ponging
    //    between two warm support sets — the exact shape of the DFS hot
    //    loop, where the miners recycle sets through a pool.
    let mut support = SupportSet::new();
    let mut spare = SupportSet::new();
    assert_zero_alloc("instance_growth_into chain", 100, || {
        sc.initial_support_set_into(first, &mut support);
        for &event in &pattern.events()[1..] {
            sc.instance_growth_into(&support, event, usize::MAX, &mut spare);
            std::mem::swap(&mut support, &mut spare);
        }
        assert!(!support.is_empty());
    });

    // 4. A fan of growth attempts from one frequent pattern across the whole
    //    alphabet — the per-node loop of GSgrow — into one recycled set.
    let base = sc.support_set(&Pattern::new(db.pattern_from_str("AC").unwrap()));
    let mut grown = SupportSet::new();
    assert_zero_alloc("per-node growth fan", 100, || {
        for &event in &events {
            sc.instance_growth_into(&base, event, usize::MAX, &mut grown);
        }
    });
}
