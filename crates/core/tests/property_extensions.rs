//! Randomized property tests of the extension modules (gap-constrained
//! mining, top-k mining, maximal mining) on random small databases, driven
//! by a deterministic seeded PRNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rgs_core::reference::{max_non_overlapping, max_non_overlapping_constrained, pattern_set};
use rgs_core::{
    constrained_support, repetitive_support, GapConstraints, Miner, MiningConfig, MiningOutcome,
    Mode, TopKConfig,
};
use seqdb::{EventId, SequenceDatabase};

const LABELS: [&str; 4] = ["A", "B", "C", "D"];
const CASES: usize = 48;

fn mine(db: &SequenceDatabase, config: &MiningConfig, mode: Mode) -> MiningOutcome {
    Miner::new(db).from_config(config).mode(mode).run()
}

fn mine_constrained(
    db: &SequenceDatabase,
    config: &MiningConfig,
    mode: Mode,
    constraints: GapConstraints,
) -> MiningOutcome {
    Miner::new(db)
        .from_config(config)
        .mode(mode)
        .constraints(constraints)
        .run()
}

fn top_k_patterns(db: &SequenceDatabase, config: &TopKConfig) -> MiningOutcome {
    let mut miner = Miner::new(db)
        .min_sup(config.min_sup_floor)
        .mode(if config.closed_only {
            Mode::Closed
        } else {
            Mode::All
        })
        .top_k(config.k)
        .min_len(config.min_len);
    if let Some(len) = config.max_pattern_length {
        miner = miner.max_pattern_length(len);
    }
    miner.run()
}

/// Small random databases over up to 4 events: 1–4 sequences of length 0–9.
fn small_database(rng: &mut StdRng) -> SequenceDatabase {
    let rows: Vec<Vec<&str>> = (0..rng.gen_range(1..=4usize))
        .map(|_| {
            (0..rng.gen_range(0..=9usize))
                .map(|_| LABELS[rng.gen_range(0..LABELS.len())])
                .collect()
        })
        .collect();
    SequenceDatabase::from_token_rows(&rows)
}

fn small_pattern(rng: &mut StdRng) -> Vec<u32> {
    (0..rng.gen_range(1..=3usize))
        .map(|_| rng.gen_range(0..LABELS.len() as u32))
        .collect()
}

fn small_constraints(rng: &mut StdRng) -> GapConstraints {
    GapConstraints {
        min_gap: rng.gen_range(0..2u32),
        max_gap: if rng.gen_bool(0.5) {
            Some(rng.gen_range(0..4u32))
        } else {
            None
        },
        max_window: if rng.gen_bool(0.5) {
            Some(rng.gen_range(1..8u32))
        } else {
            None
        },
    }
}

fn to_pattern(db: &SequenceDatabase, raw: &[u32]) -> Option<Vec<EventId>> {
    raw.iter()
        .map(|&e| db.catalog().id(LABELS[e as usize]))
        .collect()
}

/// The greedy constrained support never exceeds the exact constrained
/// maximum, never exceeds the unconstrained support, and coincides with the
/// unconstrained support when the constraints are trivial.
#[test]
fn constrained_support_is_bounded_and_consistent() {
    let mut rng = StdRng::seed_from_u64(0x11FE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let raw = small_pattern(&mut rng);
        let constraints = small_constraints(&mut rng);
        if let Some(pattern) = to_pattern(&db, &raw) {
            let greedy = constrained_support(&db, &pattern, constraints);
            let exact = max_non_overlapping_constrained(&db, &pattern, constraints);
            let unconstrained = repetitive_support(&db, &pattern);
            assert!(
                greedy <= exact,
                "case {case}: greedy {greedy} > exact {exact}"
            );
            assert!(greedy <= unconstrained, "case {case}");
            assert_eq!(
                constrained_support(&db, &pattern, GapConstraints::unbounded()),
                unconstrained,
                "case {case}"
            );
            assert_eq!(
                max_non_overlapping_constrained(&db, &pattern, GapConstraints::unbounded()),
                max_non_overlapping(&db, &pattern),
                "case {case}"
            );
        }
    }
}

/// Constrained mining with unbounded constraints is GSgrow.
#[test]
fn constrained_mining_reduces_to_gsgrow_when_unbounded() {
    let mut rng = StdRng::seed_from_u64(0x22FE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(2..4u64);
        let plain = mine(&db, &MiningConfig::new(min_sup), Mode::All);
        let constrained = mine_constrained(
            &db,
            &MiningConfig::new(min_sup),
            Mode::All,
            GapConstraints::unbounded(),
        );
        assert_eq!(
            pattern_set(&plain.patterns),
            pattern_set(&constrained.patterns),
            "case {case}"
        );
    }
}

/// Every pattern reported by constrained mining meets the threshold under
/// its constraints, and the closed subset is consistent.
#[test]
fn constrained_mining_reports_true_supports() {
    let mut rng = StdRng::seed_from_u64(0x33FE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(2..4u64);
        let constraints = small_constraints(&mut rng);
        let config = MiningConfig::new(min_sup);
        let all = mine_constrained(&db, &config, Mode::All, constraints);
        for mp in &all.patterns {
            let sup = constrained_support(&db, mp.pattern.events(), constraints);
            assert_eq!(mp.support, sup, "case {case}");
            assert!(sup >= min_sup, "case {case}");
        }
        let closed = mine_constrained(&db, &config, Mode::Closed, constraints);
        assert!(closed.len() <= all.len(), "case {case}");
        for c in &closed.patterns {
            for other in &all.patterns {
                if other.pattern.is_proper_superpattern_of(&c.pattern) {
                    assert_ne!(other.support, c.support, "case {case}");
                }
            }
        }
    }
}

/// Top-k mining (non-closed, length >= 1) returns exactly the k largest
/// supports of the full frequent set.
#[test]
fn top_k_matches_sorted_exhaustive_mining() {
    let mut rng = StdRng::seed_from_u64(0x44FE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let k = rng.gen_range(1..8usize);
        let config = TopKConfig::new(k)
            .with_min_len(1)
            .including_non_closed()
            .with_min_sup_floor(1);
        let topk = top_k_patterns(&db, &config);
        let mut full = mine(&db, &MiningConfig::new(1), Mode::All);
        full.sort_for_report();
        let expected: Vec<u64> = full.patterns.iter().take(k).map(|mp| mp.support).collect();
        let got: Vec<u64> = topk.patterns.iter().map(|mp| mp.support).collect();
        assert_eq!(got, expected, "case {case}: k {k}");
    }
}

/// Top-k closed mining returns the k best supports of the closed set.
#[test]
fn top_k_closed_matches_sorted_closed_mining() {
    let mut rng = StdRng::seed_from_u64(0x55FE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let k = rng.gen_range(1..6usize);
        let config = TopKConfig::new(k).with_min_len(2).with_min_sup_floor(1);
        let topk = top_k_patterns(&db, &config);
        let mut closed = mine(&db, &MiningConfig::new(1), Mode::Closed);
        closed.patterns.retain(|mp| mp.pattern.len() >= 2);
        closed.sort_for_report();
        let expected: Vec<u64> = closed
            .patterns
            .iter()
            .take(k)
            .map(|mp| mp.support)
            .collect();
        let got: Vec<u64> = topk.patterns.iter().map(|mp| mp.support).collect();
        assert_eq!(got, expected, "case {case}: k {k}");
    }
}

/// Maximal mining: maximal ⊆ closed ⊆ all, no maximal pattern is subsumed
/// by a frequent pattern, and every frequent pattern is covered by some
/// maximal pattern.
#[test]
fn maximal_patterns_form_a_frontier() {
    let mut rng = StdRng::seed_from_u64(0x66FE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(2..4u64);
        let config = MiningConfig::new(min_sup);
        let all = mine(&db, &config, Mode::All);
        let closed = mine(&db, &config, Mode::Closed);
        let maximal = mine(&db, &config, Mode::Maximal);
        assert!(maximal.len() <= closed.len(), "case {case}");
        assert!(closed.len() <= all.len(), "case {case}");
        for mp in &maximal.patterns {
            assert!(closed.contains(&mp.pattern), "case {case}");
            for other in &all.patterns {
                assert!(
                    !other.pattern.is_proper_superpattern_of(&mp.pattern),
                    "case {case}"
                );
            }
        }
        for mp in &all.patterns {
            let covered = maximal
                .patterns
                .iter()
                .any(|m| mp.pattern == m.pattern || mp.pattern.is_subpattern_of(&m.pattern));
            assert!(
                covered,
                "case {case}: {:?} not covered by a maximal pattern",
                mp.pattern
            );
        }
    }
}
