//! Property-based tests of the extension modules (gap-constrained mining,
//! top-k mining, maximal mining) on random small databases.

use proptest::prelude::*;

use rgs_core::reference::{max_non_overlapping, max_non_overlapping_constrained, pattern_set};
use rgs_core::{
    constrained_support, mine_all, mine_all_constrained, mine_closed, mine_closed_constrained,
    mine_maximal, mine_top_k, repetitive_support, GapConstraints, MiningConfig, TopKConfig,
};
use seqdb::{EventId, SequenceDatabase};

/// Small random databases over up to 4 events: 1–4 sequences of length 0–9.
fn small_database() -> impl Strategy<Value = SequenceDatabase> {
    let sequence = prop::collection::vec(0u32..4, 0..=9);
    prop::collection::vec(sequence, 1..=4).prop_map(|rows| {
        let labels = ["A", "B", "C", "D"];
        let string_rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|row| row.iter().map(|&e| labels[e as usize]).collect())
            .collect();
        SequenceDatabase::from_token_rows(&string_rows)
    })
}

fn small_pattern() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..4, 1..=3)
}

fn small_constraints() -> impl Strategy<Value = GapConstraints> {
    (0u32..2, prop::option::of(0u32..4), prop::option::of(1u32..8)).prop_map(
        |(min_gap, max_gap, max_window)| GapConstraints {
            min_gap,
            max_gap,
            max_window,
        },
    )
}

fn to_pattern(db: &SequenceDatabase, raw: &[u32]) -> Option<Vec<EventId>> {
    let labels = ["A", "B", "C", "D"];
    raw.iter()
        .map(|&e| db.catalog().id(labels[e as usize]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The greedy constrained support never exceeds the exact constrained
    /// maximum, never exceeds the unconstrained support, and coincides with
    /// the unconstrained support when the constraints are trivial.
    #[test]
    fn constrained_support_is_bounded_and_consistent(
        db in small_database(),
        raw in small_pattern(),
        constraints in small_constraints(),
    ) {
        if let Some(pattern) = to_pattern(&db, &raw) {
            let greedy = constrained_support(&db, &pattern, constraints);
            let exact = max_non_overlapping_constrained(&db, &pattern, constraints);
            let unconstrained = repetitive_support(&db, &pattern);
            prop_assert!(greedy <= exact, "greedy {greedy} > exact {exact}");
            prop_assert!(greedy <= unconstrained);
            prop_assert_eq!(
                constrained_support(&db, &pattern, GapConstraints::unbounded()),
                unconstrained
            );
            // With only a minimum-gap constraint of zero (no active bound),
            // the exact maximum equals the brute-force unconstrained value.
            prop_assert_eq!(
                max_non_overlapping_constrained(&db, &pattern, GapConstraints::unbounded()),
                max_non_overlapping(&db, &pattern)
            );
        }
    }

    /// Constrained mining with unbounded constraints is GSgrow, and every
    /// pattern it reports carries its true constrained support.
    #[test]
    fn constrained_mining_reduces_to_gsgrow_when_unbounded(
        db in small_database(),
        min_sup in 2u64..4,
    ) {
        let plain = mine_all(&db, &MiningConfig::new(min_sup));
        let constrained = mine_all_constrained(
            &db,
            &MiningConfig::new(min_sup),
            GapConstraints::unbounded(),
        );
        prop_assert_eq!(pattern_set(&plain.patterns), pattern_set(&constrained.patterns));
    }

    /// Every pattern reported by constrained mining meets the threshold
    /// under its constraints, and the closed subset is consistent.
    #[test]
    fn constrained_mining_reports_true_supports(
        db in small_database(),
        min_sup in 2u64..4,
        constraints in small_constraints(),
    ) {
        let config = MiningConfig::new(min_sup);
        let all = mine_all_constrained(&db, &config, constraints);
        for mp in &all.patterns {
            let sup = constrained_support(&db, mp.pattern.events(), constraints);
            prop_assert_eq!(mp.support, sup);
            prop_assert!(sup >= min_sup);
        }
        let closed = mine_closed_constrained(&db, &config, constraints);
        prop_assert!(closed.len() <= all.len());
        for c in &closed.patterns {
            for other in &all.patterns {
                if other.pattern.is_proper_superpattern_of(&c.pattern) {
                    prop_assert_ne!(other.support, c.support);
                }
            }
        }
    }

    /// Top-k mining (non-closed, length >= 1) returns exactly the k largest
    /// supports of the full frequent set.
    #[test]
    fn top_k_matches_sorted_exhaustive_mining(db in small_database(), k in 1usize..8) {
        let config = TopKConfig::new(k)
            .with_min_len(1)
            .including_non_closed()
            .with_min_sup_floor(1);
        let topk = mine_top_k(&db, &config);
        let mut full = mine_all(&db, &MiningConfig::new(1));
        full.sort_for_report();
        let expected: Vec<u64> = full.patterns.iter().take(k).map(|mp| mp.support).collect();
        let got: Vec<u64> = topk.patterns.iter().map(|mp| mp.support).collect();
        prop_assert_eq!(got, expected);
    }

    /// Top-k closed mining returns the k best supports of the closed set.
    #[test]
    fn top_k_closed_matches_sorted_closed_mining(db in small_database(), k in 1usize..6) {
        let config = TopKConfig::new(k).with_min_len(2).with_min_sup_floor(1);
        let topk = mine_top_k(&db, &config);
        let mut closed = mine_closed(&db, &MiningConfig::new(1));
        closed.patterns.retain(|mp| mp.pattern.len() >= 2);
        closed.sort_for_report();
        let expected: Vec<u64> = closed.patterns.iter().take(k).map(|mp| mp.support).collect();
        let got: Vec<u64> = topk.patterns.iter().map(|mp| mp.support).collect();
        prop_assert_eq!(got, expected);
    }

    /// Maximal mining: maximal ⊆ closed ⊆ all, no maximal pattern is
    /// subsumed by a frequent pattern, and every frequent pattern is covered
    /// by some maximal pattern.
    #[test]
    fn maximal_patterns_form_a_frontier(db in small_database(), min_sup in 2u64..4) {
        let config = MiningConfig::new(min_sup);
        let all = mine_all(&db, &config);
        let closed = mine_closed(&db, &config);
        let maximal = mine_maximal(&db, &config);
        prop_assert!(maximal.len() <= closed.len());
        prop_assert!(closed.len() <= all.len());
        for mp in &maximal.patterns {
            prop_assert!(closed.contains(&mp.pattern));
            for other in &all.patterns {
                prop_assert!(!other.pattern.is_proper_superpattern_of(&mp.pattern));
            }
        }
        for mp in &all.patterns {
            let covered = maximal
                .patterns
                .iter()
                .any(|m| mp.pattern == m.pattern || mp.pattern.is_subpattern_of(&m.pattern));
            prop_assert!(covered, "{:?} not covered by a maximal pattern", mp.pattern);
        }
    }
}
