//! Seeded corruption sweep over **every section** of a sharded (v2)
//! snapshot image: `seqdb::snapshot::verify` must flag each mutation and
//! must never panic, distinguishing pure bit rot (checksum breakage with
//! intact sections) from resealed images whose payloads violate the
//! cross-section invariants.

use rgs_core::PreparedDb;
use seqdb::snapshot::verify::{self, ViolationKind};
use seqdb::snapshot::{checksum_of, section_id};
use seqdb::SequenceDatabase;

/// Builds a format-v2 image via the real writer path and returns its bytes.
fn image_bytes(shards: usize) -> Vec<u8> {
    let db = SequenceDatabase::from_str_rows(&[
        "ABCACBDDB",
        "ACDBACADD",
        "BCAADBC",
        "DDAACB",
        "CABDC",
        "BBADCA",
    ]);
    let prepared = PreparedDb::from_database_sharded(db, shards, 1);
    let path = std::env::temp_dir().join(format!(
        "rgs-mutation-sweep-{}-{shards}.snap",
        std::process::id()
    ));
    prepared.write_snapshot(&path).expect("write snapshot");
    let bytes = std::fs::read(&path).expect("read image back");
    std::fs::remove_file(&path).ok();
    bytes
}

/// One row of the section table (format spec: table at byte 64, 32-byte
/// entries `{id: u32, elem_size: u32, offset: u64, byte_len: u64, count: u64}`).
struct Section {
    id: u32,
    offset: usize,
    byte_len: usize,
    count: u64,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("u32 window"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("u64 window"))
}

fn sections(bytes: &[u8]) -> Vec<Section> {
    let count = read_u32(bytes, 32) as usize;
    (0..count)
        .map(|i| {
            let base = 64 + i * 32;
            Section {
                id: read_u32(bytes, base),
                offset: read_u64(bytes, base + 8) as usize,
                byte_len: read_u64(bytes, base + 16) as usize,
                count: read_u64(bytes, base + 24),
            }
        })
        .collect()
}

/// Recomputes the checksum so only *semantic* (layout) damage remains.
fn reseal(bytes: &mut [u8]) {
    let sum = checksum_of(bytes);
    bytes[24..32].copy_from_slice(&sum.to_le_bytes());
}

/// A tiny deterministic PRNG (splitmix64) so the sweep is reproducible
/// without pulling rand into the corruption logic.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn every_written_image_verifies_clean_across_shard_counts() {
    // Shard count 1 exercises the v1 (flat) encoding, 2..=7 the v2
    // sharded encoding with every shard-table shape the writer produces.
    for shards in 1..=7usize {
        let report = verify::verify_bytes(&image_bytes(shards));
        assert!(
            report.is_clean(),
            "{shards} shards: fresh image rejected: {report:?}"
        );
    }
}

#[test]
fn bit_rot_in_every_section_is_reported_as_checksum_breakage() {
    let image = image_bytes(3);
    let table = sections(&image);
    assert!(
        table.iter().any(|s| s.id == section_id::SHARD_TABLE),
        "fixture must be a sharded (v2) image"
    );
    let mut rng = 0xD1CE_u64;
    for section in &table {
        if section.byte_len == 0 {
            continue;
        }
        // First, last, and a seeded interior byte of the payload.
        let interior = (splitmix(&mut rng) as usize) % section.byte_len;
        for at in [0, section.byte_len - 1, interior] {
            let mut mutated = image.clone();
            mutated[section.offset + at] ^= 0x5A;
            let report = verify::verify_bytes(&mutated);
            assert!(
                !report.is_clean(),
                "section {} ({}): flip at +{at} went unnoticed",
                section.id,
                section_id::name(section.id),
            );
            assert!(
                report.has(ViolationKind::Checksum),
                "section {} ({}): flip at +{at} must at least break the checksum",
                section.id,
                section_id::name(section.id),
            );
        }
    }
    // The unmutated image stays clean (the sweep above really is the cause).
    assert!(verify::verify_bytes(&image).is_clean());
}

#[test]
fn checksum_field_corruption_is_distinguished_from_layout_damage() {
    let image = image_bytes(2);
    // Corrupting the checksum *field* is pure bit rot: sections intact.
    let mut rotten = image.clone();
    rotten[24] ^= 0xFF;
    let report = verify::verify_bytes(&rotten);
    assert!(
        report.checksum_broken_only(),
        "field corruption is rot-only"
    );
    assert!(!report.has(ViolationKind::Layout));

    // A resealed semantic mutation is the opposite: checksum passes, layout
    // does not, so the rot-only classifier must reject it.
    let table = sections(&image);
    let meta = table
        .iter()
        .find(|s| s.id == section_id::META)
        .expect("META section");
    let mut mutated = image;
    let wrong = read_u64(&mutated, meta.offset) + 1;
    mutated[meta.offset..meta.offset + 8].copy_from_slice(&wrong.to_le_bytes());
    reseal(&mut mutated);
    let report = verify::verify_bytes(&mutated);
    assert!(!report.is_clean());
    assert!(!report.has(ViolationKind::Checksum), "image was resealed");
    assert!(!report.checksum_broken_only());
}

/// A targeted, guaranteed-detectable corruption for each section kind, keyed
/// by section id. Returns `false` when the section is too small to mutate.
fn corrupt_section(bytes: &mut [u8], section: &Section) -> bool {
    let at = section.offset;
    match section.id {
        // num_sequences + 1: every per-sequence count check mismatches.
        section_id::META => {
            let wrong = read_u64(bytes, at) + 1;
            bytes[at..at + 8].copy_from_slice(&wrong.to_le_bytes());
        }
        // An event id far past the catalog: out-of-range arena entry.
        section_id::STORE_EVENTS => {
            bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        // A non-monotone CSR interior: offsets must ascend.
        section_id::STORE_OFFSETS => {
            let mid = at + (section.count as usize / 2) * 4;
            bytes[mid..mid + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        // A label length prefix pointing far past the payload: truncation.
        section_id::CATALOG => {
            bytes[at + 4..at + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        // A count that disagrees with the recounted arena histogram.
        section_id::EVENT_COUNTS => {
            let wrong = read_u64(bytes, at) + 1;
            bytes[at..at + 8].copy_from_slice(&wrong.to_le_bytes());
        }
        // Swapping the first two entries breaks the ascending-id order.
        section_id::EVENT_ORDER => {
            if section.count < 2 {
                return false;
            }
            let (a, b) = (read_u32(bytes, at), read_u32(bytes, at + 4));
            bytes[at..at + 4].copy_from_slice(&b.to_le_bytes());
            bytes[at + 4..at + 8].copy_from_slice(&a.to_le_bytes());
        }
        // The sentinel no longer equals num_sequences: broken partition.
        section_id::SHARD_TABLE => {
            let last = at + (section.count as usize - 1) * 8;
            let wrong = read_u64(bytes, last) + 1;
            bytes[last..last + 8].copy_from_slice(&wrong.to_le_bytes());
        }
        // Per-shard sections, keyed by their role within the triple.
        id => {
            let Some(shard) = section_id::shard_of(id) else {
                panic!("unexpected section id {id} in fixture image");
            };
            if id == section_id::shard_store_offsets(shard) {
                // Last rebased offset no longer matches the global window.
                let last = at + (section.count as usize - 1) * 4;
                let wrong = read_u32(bytes, last) + 1;
                bytes[last..last + 4].copy_from_slice(&wrong.to_le_bytes());
            } else if id == section_id::shard_index_offsets(shard) {
                // CSR no longer ends at the positions count.
                let last = at + (section.count as usize - 1) * 4;
                let wrong = read_u32(bytes, last) + 1;
                bytes[last..last + 4].copy_from_slice(&wrong.to_le_bytes());
            } else {
                // A 0 position: positions are 1-based by construction.
                if section.count == 0 {
                    return false;
                }
                bytes[at..at + 4].copy_from_slice(&0u32.to_le_bytes());
            }
        }
    }
    true
}

#[test]
fn resealed_semantic_damage_in_every_section_is_reported_as_layout_or_structure() {
    for shards in [2, 3] {
        let image = image_bytes(shards);
        let mut sweep = 0usize;
        for section in sections(&image) {
            let mut mutated = image.clone();
            if !corrupt_section(&mut mutated, &section) {
                continue;
            }
            reseal(&mut mutated);
            let report = verify::verify_bytes(&mutated);
            let name = section_id::name(section.id);
            assert!(
                !report.is_clean(),
                "{shards} shards, section {} ({name}): resealed damage went unnoticed",
                section.id,
            );
            assert!(
                !report.has(ViolationKind::Checksum),
                "{shards} shards, section {} ({name}): image was resealed",
                section.id,
            );
            assert!(
                report.has(ViolationKind::Layout) || report.has(ViolationKind::Structure),
                "{shards} shards, section {} ({name}): expected a layout/structure finding",
                section.id,
            );
            sweep += 1;
        }
        assert!(sweep >= 8, "sweep covered only {sweep} sections");
    }
}
