//! Seeded property test pinning the columnar-storage refactor: the flat
//! CSR layouts (SeqStore + CSR inverted index + SoA instance buffers) must
//! be **observationally identical** to the seed's nested layout
//! (`Vec<Sequence>` rows, `Vec<Vec<Vec<u32>>>` posting lists).
//!
//! The old layout is reimplemented here as a reference (`NaiveIndex` plus a
//! naive greedy instance growth over it); random databases are generated
//! from a fixed seed and compared query by query, and whole mining runs
//! across all four modes ± gap constraints are re-verified support by
//! support against the naive layout.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rgs_core::{GapConstraints, Miner, Mode, PreparedDb};
use seqdb::{DatabaseBuilder, EventId, SequenceDatabase};

/// The seed's inverted-index layout: `positions[seq][event] = Vec<u32>`,
/// one heap allocation per non-empty posting list.
struct NaiveIndex {
    positions: Vec<Vec<Vec<u32>>>,
}

impl NaiveIndex {
    fn build(db: &SequenceDatabase) -> Self {
        let num_events = db.num_events();
        let mut positions = Vec::with_capacity(db.num_sequences());
        for sequence in db.sequences() {
            let mut per_event: Vec<Vec<u32>> = vec![Vec::new(); num_events];
            for (pos, event) in sequence.iter_positions() {
                per_event[event.index()].push(pos as u32);
            }
            positions.push(per_event);
        }
        Self { positions }
    }

    fn event_positions(&self, seq: usize, event: EventId) -> Option<&[u32]> {
        self.positions
            .get(seq)?
            .get(event.index())
            .map(Vec::as_slice)
    }

    fn next(&self, seq: usize, event: EventId, lowest: u32) -> Option<u32> {
        let list = self.event_positions(seq, event)?;
        let idx = list.partition_point(|&p| p <= lowest);
        list.get(idx).copied()
    }
}

/// Constrained `supComp` over the naive layout: the same greedy leftmost
/// instance growth as Algorithms 1–2, carrying compressed `(seq, first,
/// last)` triples in per-sequence lists (the pre-refactor shape).
fn naive_support(
    db: &SequenceDatabase,
    index: &NaiveIndex,
    pattern: &[EventId],
    constraints: GapConstraints,
) -> u64 {
    let Some((&first, rest)) = pattern.split_first() else {
        return 0;
    };
    let mut total = 0u64;
    for seq in 0..db.num_sequences() {
        let Some(seed_positions) = index.event_positions(seq, first) else {
            continue;
        };
        // (first, last) per instance of the growing prefix, leftmost order.
        let mut current: Vec<(u32, u32)> = seed_positions.iter().map(|&p| (p, p)).collect();
        for &event in rest {
            let mut grown: Vec<(u32, u32)> = Vec::new();
            let mut last_position = 0u32;
            for &(inst_first, inst_last) in &current {
                let lowest = last_position.max(constraints.lowest_exclusive(inst_last));
                let highest = constraints.highest_inclusive(inst_first, inst_last);
                match index.next(seq, event, lowest) {
                    Some(pos) if pos <= highest => {
                        last_position = pos;
                        grown.push((inst_first, pos));
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            current = grown;
            if current.is_empty() {
                break;
            }
        }
        total += current.len() as u64;
    }
    total
}

fn random_database(rng: &mut StdRng) -> SequenceDatabase {
    let alphabet = rng.gen_range(2usize..=5);
    let labels: Vec<String> = (0..alphabet)
        .map(|i| format!("{}", (b'A' + i as u8) as char))
        .collect();
    let mut builder = DatabaseBuilder::new();
    let rows = rng.gen_range(2usize..=5);
    for _ in 0..rows {
        let len = rng.gen_range(4usize..=18);
        let tokens: Vec<&str> = (0..len)
            .map(|_| labels[rng.gen_range(0usize..alphabet)].as_str())
            .collect();
        builder.push_tokens(tokens);
    }
    builder.finish()
}

#[test]
fn csr_index_matches_the_nested_layout_query_by_query() {
    let mut rng = StdRng::seed_from_u64(0xC0_1D_5E_ED);
    for _ in 0..25 {
        let db = random_database(&mut rng);
        let naive = NaiveIndex::build(&db);
        let csr = db.inverted_index();
        for seq in 0..db.num_sequences() {
            for event in db.catalog().ids() {
                assert_eq!(
                    naive.event_positions(seq, event),
                    csr.event_positions(seq, event),
                    "posting list of {event:?} in sequence {seq}"
                );
                for _ in 0..8 {
                    let lowest = rng.gen_range(0u32..=20);
                    assert_eq!(
                        naive.next(seq, event, lowest),
                        csr.next(seq, event, lowest),
                        "next({seq}, {event:?}, {lowest})"
                    );
                }
            }
        }
        // Out-of-range semantics must match too.
        let ghost = EventId(db.num_events() as u32 + 3);
        assert_eq!(
            naive.event_positions(0, ghost),
            csr.event_positions(0, ghost)
        );
        assert_eq!(
            naive.event_positions(db.num_sequences() + 1, EventId(0)),
            csr.event_positions(db.num_sequences() + 1, EventId(0)),
        );
    }
}

#[test]
fn mining_outputs_match_the_nested_layout_across_modes_and_constraints() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    let constraint_cases = [
        GapConstraints::unbounded(),
        GapConstraints::max_gap(2),
        GapConstraints::max_window(6),
    ];
    for round in 0..12 {
        let db = random_database(&mut rng);
        let naive = NaiveIndex::build(&db);
        let prepared = PreparedDb::new(&db);
        for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
            for constraints in constraint_cases {
                let lazy = Miner::new(&db)
                    .min_sup(2)
                    .mode(mode)
                    .constraints(constraints)
                    .run();
                let snapshot = prepared
                    .miner()
                    .min_sup(2)
                    .mode(mode)
                    .constraints(constraints)
                    .run();
                // Lazily-prepared and snapshot runs agree bit for bit.
                assert_eq!(
                    lazy.patterns,
                    snapshot.patterns,
                    "round {round}, {mode:?}, {}",
                    constraints.describe()
                );
                // Every reported support re-derives on the nested layout.
                for mined in &lazy.patterns {
                    assert_eq!(
                        mined.support,
                        naive_support(&db, &naive, mined.pattern.events(), constraints),
                        "round {round}, {mode:?}, {} — support of {:?}",
                        constraints.describe(),
                        mined.pattern
                    );
                }
            }
        }
    }
}

#[test]
fn reconstructed_landmarks_compress_back_to_the_reported_instances() {
    // The SoA buffer's full landmarks must compress instance by instance to
    // the (seq, first, last) triples the engine reports.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..10 {
        let db = random_database(&mut rng);
        let outcome = Miner::new(&db)
            .min_sup(2)
            .mode(Mode::All)
            .keep_support_sets()
            .run();
        let index = seqdb::ShardedIndex::single(db.inverted_index());
        for mined in &outcome.patterns {
            let set = mined.support_set.as_ref().expect("requested");
            let landmarks = set.reconstruct_landmarks(&index, &mined.pattern);
            assert_eq!(landmarks.len() as u64, mined.support);
            for (landmark, instance) in landmarks.iter().zip(set.instances()) {
                assert_eq!(landmark.compress(), *instance, "{:?}", mined.pattern);
            }
        }
    }
}
