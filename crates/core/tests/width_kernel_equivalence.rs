//! Mining output is bit-identical across event-column widths.
//!
//! The narrow-column refactor changes how events are *stored* (2 bytes
//! when the alphabet fits `u16`), and the batched cursor kernels change
//! how posting rows are *probed* — neither may change a single emitted
//! pattern. This suite pins that: the same database mined narrow and
//! widened (`SequenceDatabase::widen_store`) produces identical pattern
//! lists across all four modes, with and without gap constraints, and
//! through a snapshot round trip (where the writer re-narrows a wide
//! column on the way out).

use rgs_core::{GapConstraints, Miner, Mode, PreparedDb};
use seqdb::SequenceDatabase;

/// A tiny deterministic LCG (no external RNG crates in this workspace).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(
            seed.wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493),
        )
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_db(rng: &mut Lcg, rows: usize, alphabet: u64, max_len: u64) -> SequenceDatabase {
    let strings: Vec<String> = (0..rows)
        .map(|_| {
            let len = rng.below(max_len + 1) as usize;
            (0..len)
                .map(|_| char::from(b'A' + rng.below(alphabet) as u8))
                .collect()
        })
        .collect();
    let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
    SequenceDatabase::from_str_rows(&refs)
}

const MODES: [Mode; 4] = [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK];

fn constraint_grid() -> [GapConstraints; 4] {
    [
        GapConstraints::unbounded(),
        GapConstraints::max_gap(1),
        GapConstraints::gap_range(1, 3),
        GapConstraints::max_window(4),
    ]
}

#[test]
fn narrow_and_wide_stores_mine_bit_identically() {
    for seed in 0..6u64 {
        let mut rng = Lcg::new(seed);
        let narrow_db = random_db(&mut rng, 6, 4, 20);
        let mut wide_db = narrow_db.clone();
        wide_db.widen_store();
        if narrow_db.total_length() > 0 {
            assert!(
                narrow_db.store().is_narrow(),
                "small alphabet builds narrow"
            );
        }
        assert!(!wide_db.store().is_narrow(), "widen_store forces u32");

        for mode in MODES {
            for constraints in constraint_grid() {
                let narrow = Miner::new(&narrow_db)
                    .min_sup(2)
                    .mode(mode)
                    .constraints(constraints)
                    .run();
                let wide = Miner::new(&wide_db)
                    .min_sup(2)
                    .mode(mode)
                    .constraints(constraints)
                    .run();
                assert_eq!(
                    narrow.patterns,
                    wide.patterns,
                    "seed {seed}, {mode:?}, {} diverges across widths",
                    constraints.describe()
                );
            }
        }
    }
}

#[test]
fn the_running_example_is_width_invariant_with_landmarks_retained() {
    // Table III's database, with support sets materialized — landmark
    // reconstruction exercises the InstanceBuffer kernel path too.
    let narrow_db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
    let mut wide_db = narrow_db.clone();
    wide_db.widen_store();
    for mode in [Mode::All, Mode::Closed] {
        for constraints in constraint_grid() {
            let narrow = Miner::new(&narrow_db)
                .min_sup(2)
                .mode(mode)
                .constraints(constraints)
                .keep_support_sets()
                .run();
            let wide = Miner::new(&wide_db)
                .min_sup(2)
                .mode(mode)
                .constraints(constraints)
                .keep_support_sets()
                .run();
            assert_eq!(narrow.patterns, wide.patterns);
        }
    }
}

#[test]
fn snapshot_round_trips_re_narrow_wide_columns_and_stay_bit_identical() {
    let mut rng = Lcg::new(0xA11CE);
    let narrow_db = random_db(&mut rng, 5, 3, 16);
    let mut wide_db = narrow_db.clone();
    wide_db.widen_store();

    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let narrow_path = dir.join(format!("rgs-width-eq-{tag}-narrow.snap"));
    let wide_path = dir.join(format!("rgs-width-eq-{tag}-wide.snap"));

    let narrow_prepared = PreparedDb::new(&narrow_db);
    let wide_prepared = PreparedDb::new(&wide_db);
    narrow_prepared
        .write_snapshot(&narrow_path)
        .expect("write narrow");
    wide_prepared
        .write_snapshot(&wide_path)
        .expect("write wide");

    let from_narrow = PreparedDb::open_snapshot(&narrow_path).expect("open narrow");
    let from_wide = PreparedDb::open_snapshot(&wide_path).expect("open wide");
    // Narrowest-fit writing: both images map back with a 2-byte arena.
    assert!(from_narrow.database().store().is_narrow());
    assert!(
        from_wide.database().store().is_narrow(),
        "a wide-but-u16-fit column must be re-narrowed on write"
    );

    for mode in MODES {
        let expected = narrow_prepared.miner().min_sup(2).mode(mode).run();
        for reopened in [&from_narrow, &from_wide] {
            let cold = reopened.miner().min_sup(2).mode(mode).run();
            assert_eq!(expected.patterns, cold.patterns, "{mode:?} diverges");
        }
    }

    std::fs::remove_file(&narrow_path).ok();
    std::fs::remove_file(&wide_path).ok();
}

#[test]
fn forced_scalar_and_vectorized_backends_mine_bit_identically() {
    // The vectorized growth kernels are an *execution strategy*, never a
    // semantic: pinning the process to the scalar reference kernels (the
    // `RGS_FORCE_SCALAR` escape hatch) must reproduce every pattern AND
    // every deterministic search counter — visited nodes, growth calls,
    // closure filters, landmark prunes — across the full mode x constraint
    // grid. Only wall-clock time may differ.
    let strip_elapsed = |mut outcome: rgs_core::MiningOutcome| {
        outcome.stats.elapsed_seconds = 0.0;
        outcome
    };
    for seed in 0..2u64 {
        let mut rng = Lcg::new(0x5CA1A7 ^ seed);
        // One long, heavily skewed row keeps the dominant event's posting
        // row past 64 positions — the whole-block fast path's minimum —
        // while the high threshold below keeps the (debug-build) search
        // tree tiny: only the dominant event's short self-extension chain
        // stays frequent.
        let mut strings: Vec<String> = vec![(0..120)
            .map(|_| {
                if rng.below(10) < 9 {
                    'A'
                } else {
                    char::from(b'B' + rng.below(3) as u8)
                }
            })
            .collect()];
        for _ in 0..2 {
            strings.push(
                (0..24)
                    .map(|_| char::from(b'A' + rng.below(4) as u8))
                    .collect(),
            );
        }
        let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
        let db = SequenceDatabase::from_str_rows(&refs);

        for mode in MODES {
            for constraints in constraint_grid() {
                let run = || {
                    strip_elapsed(
                        Miner::new(&db)
                            .min_sup(24)
                            .mode(mode)
                            .constraints(constraints)
                            .run(),
                    )
                };
                seqdb::simd::force_backend(Some(seqdb::KernelBackend::Scalar));
                let scalar = run();
                let mut vectorized = Vec::new();
                for backend in seqdb::KernelBackend::all() {
                    if !backend.is_available() {
                        continue;
                    }
                    seqdb::simd::force_backend(Some(backend));
                    vectorized.push((backend, run()));
                }
                seqdb::simd::force_backend(None);
                for (backend, outcome) in vectorized {
                    assert_eq!(
                        scalar,
                        outcome,
                        "seed {seed}, {mode:?}, {} diverges between scalar and {}",
                        constraints.describe(),
                        backend.name(),
                    );
                }
            }
        }
    }
}
