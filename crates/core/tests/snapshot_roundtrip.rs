//! Round-trip pinning for prepared-database snapshots: mining a reopened
//! image must be **bit-identical** to mining the in-memory preparation, in
//! every mode, with and without gap constraints — and corrupted images
//! must never panic their way into the engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rgs_core::{GapConstraints, Miner, Mode, PreparedDb};
use seqdb::{DatabaseBuilder, SequenceDatabase};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rgs-roundtrip-{}-{tag}.snap", std::process::id()))
}

/// A seeded random database over a small alphabet (dense repetition, the
/// regime where closed mining actually prunes).
fn random_db(seed: u64) -> SequenceDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = rng.gen_range(3..7usize);
    let rows = rng.gen_range(2..7usize);
    let mut builder = DatabaseBuilder::new();
    for _ in 0..rows {
        let len = rng.gen_range(0..16usize);
        let labels: Vec<String> = (0..len)
            .map(|_| char::from(b'A' + rng.gen_range(0..alphabet as u32) as u8).to_string())
            .collect();
        builder.push_tokens(labels.iter().map(String::as_str));
    }
    builder.finish()
}

/// All mode x constraint combinations of the acceptance criterion.
fn workloads() -> Vec<(Mode, GapConstraints)> {
    let mut combos = Vec::new();
    for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
        for constraints in [GapConstraints::unbounded(), GapConstraints::max_gap(2)] {
            combos.push((mode, constraints));
        }
    }
    combos
}

#[test]
fn mining_a_reopened_snapshot_is_bit_identical_across_modes_and_constraints() {
    for seed in 0..12u64 {
        let db = random_db(seed);
        let prepared = PreparedDb::new(&db);
        let path = temp_path(&format!("modes-{seed}"));
        prepared.write_snapshot(&path).expect("write snapshot");
        let reopened = PreparedDb::open_snapshot(&path).expect("open snapshot");
        assert_eq!(reopened, prepared, "seed {seed}: snapshot state diverged");

        for (mode, constraints) in workloads() {
            // min_sup 1 with Mode::All enumerates every distinct
            // subsequence — exponential on dense rows — so the uncapped
            // sweep starts at 2 and a capped run covers the threshold-1
            // corner (caps apply identically to both sides).
            for min_sup in [2, 3] {
                let fresh = prepared
                    .miner()
                    .min_sup(min_sup)
                    .mode(mode)
                    .constraints(constraints)
                    .max_pattern_length(6)
                    .keep_support_sets()
                    .run();
                let cold = reopened
                    .miner()
                    .min_sup(min_sup)
                    .mode(mode)
                    .constraints(constraints)
                    .max_pattern_length(6)
                    .keep_support_sets()
                    .run();
                assert_eq!(
                    fresh.patterns,
                    cold.patterns,
                    "seed {seed}, {mode:?} with {} at min_sup {min_sup}",
                    constraints.describe()
                );
                assert_eq!(fresh.truncated, cold.truncated);
            }

            // The min_sup = 1 corner, bounded by a uniform pattern cap.
            let fresh = prepared
                .miner()
                .min_sup(1)
                .mode(mode)
                .constraints(constraints)
                .max_pattern_length(4)
                .max_patterns(200)
                .run();
            let cold = reopened
                .miner()
                .min_sup(1)
                .mode(mode)
                .constraints(constraints)
                .max_pattern_length(4)
                .max_patterns(200)
                .run();
            assert_eq!(
                fresh.patterns,
                cold.patterns,
                "seed {seed}, {mode:?} with {} at min_sup 1 (capped)",
                constraints.describe()
            );
            assert_eq!(fresh.truncated, cold.truncated);
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn snapshot_streams_and_parallel_runs_match_the_in_memory_engine() {
    let db = random_db(99);
    let prepared = PreparedDb::new(&db);
    let path = temp_path("stream");
    prepared.write_snapshot(&path).expect("write snapshot");
    let reopened = PreparedDb::open_snapshot(&path).expect("open snapshot");

    let expected = prepared.miner().min_sup(2).mode(Mode::Closed).run();

    // Pull-based stream over the image-backed snapshot.
    let session = reopened.miner().min_sup(2).mode(Mode::Closed).session();
    let streamed: Vec<_> = session.stream().collect();
    assert_eq!(streamed, expected.patterns);

    // Parallel fan-out shares the mapped arenas across workers.
    let parallel = reopened
        .miner()
        .min_sup(2)
        .mode(Mode::Closed)
        .threads(4)
        .run();
    assert_eq!(parallel.patterns, expected.patterns);

    // Miner::from_snapshot is the one-call cold-start path.
    let via_miner = Miner::from_snapshot(&path)
        .expect("open")
        .min_sup(2)
        .mode(Mode::Closed)
        .run();
    assert_eq!(via_miner.patterns, expected.patterns);
    std::fs::remove_file(&path).ok();
}

#[test]
fn mining_reports_match_between_fresh_and_reopened_snapshots() {
    let db = random_db(7);
    let prepared = PreparedDb::new(&db);
    let path = temp_path("report");
    prepared.write_snapshot(&path).expect("write snapshot");
    let reopened = PreparedDb::open_snapshot(&path).expect("open snapshot");

    let mut fresh_sink = rgs_core::CountSink::new();
    let fresh = prepared
        .miner()
        .min_sup(2)
        .mode(Mode::Closed)
        .run_with_sink(&mut fresh_sink);
    let mut cold_sink = rgs_core::CountSink::new();
    let cold = reopened
        .miner()
        .min_sup(2)
        .mode(Mode::Closed)
        .run_with_sink(&mut cold_sink);

    // Everything but wall-clock time must agree exactly.
    assert_eq!(fresh.emitted, cold.emitted);
    assert_eq!(fresh.truncated, cold.truncated);
    assert_eq!(fresh.cancelled, cold.cancelled);
    assert_eq!(fresh.stats.visited, cold.stats.visited);
    assert_eq!(fresh.stats.instance_growths, cold.stats.instance_growths);
    assert_eq!(
        fresh.stats.non_closed_filtered,
        cold.stats.non_closed_filtered
    );
    assert_eq!(
        fresh.stats.landmark_border_prunes,
        cold.stats.landmark_border_prunes
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn rewriting_a_snapshot_onto_its_own_source_file_is_safe() {
    // The write path is atomic (temp file + rename), so serializing a
    // snapshot whose arenas are borrowed windows into a mapping of the
    // destination file must neither crash nor corrupt the image — and a
    // snapshot opened *before* the overwrite keeps reading the old inode.
    let db = random_db(42);
    let prepared = PreparedDb::new(&db);
    let path = temp_path("self-overwrite");
    prepared.write_snapshot(&path).expect("initial write");

    let reopened = PreparedDb::open_snapshot(&path).expect("open");
    let before = reopened.miner().min_sup(2).mode(Mode::Closed).run();
    reopened
        .write_snapshot(&path)
        .expect("rewrite onto own source");

    // The pre-overwrite snapshot still reads its (old) mapping...
    let after = reopened.miner().min_sup(2).mode(Mode::Closed).run();
    assert_eq!(before.patterns, after.patterns);
    // ...and the rewritten file is a valid, equivalent image.
    let rewritten = PreparedDb::open_snapshot(&path).expect("open rewritten");
    assert_eq!(rewritten, reopened);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_prepared_snapshots_error_and_never_panic() {
    let db = random_db(3);
    let prepared = PreparedDb::new(&db);
    let path = temp_path("corrupt");
    prepared.write_snapshot(&path).expect("write snapshot");
    let pristine = std::fs::read(&path).expect("read image");
    std::fs::remove_file(&path).ok();

    let mut rng = StdRng::seed_from_u64(0xbad_5eed);
    for case in 0..300 {
        let mut tampered = pristine.clone();
        match case % 3 {
            // Single bit flip anywhere.
            0 => {
                let byte = rng.gen_range(0..tampered.len());
                let bit = rng.gen_range(0..8u32);
                tampered[byte] ^= 1 << bit;
            }
            // Truncation to a random prefix.
            1 => {
                let len = rng.gen_range(0..tampered.len());
                tampered.truncate(len);
            }
            // A burst of random bytes.
            _ => {
                let start = rng.gen_range(0..tampered.len());
                let len = rng.gen_range(1..32usize).min(tampered.len() - start);
                for b in &mut tampered[start..start + len] {
                    *b = rng.gen_range(0..=255u32) as u8;
                }
                if tampered == pristine {
                    continue;
                }
            }
        }
        let case_path = temp_path("corrupt-case");
        std::fs::write(&case_path, &tampered).expect("write tampered");
        let result = PreparedDb::open_snapshot(&case_path);
        std::fs::remove_file(&case_path).ok();
        assert!(result.is_err(), "corruption case {case} was accepted");
    }
}

#[test]
fn cross_section_inconsistencies_are_rejected() {
    // Build an image whose sections are individually valid but mutually
    // inconsistent: meta claims one more sequence than the store holds.
    use seqdb::snapshot::{catalog_to_bytes, section_id, SectionPayload, SnapshotWriter};

    let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
    let prepared = PreparedDb::new(&db);
    // A single-shard preparation's shard-0 index is exactly the flat index.
    let index = prepared.index().shard(0);
    let catalog_bytes = catalog_to_bytes(db.catalog());
    let counts: Vec<u64> = db
        .catalog()
        .ids()
        .map(|e| prepared.occurrence_count(e))
        .collect();
    let order: Vec<seqdb::EventId> = prepared.frequent_events(1);
    let wide_events = db.store().event_column().to_wide_vec();

    let meta = [
        db.num_sequences() as u64 + 1, // lie
        db.num_events() as u64,
        db.total_length() as u64,
    ];
    let mut writer = SnapshotWriter::new();
    writer
        .section(section_id::META, SectionPayload::U64s(&meta))
        .section(
            section_id::STORE_EVENTS,
            SectionPayload::EventIds(&wide_events),
        )
        .section(
            section_id::STORE_OFFSETS,
            SectionPayload::U32s(db.store().offsets()),
        )
        .section(
            section_id::INDEX_OFFSETS,
            SectionPayload::U32s(index.offsets()),
        )
        .section(
            section_id::INDEX_POSITIONS,
            SectionPayload::U32s(index.positions()),
        )
        .section(section_id::CATALOG, SectionPayload::Bytes(&catalog_bytes))
        .section(section_id::EVENT_COUNTS, SectionPayload::U64s(&counts))
        .section(section_id::EVENT_ORDER, SectionPayload::EventIds(&order));
    let path = temp_path("inconsistent");
    writer.write_to_path(&path).expect("write");
    let err = PreparedDb::open_snapshot(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(err.to_string().contains("meta records"), "{err}");
}
