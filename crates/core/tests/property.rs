//! Randomized property tests of the core mining invariants on random small
//! databases.
//!
//! These tests compare the efficient algorithms (instance growth, GSgrow,
//! CloGSgrow) against the brute-force reference implementations in
//! `rgs_core::reference`, which work directly from the paper's definitions.
//! Cases are generated with a deterministic seeded PRNG, so failures are
//! reproducible from the printed case description.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rgs_core::reference::{closed_subset, enumerate_frequent, max_non_overlapping, pattern_set};
use rgs_core::{
    repetitive_support, Miner, MiningConfig, MiningOutcome, Mode, Pattern, SupportComputer,
};
use seqdb::{EventId, SequenceDatabase};

const LABELS: [&str; 4] = ["A", "B", "C", "D"];
const CASES: usize = 96;

fn all_patterns(db: &SequenceDatabase, config: &MiningConfig) -> MiningOutcome {
    Miner::new(db).from_config(config).mode(Mode::All).run()
}

fn closed_patterns(db: &SequenceDatabase, config: &MiningConfig) -> MiningOutcome {
    Miner::new(db).from_config(config).mode(Mode::Closed).run()
}

/// A small random database: 1–4 sequences of length 0–10 over 4 events.
fn small_database(rng: &mut StdRng) -> SequenceDatabase {
    let rows: Vec<Vec<&str>> = (0..rng.gen_range(1..=4usize))
        .map(|_| {
            (0..rng.gen_range(0..=10usize))
                .map(|_| LABELS[rng.gen_range(0..LABELS.len())])
                .collect()
        })
        .collect();
    SequenceDatabase::from_token_rows(&rows)
}

/// A short random raw pattern over the same alphabet.
fn small_pattern(rng: &mut StdRng) -> Vec<u32> {
    (0..rng.gen_range(1..=4usize))
        .map(|_| rng.gen_range(0..LABELS.len() as u32))
        .collect()
}

fn to_pattern(db: &SequenceDatabase, raw: &[u32]) -> Option<Vec<EventId>> {
    raw.iter()
        .map(|&e| db.catalog().id(LABELS[e as usize]))
        .collect()
}

/// Instance growth computes exactly the maximum number of non-overlapping
/// instances (Definition 2.5 / Lemma 4).
#[test]
fn support_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let raw = small_pattern(&mut rng);
        if let Some(pattern) = to_pattern(&db, &raw) {
            let fast = repetitive_support(&db, &pattern);
            let brute = max_non_overlapping(&db, &pattern);
            assert_eq!(fast, brute, "case {case}: pattern {raw:?}");
        }
    }
}

/// Apriori property (Lemma 1 / Theorem 1): dropping any single event never
/// decreases the support.
#[test]
fn support_is_monotone_under_subpatterns() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let raw = small_pattern(&mut rng);
        if let Some(pattern) = to_pattern(&db, &raw) {
            let sc = SupportComputer::new(&db);
            let full = sc.support(&Pattern::new(pattern.clone()));
            for drop in 0..pattern.len() {
                let mut sub = pattern.clone();
                sub.remove(drop);
                if sub.is_empty() {
                    continue;
                }
                let sub_sup = sc.support(&Pattern::new(sub));
                assert!(sub_sup >= full, "case {case}: sub {sub_sup} < full {full}");
            }
        }
    }
}

/// The landmarks reconstructed for the leftmost support set are valid,
/// pairwise non-overlapping occurrences of the pattern, and there are
/// exactly `sup(P)` of them.
#[test]
fn leftmost_support_set_is_valid_and_non_redundant() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let raw = small_pattern(&mut rng);
        if let Some(pattern) = to_pattern(&db, &raw) {
            let sc = SupportComputer::new(&db);
            let p = Pattern::new(pattern.clone());
            let landmarks = sc.support_landmarks(&p);
            assert_eq!(landmarks.len() as u64, sc.support(&p), "case {case}");
            assert!(rgs_core::support::is_non_redundant(&landmarks));
            assert!(rgs_core::support::are_valid_instances(
                &db, &pattern, &landmarks
            ));
        }
    }
}

/// GSgrow finds exactly the frequent patterns found by brute-force
/// enumeration, with identical supports.
#[test]
fn gsgrow_is_complete_and_sound() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(1..4u64);
        let mined = all_patterns(&db, &MiningConfig::new(min_sup));
        let brute = enumerate_frequent(&db, min_sup, 12);
        assert_eq!(
            pattern_set(&mined.patterns),
            pattern_set(&brute),
            "case {case}: min_sup {min_sup}"
        );
        for mp in &brute {
            assert_eq!(mined.support_of(&mp.pattern), Some(mp.support));
        }
    }
}

/// CloGSgrow's output equals the closed subset of GSgrow's output.
#[test]
fn clogsgrow_equals_closed_subset_of_all() {
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(1..4u64);
        let all = all_patterns(&db, &MiningConfig::new(min_sup));
        let expected = closed_subset(&all.patterns);
        let closed = closed_patterns(&db, &MiningConfig::new(min_sup));
        assert_eq!(
            pattern_set(&closed.patterns),
            pattern_set(&expected),
            "case {case}: min_sup {min_sup}"
        );
        for mp in &expected {
            assert_eq!(closed.support_of(&mp.pattern), Some(mp.support));
        }
    }
}

/// Every frequent pattern is represented in the closed set: it has a closed
/// super-pattern (or itself) with exactly the same support (Lemma 2).
#[test]
fn closed_set_is_a_lossless_summary() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(1..4u64);
        let all = all_patterns(&db, &MiningConfig::new(min_sup));
        let closed = closed_patterns(&db, &MiningConfig::new(min_sup));
        for mp in &all.patterns {
            let covered = closed.patterns.iter().any(|cp| {
                cp.support == mp.support
                    && (cp.pattern == mp.pattern || mp.pattern.is_subpattern_of(&cp.pattern))
            });
            assert!(
                covered,
                "case {case}: pattern {:?} with support {} is not covered",
                mp.pattern, mp.support
            );
        }
    }
}

/// The number of visited DFS nodes of CloGSgrow never exceeds GSgrow's
/// (landmark border pruning only removes work).
#[test]
fn pruning_never_increases_visited_nodes() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..CASES {
        let db = small_database(&mut rng);
        let min_sup = rng.gen_range(1..4u64);
        let all = all_patterns(&db, &MiningConfig::new(min_sup));
        let closed = closed_patterns(&db, &MiningConfig::new(min_sup));
        assert!(closed.stats.visited <= all.stats.visited, "case {case}");
        assert!(closed.len() <= all.len(), "case {case}");
    }
}

/// Single-event supports equal raw occurrence counts.
#[test]
fn single_event_support_equals_occurrence_count() {
    let mut rng = StdRng::seed_from_u64(0xACE);
    for _ in 0..CASES {
        let db = small_database(&mut rng);
        let sc = SupportComputer::new(&db);
        for event in db.catalog().ids() {
            let p = Pattern::single(event);
            assert_eq!(sc.support(&p), db.event_occurrences(event) as u64);
        }
    }
}
