//! Property-based tests of the core mining invariants on random small
//! databases.
//!
//! These tests compare the efficient algorithms (instance growth, GSgrow,
//! CloGSgrow) against the brute-force reference implementations in
//! `rgs_core::reference`, which work directly from the paper's definitions.

use proptest::prelude::*;

use rgs_core::reference::{
    closed_subset, enumerate_frequent, max_non_overlapping, pattern_set,
};
use rgs_core::{
    mine_all, mine_closed, repetitive_support, MiningConfig, Pattern, SupportComputer,
};
use seqdb::SequenceDatabase;
use seqdb::EventId;

/// A strategy producing small random databases over a small alphabet: 1–4
/// sequences of length 0–10 over up to 4 distinct events.
fn small_database() -> impl Strategy<Value = SequenceDatabase> {
    let sequence = prop::collection::vec(0u32..4, 0..=10);
    prop::collection::vec(sequence, 1..=4).prop_map(|rows| {
        let labels = ["A", "B", "C", "D"];
        let string_rows: Vec<Vec<&str>> = rows
            .iter()
            .map(|row| row.iter().map(|&e| labels[e as usize]).collect())
            .collect();
        SequenceDatabase::from_token_rows(&string_rows)
    })
}

/// A strategy producing a short random pattern over the same alphabet.
fn small_pattern() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..4, 1..=4)
}

fn to_pattern(db: &SequenceDatabase, raw: &[u32]) -> Option<Vec<EventId>> {
    let labels = ["A", "B", "C", "D"];
    raw.iter()
        .map(|&e| db.catalog().id(labels[e as usize]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Instance growth computes exactly the maximum number of
    /// non-overlapping instances (Definition 2.5 / Lemma 4).
    #[test]
    fn support_matches_brute_force(db in small_database(), raw in small_pattern()) {
        if let Some(pattern) = to_pattern(&db, &raw) {
            let fast = repetitive_support(&db, &pattern);
            let brute = max_non_overlapping(&db, &pattern);
            prop_assert_eq!(fast, brute);
        }
    }

    /// Apriori property (Lemma 1 / Theorem 1): the support of every prefix
    /// is at least the support of the full pattern, and dropping any single
    /// event never decreases the support.
    #[test]
    fn support_is_monotone_under_subpatterns(db in small_database(), raw in small_pattern()) {
        if let Some(pattern) = to_pattern(&db, &raw) {
            let sc = SupportComputer::new(&db);
            let full = sc.support(&Pattern::new(pattern.clone()));
            for drop in 0..pattern.len() {
                let mut sub = pattern.clone();
                sub.remove(drop);
                if sub.is_empty() {
                    continue;
                }
                let sub_sup = sc.support(&Pattern::new(sub));
                prop_assert!(sub_sup >= full, "sub {sub_sup} < full {full}");
            }
        }
    }

    /// The landmarks reconstructed for the leftmost support set are valid,
    /// pairwise non-overlapping occurrences of the pattern, and there are
    /// exactly `sup(P)` of them.
    #[test]
    fn leftmost_support_set_is_valid_and_non_redundant(
        db in small_database(),
        raw in small_pattern(),
    ) {
        if let Some(pattern) = to_pattern(&db, &raw) {
            let sc = SupportComputer::new(&db);
            let p = Pattern::new(pattern.clone());
            let landmarks = sc.support_landmarks(&p);
            prop_assert_eq!(landmarks.len() as u64, sc.support(&p));
            prop_assert!(rgs_core::support::is_non_redundant(&landmarks));
            prop_assert!(rgs_core::support::are_valid_instances(&db, &pattern, &landmarks));
        }
    }

    /// GSgrow finds exactly the frequent patterns found by brute-force
    /// enumeration, with identical supports.
    #[test]
    fn gsgrow_is_complete_and_sound(db in small_database(), min_sup in 1u64..4) {
        let mined = mine_all(&db, &MiningConfig::new(min_sup));
        let brute = enumerate_frequent(&db, min_sup, 12);
        prop_assert_eq!(pattern_set(&mined.patterns), pattern_set(&brute));
        for mp in &brute {
            prop_assert_eq!(mined.support_of(&mp.pattern), Some(mp.support));
        }
    }

    /// CloGSgrow's output equals the closed subset of GSgrow's output.
    #[test]
    fn clogsgrow_equals_closed_subset_of_all(db in small_database(), min_sup in 1u64..4) {
        let all = mine_all(&db, &MiningConfig::new(min_sup));
        let expected = closed_subset(&all.patterns);
        let closed = mine_closed(&db, &MiningConfig::new(min_sup));
        prop_assert_eq!(pattern_set(&closed.patterns), pattern_set(&expected));
        for mp in &expected {
            prop_assert_eq!(closed.support_of(&mp.pattern), Some(mp.support));
        }
    }

    /// Every frequent pattern is represented in the closed set: it has a
    /// closed super-pattern (or itself) with exactly the same support
    /// (the compactness guarantee of Lemma 2).
    #[test]
    fn closed_set_is_a_lossless_summary(db in small_database(), min_sup in 1u64..4) {
        let all = mine_all(&db, &MiningConfig::new(min_sup));
        let closed = mine_closed(&db, &MiningConfig::new(min_sup));
        for mp in &all.patterns {
            let covered = closed.patterns.iter().any(|cp| {
                cp.support == mp.support
                    && (cp.pattern == mp.pattern || mp.pattern.is_subpattern_of(&cp.pattern))
            });
            prop_assert!(covered, "pattern {:?} with support {} is not covered", mp.pattern, mp.support);
        }
    }

    /// The number of visited DFS nodes of CloGSgrow never exceeds GSgrow's
    /// (landmark border pruning only removes work).
    #[test]
    fn pruning_never_increases_visited_nodes(db in small_database(), min_sup in 1u64..4) {
        let all = mine_all(&db, &MiningConfig::new(min_sup));
        let closed = mine_closed(&db, &MiningConfig::new(min_sup));
        prop_assert!(closed.stats.visited <= all.stats.visited);
        prop_assert!(closed.len() <= all.len());
    }

    /// Single-event supports equal raw occurrence counts.
    #[test]
    fn single_event_support_equals_occurrence_count(db in small_database()) {
        let sc = SupportComputer::new(&db);
        for event in db.catalog().ids() {
            let p = Pattern::single(event);
            prop_assert_eq!(sc.support(&p), db.event_occurrences(event) as u64);
        }
    }
}
