//! The sharding acceptance criterion, pinned end to end: mining a sharded
//! [`PreparedDb`] is **bit-identical** to mining the flat preparation —
//! every mode, with and without gap constraints, at shard counts
//! {1, 2, 3, 7}, under sequential and parallel execution — and the shard
//! bookkeeping (counts, footprints, rebalance) stays consistent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rgs_core::{GapConstraints, Mode, PreparedDb};
use seqdb::{DatabaseBuilder, SequenceDatabase};

/// A seeded random database over a small alphabet (dense repetition, the
/// regime where closed mining actually prunes) with skewed row lengths so
/// event-mass partitioning differs from row-count partitioning.
fn random_db(seed: u64) -> SequenceDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = rng.gen_range(3..7usize);
    let rows = rng.gen_range(4..10usize);
    let mut builder = DatabaseBuilder::new();
    for row in 0..rows {
        // Every third row is long, the rest short: heavy skew.
        let len = if row % 3 == 0 {
            rng.gen_range(10..24usize)
        } else {
            rng.gen_range(0..6usize)
        };
        let labels: Vec<String> = (0..len)
            .map(|_| char::from(b'A' + rng.gen_range(0..alphabet as u32) as u8).to_string())
            .collect();
        builder.push_tokens(labels.iter().map(String::as_str));
    }
    builder.finish()
}

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn workloads() -> Vec<(Mode, GapConstraints)> {
    let mut combos = Vec::new();
    for mode in [Mode::All, Mode::Closed, Mode::Maximal, Mode::TopK] {
        for constraints in [GapConstraints::unbounded(), GapConstraints::max_gap(2)] {
            combos.push((mode, constraints));
        }
    }
    combos
}

#[test]
fn sharded_mining_is_bit_identical_across_modes_and_constraints() {
    for seed in 0..10u64 {
        let db = random_db(seed);
        let flat = PreparedDb::new(&db);
        for shards in SHARD_COUNTS {
            let sharded = PreparedDb::new_sharded(&db, shards, 2);
            assert!(sharded.shard_count() >= 1 && sharded.shard_count() <= shards.max(1));
            for (mode, constraints) in workloads() {
                for min_sup in [2, 3] {
                    let expected = flat
                        .miner()
                        .min_sup(min_sup)
                        .mode(mode)
                        .constraints(constraints)
                        .max_pattern_length(6)
                        .keep_support_sets()
                        .run();
                    let actual = sharded
                        .miner()
                        .min_sup(min_sup)
                        .mode(mode)
                        .constraints(constraints)
                        .max_pattern_length(6)
                        .keep_support_sets()
                        .run();
                    assert_eq!(
                        expected.patterns,
                        actual.patterns,
                        "seed {seed}, {shards} shards, {mode:?} with {} at min_sup {min_sup}",
                        constraints.describe()
                    );
                    assert_eq!(expected.truncated, actual.truncated);
                    assert_eq!(expected.stats.visited, actual.stats.visited);
                    assert_eq!(
                        expected.stats.instance_growths,
                        actual.stats.instance_growths
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_parallel_execution_matches_sequential_and_flat() {
    for seed in [3u64, 11, 29] {
        let db = random_db(seed);
        let flat = PreparedDb::new(&db);
        for shards in SHARD_COUNTS {
            let sharded = PreparedDb::new_sharded(&db, shards, 2);
            for (mode, constraints) in workloads() {
                let expected = flat
                    .miner()
                    .min_sup(2)
                    .mode(mode)
                    .constraints(constraints)
                    .max_pattern_length(5)
                    .run();
                for threads in [2, 3, 8] {
                    let parallel = sharded
                        .miner()
                        .min_sup(2)
                        .mode(mode)
                        .constraints(constraints)
                        .max_pattern_length(5)
                        .threads(threads)
                        .run();
                    assert_eq!(
                        expected.patterns,
                        parallel.patterns,
                        "seed {seed}, {shards} shards x {threads} threads, {mode:?} with {}",
                        constraints.describe()
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_streams_and_caps_behave_like_flat_ones() {
    let db = random_db(77);
    let flat = PreparedDb::new(&db);
    let sharded = PreparedDb::new_sharded(&db, 3, 1);

    let expected = flat.miner().min_sup(2).mode(Mode::Closed).run();
    let session = sharded.miner().min_sup(2).mode(Mode::Closed).session();
    let streamed: Vec<_> = session.stream().collect();
    assert_eq!(streamed, expected.patterns);

    for mode in [Mode::All, Mode::Closed, Mode::Maximal] {
        let capped_flat = flat.miner().min_sup(1).mode(mode).max_patterns(5).run();
        let capped_sharded = sharded.miner().min_sup(1).mode(mode).max_patterns(5).run();
        assert_eq!(capped_flat.patterns, capped_sharded.patterns, "{mode:?}");
        assert_eq!(capped_flat.truncated, capped_sharded.truncated);
    }
}

#[test]
fn shard_bookkeeping_is_consistent() {
    let db = random_db(5);
    let sharded = PreparedDb::new_sharded(&db, 3, 2);
    assert_eq!(sharded.shard_count(), 3);
    assert_eq!(sharded.stats().num_shards, 3);

    let footprints = sharded.shard_footprints();
    assert_eq!(footprints.len(), 3);
    assert_eq!(
        footprints.iter().map(|f| f.sequences).sum::<usize>(),
        db.num_sequences()
    );
    assert_eq!(
        footprints.iter().map(|f| f.events).sum::<usize>(),
        db.total_length()
    );
    // Index bytes split exactly across shards... plus per-shard CSR
    // sentinels; store bytes cover the arena once plus window offsets.
    let flat = PreparedDb::new(&db);
    assert_eq!(flat.stats().num_shards, 1);
    assert!(sharded.heap_bytes() >= flat.database().store().heap_bytes());

    // Resharding re-partitions the same data and keeps mining identical.
    let resharded = sharded.reshard(2, 1);
    assert_eq!(resharded.shard_count(), 2);
    assert_eq!(
        resharded.miner().min_sup(2).run().patterns,
        flat.miner().min_sup(2).run().patterns
    );
}

#[test]
fn occurrence_counts_and_frequent_events_are_partition_independent() {
    for seed in 0..6u64 {
        let db = random_db(seed);
        let flat = PreparedDb::new(&db);
        for shards in SHARD_COUNTS {
            let sharded = PreparedDb::new_sharded(&db, shards, 2);
            for event in db.catalog().ids() {
                assert_eq!(
                    flat.occurrence_count(event),
                    sharded.occurrence_count(event),
                    "seed {seed}, {shards} shards, {event:?}"
                );
            }
            for min_sup in [1, 2, 4, 8] {
                assert_eq!(
                    flat.frequent_events(min_sup),
                    sharded.frequent_events(min_sup),
                    "seed {seed}, {shards} shards, min_sup {min_sup}"
                );
            }
        }
    }
}
