//! # rgs-core — mining (closed) repetitive gapped subsequences
//!
//! This crate is a from-scratch Rust implementation of the algorithms of
//! Ding, Lo, Han & Khoo, *"Efficient Mining of Closed Repetitive Gapped
//! Subsequences from a Sequence Database"*, ICDE 2009:
//!
//! * the **repetitive support** measure — the maximum number of pairwise
//!   non-overlapping instances of a gapped subsequence across *and within*
//!   the sequences of a database (Definitions 2.2–2.5),
//! * the **instance growth** operation `INSgrow` and the support computation
//!   routine `supComp` (Algorithms 1 and 2),
//! * **GSgrow** — depth-first mining of *all* frequent repetitive gapped
//!   subsequences (Algorithm 3),
//! * **CloGSgrow** — mining of *closed* frequent patterns using the *closure
//!   checking* (Theorem 4) and *landmark border checking* (Theorem 5)
//!   strategies (Algorithm 4),
//! * the case-study **post-processing** pipeline of §IV-B (density filter,
//!   maximality filter, ranking by length).
//!
//! Beyond the paper's two algorithms, the crate implements the extensions
//! its conclusion sketches as future work:
//!
//! * [`constrained`] — gap/window-constrained mining (with the constraint
//!   vocabulary in [`constraints`]), for long DNA/protein/text sequences,
//! * [`topk`] — top-k (closed) mining with a dynamically raised threshold,
//! * [`maximal`] — maximal frequent patterns, the subsumption frontier of
//!   the closed set.
//!
//! # Quick start
//!
//! ```
//! use seqdb::SequenceDatabase;
//! use rgs_core::{MiningConfig, mine_all, mine_closed, repetitive_support};
//!
//! // Example 1.1 of the paper.
//! let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
//!
//! // Repetitive support counts repetitions within sequences, too:
//! let ab = db.pattern_from_str("AB").unwrap();
//! let cd = db.pattern_from_str("CD").unwrap();
//! assert_eq!(repetitive_support(&db, &ab), 4);
//! assert_eq!(repetitive_support(&db, &cd), 2);
//!
//! // Mine every frequent pattern with support >= 2, and the closed subset.
//! let all = mine_all(&db, &MiningConfig::new(2));
//! let closed = mine_closed(&db, &MiningConfig::new(2));
//! assert!(closed.patterns.len() <= all.patterns.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod clogsgrow;
pub mod config;
pub mod constrained;
pub mod constraints;
pub mod growth;
pub mod gsgrow;
pub mod instance;
pub mod maximal;
pub mod pattern;
pub mod postprocess;
pub mod reference;
pub mod result;
pub mod support;
pub mod topk;

pub use clogsgrow::mine_closed;
pub use config::MiningConfig;
pub use constrained::{
    constrained_support, mine_all_constrained, mine_closed_constrained,
    ConstrainedSupportComputer,
};
pub use constraints::GapConstraints;
pub use growth::{instance_growth, repetitive_support, support_set, SupportComputer};
pub use gsgrow::mine_all;
pub use instance::{Instance, Landmark};
pub use maximal::{is_maximal, mine_maximal};
pub use pattern::Pattern;
pub use postprocess::{postprocess, PostProcessConfig};
pub use result::{MinedPattern, MiningOutcome, MiningStats};
pub use support::SupportSet;
pub use topk::{mine_top_k, TopKConfig};
