//! # rgs-core — mining (closed) repetitive gapped subsequences
//!
//! This crate is a from-scratch Rust implementation of the algorithms of
//! Ding, Lo, Han & Khoo, *"Efficient Mining of Closed Repetitive Gapped
//! Subsequences from a Sequence Database"*, ICDE 2009:
//!
//! * the **repetitive support** measure — the maximum number of pairwise
//!   non-overlapping instances of a gapped subsequence across *and within*
//!   the sequences of a database (Definitions 2.2–2.5),
//! * the **instance growth** operation `INSgrow` and the support computation
//!   routine `supComp` (Algorithms 1 and 2),
//! * **GSgrow** — depth-first mining of *all* frequent repetitive gapped
//!   subsequences (Algorithm 3),
//! * **CloGSgrow** — mining of *closed* frequent patterns using the *closure
//!   checking* (Theorem 4) and *landmark border checking* (Theorem 5)
//!   strategies (Algorithm 4),
//! * the case-study **post-processing** pipeline of §IV-B (density filter,
//!   maximality filter, ranking by length),
//! * the extensions the paper's conclusion sketches: gap/window-constrained
//!   mining ([`constrained`]), top-k mining ([`topk`]), and maximal pattern
//!   mining ([`maximal`]).
//!
//! # Quick start — prepare once, query many
//!
//! The engine separates the query-independent setup (interning, the §III-D
//! inverted event index, the frequent-event counts) from per-query
//! execution. [`PreparedDb::new`] performs the setup exactly once into an
//! immutable, `Arc`-shareable snapshot; the [`Miner`] builder then
//! describes and runs queries against it. Mode (all/closed/maximal/top-k),
//! gap and window constraints, top-k ranking, length/pattern caps,
//! support-set retention, pruning ablations, and sequential/parallel
//! execution are orthogonal options that combine freely:
//!
//! ```
//! use seqdb::SequenceDatabase;
//! use rgs_core::{GapConstraints, Miner, Mode, PreparedDb, repetitive_support};
//!
//! // Example 1.1 of the paper.
//! let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
//!
//! // Repetitive support counts repetitions within sequences, too:
//! let ab = db.pattern_from_str("AB").unwrap();
//! let cd = db.pattern_from_str("CD").unwrap();
//! assert_eq!(repetitive_support(&db, &ab), 4);
//! assert_eq!(repetitive_support(&db, &cd), 2);
//!
//! // Phase 1: prepare once. Phase 2: every query borrows the snapshot.
//! let prepared = PreparedDb::new(&db);
//! let all = prepared.miner().min_sup(2).mode(Mode::All).run();
//! let closed = prepared.miner().min_sup(2).mode(Mode::Closed).run();
//! assert!(closed.patterns.len() <= all.patterns.len());
//!
//! // Parallel execution fans the DFS seeds across scoped threads and
//! // merges deterministically — the output is bit-identical:
//! let parallel = prepared
//!     .miner()
//!     .min_sup(2)
//!     .mode(Mode::Closed)
//!     .threads(4)
//!     .run();
//! assert_eq!(closed.patterns, parallel.patterns);
//!
//! // Orthogonal options compose — e.g. gap-constrained top-k mining:
//! let best = prepared
//!     .miner()
//!     .min_sup(1)
//!     .mode(Mode::Closed)
//!     .constraints(GapConstraints::max_gap(2))
//!     .top_k(3)
//!     .min_len(2)
//!     .run();
//! assert!(best.len() <= 3);
//! ```
//!
//! One-shot callers can skip phase 1: [`Miner::new`] borrows a bare
//! [`SequenceDatabase`](seqdb::SequenceDatabase) and prepares lazily on
//! each run.
//!
//! # Snapshots — zero-copy cold starts
//!
//! A [`PreparedDb`] serializes into a **single image file**
//! ([`PreparedDb::write_snapshot`]) holding every arena the preparation
//! computed: the columnar event store, the CSR inverted index, the
//! per-event counts, the candidate order, and the catalog. Reopening
//! ([`PreparedDb::open_snapshot`] or [`Miner::from_snapshot`]) `mmap`s the
//! file and reconstructs each structure as a borrowed slice over the
//! mapping — no re-tokenizing, no re-indexing, no copies — after
//! validating a full-file checksum, so a restarted service answers its
//! first query at memory-map speed. The format is specified byte by byte
//! in [`snapshot`] and `ARCHITECTURE.md`:
//!
//! ```
//! use seqdb::SequenceDatabase;
//! use rgs_core::{Miner, Mode, PreparedDb};
//!
//! let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
//!
//! // Prepare once, persist once.
//! let prepared = Miner::new(&db).prepare();
//! let path = std::env::temp_dir().join(format!("rgs-lib-doc-{}.snap", std::process::id()));
//! let bytes_on_disk = prepared.write_snapshot(&path)?;
//! assert!(bytes_on_disk as usize >= prepared.heap_bytes());
//!
//! // Cold start: open the image and stream a query from it.
//! let reopened = PreparedDb::open_snapshot(&path)?;
//! let session = reopened.miner().min_sup(2).mode(Mode::Closed).session();
//! let cold: Vec<_> = session.stream().collect();
//! assert_eq!(cold, prepared.miner().min_sup(2).mode(Mode::Closed).run().patterns);
//! std::fs::remove_file(&path)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Streaming — push and pull
//!
//! Results can be consumed incrementally through a push-based
//! [`PatternSink`] (cooperative cancellation via
//! [`ControlFlow`](std::ops::ControlFlow)) or pulled lazily from a
//! [`PatternStream`] iterator — both are memory-bounded paths for long
//! DNA/log sequences:
//!
//! ```
//! use std::ops::ControlFlow;
//! use seqdb::SequenceDatabase;
//! use rgs_core::{MinedPattern, Miner, Mode};
//!
//! let db = SequenceDatabase::from_str_rows(&["AABCDABB", "ABCD"]);
//!
//! // Push: a sink sees patterns as they are found and can cancel.
//! let mut count = 0usize;
//! let report = Miner::new(&db).min_sup(2).mode(Mode::All).run_with_sink(
//!     &mut |_p: MinedPattern| {
//!         count += 1;
//!         if count < 5 { ControlFlow::Continue(()) } else { ControlFlow::Break(()) }
//!     },
//! );
//! assert_eq!(report.emitted, count);
//!
//! // Pull: `session.stream()` composes with iterator adapters, and
//! // dropping the stream abandons the rest of the search.
//! let session = Miner::new(&db).min_sup(2).mode(Mode::All).session();
//! let longest = session.stream().take(5).max_by_key(|mp| mp.pattern.len());
//! assert!(longest.is_some());
//! ```
//!
//! The six free functions of the 0.1 API ([`mine_all`], [`mine_closed`],
//! [`mine_top_k`], [`mine_maximal`], [`mine_all_constrained`],
//! [`mine_closed_constrained`]) remain available as deprecated shims that
//! delegate to the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod canonical;
pub mod clogsgrow;
pub mod closure;
pub mod config;
pub mod constrained;
pub mod constraints;
pub mod engine;
pub mod growth;
pub mod gsgrow;
pub mod instance;
pub mod instbuf;
pub mod json;
pub mod kernel;
pub mod maximal;
mod parallel;
pub mod pattern;
pub mod postprocess;
pub mod prepared;
pub mod reference;
pub mod result;
pub mod sink;
pub mod snapshot;
pub mod stream;
pub mod support;
pub mod topk;

pub use batch::MiningResult;
pub use canonical::canonical_key;
#[allow(deprecated)]
pub use clogsgrow::mine_closed;
pub use config::MiningConfig;
#[allow(deprecated)]
pub use constrained::{
    constrained_support, mine_all_constrained, mine_closed_constrained, ConstrainedSupportComputer,
};
pub use constraints::GapConstraints;
pub use engine::{
    ExecutionPolicy, Miner, MiningReport, MiningRequest, MiningSession, Mode, DEFAULT_TOP_K,
};
pub use growth::{instance_growth, repetitive_support, support_set, SupportComputer};
#[allow(deprecated)]
pub use gsgrow::mine_all;
pub use instance::{Instance, Landmark};
pub use instbuf::InstanceBuffer;
#[allow(deprecated)]
pub use maximal::{is_maximal, mine_maximal};
pub use pattern::Pattern;
pub use postprocess::{postprocess, PostProcessConfig};
pub use prepared::{ImageInfo, PreparedDb, ShardFootprint};
pub use result::{sort_patterns_for_report, MinedPattern, MiningOutcome, MiningStats};
pub use seqdb::SnapshotError;
pub use sink::{BudgetSink, CollectSink, CountSink, DeadlineSink, PatternSink};
pub use stream::PatternStream;
pub use support::SupportSet;
#[allow(deprecated)]
pub use topk::{mine_top_k, TopKConfig};
