//! Gap and window constraints for constrained repetitive mining.
//!
//! The paper's concluding section names "mining approximate repetitive
//! patterns with gap constraints" as future work: in long DNA, protein, or
//! text sequences the interesting repetitions of a pattern are those whose
//! events occur close together, so users want to bound the *gap* between two
//! successive pattern events and/or the total *window* an instance may span.
//!
//! [`GapConstraints`] captures the three standard knobs:
//!
//! * `min_gap` — the minimum number of events that must lie between two
//!   successive pattern events (`0` allows adjacent events, the paper's
//!   unconstrained default),
//! * `max_gap` — the maximum number of events allowed between two successive
//!   pattern events (`None` = unbounded, the paper's default),
//! * `max_window` — the maximum span `l_m - l_1 + 1` of an instance
//!   (`None` = unbounded).
//!
//! The constrained miners live in [`crate::constrained`]; this module only
//! defines the constraint vocabulary and the position-level feasibility
//! checks they share.

/// Gap and window constraints on the instances of a pattern.
///
/// With the default constraints ([`GapConstraints::unbounded`]) every
/// computation in [`crate::constrained`] coincides exactly with the
/// unconstrained algorithms of the paper; this is asserted by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapConstraints {
    /// Minimum number of events between two successive pattern events.
    /// `0` (the default) allows adjacent events.
    pub min_gap: u32,
    /// Maximum number of events between two successive pattern events.
    /// `None` (the default) leaves the gap unbounded.
    pub max_gap: Option<u32>,
    /// Maximum number of sequence positions an instance may span
    /// (`last - first + 1`). `None` (the default) leaves the span unbounded.
    pub max_window: Option<u32>,
}

impl GapConstraints {
    /// No constraints at all: the setting of the paper.
    pub fn unbounded() -> Self {
        Self {
            min_gap: 0,
            max_gap: None,
            max_window: None,
        }
    }

    /// A gap requirement `min_gap <= gap <= max_gap` between successive
    /// pattern events (the form used by Zhang et al.'s periodic patterns,
    /// which the paper's related-work section discusses).
    pub fn gap_range(min_gap: u32, max_gap: u32) -> Self {
        Self {
            min_gap,
            max_gap: Some(max_gap),
            max_window: None,
        }
    }

    /// Only an upper bound on the gap between successive events.
    pub fn max_gap(max_gap: u32) -> Self {
        Self {
            min_gap: 0,
            max_gap: Some(max_gap),
            max_window: None,
        }
    }

    /// Only a bound on the total window an instance may span (the episode
    /// mining style of width-`w` windows).
    pub fn max_window(max_window: u32) -> Self {
        Self {
            min_gap: 0,
            max_gap: None,
            max_window: Some(max_window),
        }
    }

    /// Sets the minimum gap.
    pub fn with_min_gap(mut self, min_gap: u32) -> Self {
        self.min_gap = min_gap;
        self
    }

    /// Sets the maximum gap.
    pub fn with_max_gap(mut self, max_gap: u32) -> Self {
        self.max_gap = Some(max_gap);
        self
    }

    /// Sets the maximum window.
    pub fn with_max_window(mut self, max_window: u32) -> Self {
        self.max_window = Some(max_window);
        self
    }

    /// Returns `true` when no constraint is active, i.e. the configuration
    /// is equivalent to the paper's unconstrained setting.
    pub fn is_unbounded(&self) -> bool {
        self.min_gap == 0 && self.max_gap.is_none() && self.max_window.is_none()
    }

    /// The lowest admissible position (exclusive lower bound for
    /// `next(S, e, lowest)`) when extending an instance whose current last
    /// landmark position is `last`.
    ///
    /// The next position must be `> last + min_gap` so that at least
    /// `min_gap` events separate the two pattern events.
    pub fn lowest_exclusive(&self, last: u32) -> u32 {
        last.saturating_add(self.min_gap)
    }

    /// The highest admissible position (inclusive) when extending an
    /// instance with first landmark position `first` and current last
    /// landmark position `last`, or `u32::MAX` when unconstrained.
    pub fn highest_inclusive(&self, first: u32, last: u32) -> u32 {
        let by_gap = match self.max_gap {
            Some(g) => last.saturating_add(g).saturating_add(1),
            None => u32::MAX,
        };
        let by_window = match self.max_window {
            Some(w) => first.saturating_sub(1).saturating_add(w),
            None => u32::MAX,
        };
        by_gap.min(by_window)
    }

    /// Checks whether a full landmark (strictly increasing positions)
    /// satisfies every constraint. Used by the reference implementation and
    /// by validation tests.
    pub fn admits_landmark(&self, positions: &[u32]) -> bool {
        if positions.is_empty() {
            return true;
        }
        let first = positions[0];
        let last = *positions.last().expect("non-empty");
        if let Some(w) = self.max_window {
            if last - first + 1 > w {
                return false;
            }
        }
        positions.windows(2).all(|w| {
            let gap = w[1] - w[0] - 1;
            gap >= self.min_gap && self.max_gap.is_none_or(|g| gap <= g)
        })
    }

    /// Renders the constraints compactly, e.g. `gap∈[0,4], window≤20`.
    pub fn describe(&self) -> String {
        if self.is_unbounded() {
            return "unconstrained".to_string();
        }
        let mut parts = Vec::new();
        match self.max_gap {
            Some(g) => parts.push(format!("gap∈[{},{}]", self.min_gap, g)),
            None if self.min_gap > 0 => parts.push(format!("gap≥{}", self.min_gap)),
            None => {}
        }
        if let Some(w) = self.max_window {
            parts.push(format!("window≤{w}"));
        }
        parts.join(", ")
    }
}

impl Default for GapConstraints {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_is_the_default_and_admits_everything() {
        let c = GapConstraints::default();
        assert!(c.is_unbounded());
        assert_eq!(c.lowest_exclusive(7), 7);
        assert_eq!(c.highest_inclusive(1, 7), u32::MAX);
        assert!(c.admits_landmark(&[1, 100, 10_000]));
        assert_eq!(c.describe(), "unconstrained");
    }

    #[test]
    fn gap_range_bounds_both_sides() {
        // gap in [1, 3]: positions 2 and 4 have gap 1 (ok), 2 and 3 have
        // gap 0 (too small), 2 and 7 have gap 4 (too large).
        let c = GapConstraints::gap_range(1, 3);
        assert!(c.admits_landmark(&[2, 4]));
        assert!(!c.admits_landmark(&[2, 3]));
        assert!(!c.admits_landmark(&[2, 7]));
        assert_eq!(c.lowest_exclusive(2), 3);
        assert_eq!(c.highest_inclusive(2, 2), 6);
        assert_eq!(c.describe(), "gap∈[1,3]");
    }

    #[test]
    fn max_window_bounds_the_span() {
        let c = GapConstraints::max_window(4);
        assert!(c.admits_landmark(&[3, 4, 6])); // span 4
        assert!(!c.admits_landmark(&[3, 4, 7])); // span 5
        assert_eq!(c.highest_inclusive(3, 4), 6);
        assert_eq!(c.describe(), "window≤4");
    }

    #[test]
    fn combined_constraints_take_the_tighter_bound() {
        let c = GapConstraints::gap_range(0, 10).with_max_window(3);
        // From last=2, gap allows up to 13 but window (first=1) allows 3.
        assert_eq!(c.highest_inclusive(1, 2), 3);
        // From last=2 with a wide window the gap bound applies.
        let c2 = GapConstraints::gap_range(0, 1).with_max_window(100);
        assert_eq!(c2.highest_inclusive(1, 2), 4);
        assert_eq!(c.describe(), "gap∈[0,10], window≤3");
    }

    #[test]
    fn min_gap_only_description_and_bounds() {
        let c = GapConstraints::unbounded().with_min_gap(2);
        assert!(!c.is_unbounded());
        assert_eq!(c.describe(), "gap≥2");
        assert_eq!(c.lowest_exclusive(5), 7);
        assert!(c.admits_landmark(&[1, 4]));
        assert!(!c.admits_landmark(&[1, 3]));
    }

    #[test]
    fn saturating_arithmetic_near_the_position_limits() {
        let c = GapConstraints::gap_range(0, u32::MAX).with_max_window(u32::MAX);
        assert_eq!(c.highest_inclusive(u32::MAX - 1, u32::MAX - 1), u32::MAX);
        let d = GapConstraints::unbounded().with_min_gap(u32::MAX);
        assert_eq!(d.lowest_exclusive(u32::MAX), u32::MAX);
    }

    #[test]
    fn empty_and_single_landmarks_are_always_admitted() {
        let c = GapConstraints::gap_range(5, 5).with_max_window(1);
        assert!(c.admits_landmark(&[]));
        assert!(c.admits_landmark(&[42]));
    }

    #[test]
    fn builder_setters_override_presets() {
        let c = GapConstraints::gap_range(1, 4)
            .with_max_window(9)
            .with_min_gap(2)
            .with_max_gap(6);
        assert_eq!(
            c,
            GapConstraints {
                min_gap: 2,
                max_gap: Some(6),
                max_window: Some(9),
            }
        );
        assert_eq!(c.describe(), "gap∈[2,6], window≤9");
    }
}
