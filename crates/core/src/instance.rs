//! Instances and landmarks of a pattern (Definitions 2.1–2.3).
//!
//! A *landmark* of pattern `P = e1..em` in sequence `S` is an increasing
//! list of 1-based positions `l1 < l2 < ... < lm` with `S[li] = ei`. An
//! *instance* is a pair `(sequence index, landmark)`.
//!
//! Following §III-D ("Compressed Storage of Instances"), the mining
//! algorithms keep only the triple `(seq, first, last)` per instance; the
//! full landmark can be reconstructed on demand (see
//! [`SupportSet::reconstruct_landmarks`](crate::support::SupportSet::reconstruct_landmarks)).

use std::cmp::Ordering;
use std::fmt;

/// A full landmark: the 1-based positions of one occurrence of a pattern in
/// one sequence (Definition 2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Landmark {
    /// 0-based index of the sequence in the database.
    pub seq: usize,
    /// Strictly increasing 1-based positions, one per pattern event.
    pub positions: Vec<u32>,
}

impl Landmark {
    /// Creates a landmark, asserting that the positions are strictly
    /// increasing (debug builds only).
    pub fn new(seq: usize, positions: Vec<u32>) -> Self {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "landmark positions must be strictly increasing"
        );
        Self { seq, positions }
    }

    /// The last position of the landmark (`lm`), or `None` for an empty
    /// landmark.
    pub fn last(&self) -> Option<u32> {
        self.positions.last().copied()
    }

    /// The first position of the landmark (`l1`), or `None` for an empty
    /// landmark.
    pub fn first(&self) -> Option<u32> {
        self.positions.first().copied()
    }

    /// Two instances of the *same pattern* overlap iff they are in the same
    /// sequence and share a position at the same pattern index
    /// (Definition 2.3).
    pub fn overlaps(&self, other: &Landmark) -> bool {
        if self.seq != other.seq {
            return false;
        }
        self.positions
            .iter()
            .zip(other.positions.iter())
            .any(|(a, b)| a == b)
    }

    /// The compressed representation `(seq, first, last)` of this landmark.
    ///
    /// # Panics
    ///
    /// Panics on an empty landmark (the empty pattern has no instances).
    pub fn compress(&self) -> Instance {
        Instance {
            seq: self.seq as u32,
            first: self.first().expect("cannot compress an empty landmark"),
            last: self.last().expect("cannot compress an empty landmark"),
        }
    }
}

impl fmt::Display for Landmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let positions: Vec<String> = self.positions.iter().map(u32::to_string).collect();
        write!(f, "({}, <{}>)", self.seq + 1, positions.join(","))
    }
}

/// The compressed instance triple `(i, l1, ln)` of §III-D.
///
/// `Instance` is `Copy` and 12 bytes, so support sets are cache-friendly
/// vectors of plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instance {
    /// 0-based sequence index.
    pub seq: u32,
    /// First landmark position `l1` (1-based).
    pub first: u32,
    /// Last landmark position `lm` (1-based). Equals `first` for size-1
    /// patterns.
    pub last: u32,
}

impl Instance {
    /// Creates an instance triple.
    pub fn new(seq: u32, first: u32, last: u32) -> Self {
        debug_assert!(first <= last, "first position must not exceed last");
        Self { seq, first, last }
    }

    /// The *right-shift order* of Definition 3.1: instances are ordered by
    /// sequence index and, within a sequence, by last landmark position.
    pub fn right_shift_cmp(&self, other: &Instance) -> Ordering {
        (self.seq, self.last).cmp(&(other.seq, other.last))
    }
}

impl PartialOrd for Instance {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instance {
    fn cmp(&self, other: &Self) -> Ordering {
        self.right_shift_cmp(other)
            .then(self.first.cmp(&other.first))
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}..{})", self.seq + 1, self.first, self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_requires_same_position_at_same_pattern_index() {
        // Example 2.1: instances (1,<1,2>) and (1,<1,5>) of AB overlap (same
        // first position); (1,<1,2>) and (1,<4,5>) do not.
        let a = Landmark::new(0, vec![1, 2]);
        let b = Landmark::new(0, vec![1, 5]);
        let c = Landmark::new(0, vec![4, 5]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c)); // share l2 = 5
    }

    #[test]
    fn aba_instances_sharing_a_position_at_different_indices_do_not_overlap() {
        // Example 2.1, pattern ABA: (1,<1,2,4>) and (1,<4,5,7>) are
        // NON-overlapping although position 4 appears in both (at different
        // pattern indices).
        let a = Landmark::new(0, vec![1, 2, 4]);
        let b = Landmark::new(0, vec![4, 5, 7]);
        assert!(!a.overlaps(&b));
        // (1,<1,2,7>) and (1,<4,5,7>) overlap because l3 = 7 in both.
        let c = Landmark::new(0, vec![1, 2, 7]);
        assert!(c.overlaps(&b));
    }

    #[test]
    fn instances_in_different_sequences_never_overlap() {
        let a = Landmark::new(0, vec![1, 2]);
        let b = Landmark::new(1, vec![1, 2]);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn compress_keeps_first_and_last() {
        let l = Landmark::new(3, vec![2, 5, 9]);
        let i = l.compress();
        assert_eq!(i, Instance::new(3, 2, 9));
    }

    #[test]
    fn right_shift_order_sorts_by_sequence_then_last_position() {
        let mut instances = vec![
            Instance::new(1, 1, 4),
            Instance::new(0, 4, 9),
            Instance::new(0, 1, 6),
            Instance::new(1, 5, 6),
        ];
        instances.sort();
        assert_eq!(
            instances,
            vec![
                Instance::new(0, 1, 6),
                Instance::new(0, 4, 9),
                Instance::new(1, 1, 4),
                Instance::new(1, 5, 6),
            ]
        );
    }

    #[test]
    fn display_formats_are_one_based_for_sequences() {
        assert_eq!(Landmark::new(0, vec![1, 3, 6]).to_string(), "(1, <1,3,6>)");
        assert_eq!(Instance::new(1, 1, 4).to_string(), "(2, 1..4)");
    }
}
