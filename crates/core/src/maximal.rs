//! Maximal frequent pattern mining.
//!
//! A frequent pattern `P` is **maximal** when no proper super-pattern of `P`
//! is frequent. Maximal patterns are an even more compact representation
//! than closed patterns (every maximal pattern is closed, but not vice
//! versa); they lose the exact supports of their sub-patterns but keep the
//! frontier of "longest things that still repeat often enough", which is what
//! the case-study post-processing of §IV-B ultimately reports (its
//! *maximality* filter keeps only patterns not subsumed by a longer reported
//! pattern).
//!
//! Two entry points are provided:
//!
//! * [`mine_maximal`] — the maximal subset of the frequent patterns, derived
//!   from a complete closed-pattern run (a pattern that is not closed cannot
//!   be maximal, so CloGSgrow's output is a sound starting point);
//! * [`is_maximal`] — a direct definition-level check for a single pattern,
//!   used by tests and by callers who already have a candidate.

use seqdb::{EventId, SequenceDatabase};

use crate::config::MiningConfig;
use crate::engine::{Miner, Mode};
use crate::growth::SupportComputer;
use crate::gsgrow::frequent_events;
use crate::pattern::Pattern;
use crate::result::{MinedPattern, MiningOutcome};

/// Mines the maximal frequent repetitive gapped subsequences of `db`.
///
/// Internally runs CloGSgrow (maximal ⊆ closed) and keeps the patterns with
/// no frequent proper super-pattern. The super-pattern test is performed
/// against the closed result, which is sound: if `P` has a frequent proper
/// super-pattern `Q`, then `Q` has a closed super-pattern `Q'` with
/// `sup(Q') = sup(Q) ≥ min_sup` (Lemma 2), and `Q'` is also a proper
/// super-pattern of `P`, so the subsumption is witnessed inside the closed
/// set.
#[deprecated(
    since = "0.2.0",
    note = "use `Miner::new(db).from_config(config).mode(Mode::Maximal).run()`; for \
            repeated queries prepare once (`PreparedDb::new`) or open a \
            snapshot (`Miner::from_snapshot`) instead of re-indexing per call"
)]
pub fn mine_maximal(db: &SequenceDatabase, config: &MiningConfig) -> MiningOutcome {
    Miner::new(db).from_config(config).mode(Mode::Maximal).run()
}

/// Filters a set of mined patterns down to the maximal ones: patterns not
/// properly contained in any other pattern of the set.
///
/// The input must be a *complete* frequent (or closed-frequent) result for
/// the subsumption test to coincide with the definition of maximality.
pub fn maximal_subset(patterns: &[MinedPattern]) -> Vec<MinedPattern> {
    patterns
        .iter()
        .filter(|candidate| {
            !patterns
                .iter()
                .any(|other| other.pattern.is_proper_superpattern_of(&candidate.pattern))
        })
        .cloned()
        .collect()
}

/// Checks directly whether `pattern` is a maximal frequent pattern of `db`
/// at threshold `min_sup`: it is frequent and no single-event extension
/// (append, interior insertion, or prepend — Definition 3.4) is frequent.
///
/// Single-event extensions suffice: any frequent proper super-pattern of `P`
/// contains, by the Apriori property, a frequent super-pattern of `P` with
/// exactly one more event.
pub fn is_maximal(db: &SequenceDatabase, pattern: &Pattern, min_sup: u64) -> bool {
    let sc = SupportComputer::new(db);
    if pattern.is_empty() || sc.support(pattern) < min_sup {
        return false;
    }
    let events: Vec<EventId> = frequent_events(&sc, db, min_sup);
    for slot in 0..=pattern.len() {
        for &event in &events {
            let extension = pattern.extend_at(slot, event);
            if sc.support(&extension) >= min_sup {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {

    use super::*;

    fn all_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::All)
            .run()
    }

    fn closed_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::Closed)
            .run()
    }

    fn maximal_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::Maximal)
            .run()
    }

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn simple_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"])
    }

    #[test]
    fn maximal_patterns_are_a_subset_of_closed_patterns() {
        let db = running_example();
        for min_sup in [2, 3] {
            let closed = closed_patterns(&db, &MiningConfig::new(min_sup));
            let maximal = maximal_patterns(&db, &MiningConfig::new(min_sup));
            assert!(!maximal.is_empty());
            assert!(maximal.len() <= closed.len());
            for mp in &maximal.patterns {
                assert!(closed.contains(&mp.pattern), "{:?}", mp.pattern);
            }
        }
    }

    #[test]
    fn no_maximal_pattern_is_contained_in_another_frequent_pattern() {
        let db = running_example();
        let min_sup = 3;
        let all = all_patterns(&db, &MiningConfig::new(min_sup));
        let maximal = maximal_patterns(&db, &MiningConfig::new(min_sup));
        for mp in &maximal.patterns {
            for other in &all.patterns {
                assert!(
                    !other.pattern.is_proper_superpattern_of(&mp.pattern),
                    "{:?} is subsumed by frequent {:?}",
                    mp.pattern,
                    other.pattern
                );
            }
        }
    }

    #[test]
    fn every_frequent_pattern_is_contained_in_some_maximal_pattern() {
        let db = simple_example();
        let min_sup = 2;
        let all = all_patterns(&db, &MiningConfig::new(min_sup));
        let maximal = maximal_patterns(&db, &MiningConfig::new(min_sup));
        for mp in &all.patterns {
            assert!(
                maximal
                    .patterns
                    .iter()
                    .any(|max| mp.pattern == max.pattern
                        || mp.pattern.is_subpattern_of(&max.pattern)),
                "{:?} not covered by any maximal pattern",
                mp.pattern
            );
        }
    }

    #[test]
    fn mine_maximal_agrees_with_the_direct_definition_check() {
        let db = running_example();
        let min_sup = 3;
        let all = all_patterns(&db, &MiningConfig::new(min_sup));
        let maximal = maximal_patterns(&db, &MiningConfig::new(min_sup));
        for mp in &all.patterns {
            let in_maximal = maximal.contains(&mp.pattern);
            assert_eq!(
                is_maximal(&db, &mp.pattern, min_sup),
                in_maximal,
                "{:?}",
                mp.pattern
            );
        }
    }

    #[test]
    fn is_maximal_rejects_infrequent_and_empty_patterns() {
        let db = running_example();
        assert!(!is_maximal(&db, &Pattern::empty(), 1));
        // AAA has support 1 < 2.
        let aaa = Pattern::new(db.pattern_from_str("AAA").unwrap());
        assert!(!is_maximal(&db, &aaa, 2));
    }

    #[test]
    fn maximal_subset_of_an_explicit_list() {
        let db = simple_example();
        let p = |s: &str| Pattern::new(db.pattern_from_str(s).unwrap());
        let list = vec![
            MinedPattern::new(p("AB"), 4),
            MinedPattern::new(p("ABC"), 4),
            MinedPattern::new(p("C"), 5),
        ];
        let maximal = maximal_subset(&list);
        let kept: Vec<&Pattern> = maximal.iter().map(|mp| &mp.pattern).collect();
        assert!(kept.contains(&&p("ABC")));
        assert!(!kept.contains(&&p("AB")));
        // C is not a sub-pattern of ABC? It is (C occurs in ABC), so it is
        // dropped as well.
        assert!(!kept.contains(&&p("C")));
        assert_eq!(maximal.len(), 1);
    }
}
