//! The prepared-database snapshot: "prepare once, query many".
//!
//! Every mining run needs the same setup work regardless of the query:
//! interning, the inverted event index of §III-D, and the per-event
//! occurrence counts behind the frequent-event scan of Algorithms 3 and 4.
//! [`PreparedDb`] performs that work exactly once and owns the result — the
//! event catalog, the sequences, the [`InvertedIndex`], the occurrence
//! counts, and the frequency-pruned event order — as an immutable snapshot
//! that any number of queries (and threads: the snapshot is `Send + Sync`
//! and `Arc`-shareable) can borrow.
//!
//! ```
//! use std::sync::Arc;
//! use seqdb::SequenceDatabase;
//! use rgs_core::{Miner, Mode, PreparedDb};
//!
//! let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
//! let prepared = Arc::new(PreparedDb::new(&db));
//!
//! // Many queries, one preparation:
//! let closed = prepared.miner().min_sup(2).mode(Mode::Closed).run();
//! let all = prepared.miner().min_sup(3).mode(Mode::All).run();
//! assert!(all.len() <= closed.len() + 100);
//!
//! // Concurrent queries share the snapshot through `Arc`:
//! let worker = Arc::clone(&prepared);
//! let handle = std::thread::spawn(move || {
//!     Miner::from_shared(worker).min_sup(2).run().len()
//! });
//! assert_eq!(handle.join().unwrap(), closed.len());
//! ```

use std::path::Path;

use seqdb::{EventCatalog, EventId, InvertedIndex, SequenceDatabase, SharedSlice, SnapshotError};

use crate::engine::Miner;
use crate::growth::SupportComputer;

/// The query-independent artifacts derived from a database: the inverted
/// index, the per-event occurrence counts, and the frequency-pruned event
/// order. Shared by [`PreparedDb`] (which owns its database) and the lazy
/// path of [`Miner::new`] (which borrows the caller's database and prepares
/// these parts per run).
///
/// Every column is a [`SharedSlice`], so the parts are either computed in
/// memory ([`PreparedParts::build`]) or reconstructed zero-copy from a
/// snapshot image ([`PreparedDb::open_snapshot`]) — queries cannot tell
/// the difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PreparedParts {
    /// The inverted event index of §III-D.
    pub index: InvertedIndex,
    /// `occurrence_counts[event.index()]` = total occurrences of `event`,
    /// i.e. the repetitive support of the single-event pattern.
    pub occurrence_counts: SharedSlice<u64>,
    /// The events that occur at least once, in catalog order — the
    /// candidate order every DFS iterates, so pattern emission order is
    /// identical no matter how the database was prepared.
    pub event_order: SharedSlice<EventId>,
}

impl PreparedParts {
    /// Builds the parts in one pass over `db`.
    pub fn build(db: &SequenceDatabase) -> Self {
        let index = db.inverted_index();
        let occurrence_counts = index.total_counts();
        let event_order = db
            .catalog()
            .ids()
            .filter(|e| occurrence_counts[e.index()] > 0)
            .collect::<Vec<_>>();
        Self {
            index,
            occurrence_counts: occurrence_counts.into(),
            event_order: event_order.into(),
        }
    }

    /// The events whose total occurrence count reaches `min_sup`, in
    /// catalog order — the frequent single events of Algorithm 3, line 1,
    /// answered from the precomputed counts without touching the index.
    pub fn frequent_events(&self, min_sup: u64) -> Vec<EventId> {
        self.event_order
            .iter()
            .copied()
            .filter(|e| self.occurrence_counts[e.index()] >= min_sup)
            .collect()
    }
}

/// A borrowed view of a database plus its prepared parts: what the mining
/// cores actually run against. `Copy`, so it threads freely through the
/// DFS and across `std::thread::scope` workers.
///
/// Everything behind this view is flat, contiguous storage — the columnar
/// [`seqdb::SeqStore`] event arena and the CSR inverted index — owned by
/// the [`PreparedDb`] (or the per-run preparation); workers only ever see
/// `&[u32]`/`&[EventId]` slices into those arenas, so parallel fan-out
/// shares them with zero per-thread copies.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PreparedRef<'a> {
    pub db: &'a SequenceDatabase,
    pub parts: &'a PreparedParts,
}

impl<'a> PreparedRef<'a> {
    /// A borrowed-index support computer over this view (O(1): no index is
    /// built).
    pub fn support_computer(self) -> SupportComputer<'a> {
        SupportComputer::borrowed(self.db, &self.parts.index)
    }
}

/// An immutable, `Arc`-shareable snapshot of a database prepared for
/// mining: the catalog and sequences, the inverted event index, the
/// per-event occurrence counts, and the frequency-pruned event order.
///
/// Build it once with [`PreparedDb::new`] (or [`Miner::prepare`]), then run
/// any number of queries against it through [`PreparedDb::miner`],
/// [`Miner::from_prepared`], or [`Miner::from_shared`]. Queries only borrow
/// the snapshot, so one `PreparedDb` behind an `Arc` can serve concurrent
/// requests from many threads.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedDb {
    db: SequenceDatabase,
    parts: PreparedParts,
}

impl PreparedDb {
    /// Prepares a snapshot of `db`: clones the catalog and sequences, builds
    /// the inverted index, and precomputes the occurrence counts and the
    /// frequency-pruned event order.
    pub fn new(db: &SequenceDatabase) -> Self {
        Self::from_database(db.clone())
    }

    /// Prepares a snapshot taking ownership of `db` (no clone).
    pub fn from_database(db: SequenceDatabase) -> Self {
        let parts = PreparedParts::build(&db);
        Self { db, parts }
    }

    /// Serializes this snapshot into a single on-disk image file (see
    /// [`crate::snapshot`] for the format) and returns the number of bytes
    /// written. The image holds everything [`PreparedDb::new`] computes —
    /// store, index, counts, event order, catalog — so
    /// [`PreparedDb::open_snapshot`] restores an equivalent snapshot
    /// without touching the original text or re-indexing.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        crate::snapshot::write_prepared(self, path.as_ref())
    }

    /// Opens a snapshot image written by [`PreparedDb::write_snapshot`].
    ///
    /// On unix the file is `mmap`ed and every arena is reconstructed as a
    /// zero-copy slice over the mapping (elsewhere the file is read once
    /// into an aligned buffer). The header, a full-file checksum, and every
    /// structural invariant are validated first: a truncated, bit-flipped,
    /// wrong-magic, or wrong-version file is rejected with a descriptive
    /// [`SnapshotError`] and never panics. Mining output over the reopened
    /// snapshot is bit-identical to the in-memory original.
    pub fn open_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        crate::snapshot::open_prepared(path.as_ref())
    }

    /// Assembles a snapshot from already-validated parts (the snapshot
    /// loader's constructor).
    pub(crate) fn from_parts(db: SequenceDatabase, parts: PreparedParts) -> Self {
        Self { db, parts }
    }

    /// The snapshotted database.
    pub fn database(&self) -> &SequenceDatabase {
        &self.db
    }

    /// The snapshotted event catalog.
    pub fn catalog(&self) -> &EventCatalog {
        self.db.catalog()
    }

    /// The inverted event index built at preparation time.
    pub fn index(&self) -> &InvertedIndex {
        &self.parts.index
    }

    /// Total occurrences of `event` (the repetitive support of the
    /// single-event pattern), answered from the precomputed counts.
    pub fn occurrence_count(&self, event: EventId) -> u64 {
        self.parts
            .occurrence_counts
            .get(event.index())
            .copied()
            .unwrap_or(0)
    }

    /// The events whose occurrence count reaches `min_sup`, in catalog
    /// order — the per-query frequent-event scan, reduced to a filter over
    /// the precomputed counts.
    pub fn frequent_events(&self, min_sup: u64) -> Vec<EventId> {
        self.parts.frequent_events(min_sup.max(1))
    }

    /// A support computer borrowing this snapshot's index (O(1); compare
    /// [`SupportComputer::new`], which builds a fresh index).
    pub fn support_computer(&self) -> SupportComputer<'_> {
        self.as_prepared_ref().support_computer()
    }

    /// Heap bytes held by the snapshot's arenas: the columnar event store
    /// plus the CSR inverted index. These are the two flat buffers every
    /// query (and every parallel seed worker, through `PreparedRef`
    /// slices) shares without copying.
    pub fn heap_bytes(&self) -> usize {
        self.db.store().heap_bytes() + self.parts.index.heap_bytes()
    }

    /// Starts a [`Miner`] builder executing against this snapshot.
    pub fn miner(&self) -> Miner<'_> {
        Miner::from_prepared(self)
    }

    /// The prepared parts (snapshot serialization reads them directly).
    pub(crate) fn parts(&self) -> &PreparedParts {
        &self.parts
    }

    pub(crate) fn as_prepared_ref(&self) -> PreparedRef<'_> {
        PreparedRef {
            db: &self.db,
            parts: &self.parts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsgrow::frequent_events;
    use seqdb::DatabaseBuilder;

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    #[test]
    fn occurrence_counts_match_the_index() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        for event in db.catalog().ids() {
            assert_eq!(
                prepared.occurrence_count(event),
                prepared.index().total_count(event) as u64
            );
        }
        assert_eq!(prepared.occurrence_count(EventId(99)), 0);
    }

    #[test]
    fn frequent_events_match_the_legacy_scan() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let sc = SupportComputer::new(&db);
        for min_sup in [1, 2, 3, 5, 6] {
            assert_eq!(
                prepared.frequent_events(min_sup),
                frequent_events(&sc, &db, min_sup),
                "min_sup = {min_sup}"
            );
        }
    }

    #[test]
    fn event_order_prunes_catalog_entries_that_never_occur() {
        let mut builder = DatabaseBuilder::new();
        builder.intern("GHOST");
        builder.push_tokens(["A", "B", "A"]);
        let db = builder.finish();
        let prepared = PreparedDb::new(&db);
        let ghost = db.catalog().id("GHOST").unwrap();
        assert!(!prepared.frequent_events(1).contains(&ghost));
        assert_eq!(prepared.frequent_events(1).len(), 2);
    }

    #[test]
    fn snapshot_is_independent_of_the_source_database() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        drop(db);
        assert_eq!(prepared.database().num_sequences(), 2);
        assert!(!prepared.frequent_events(2).is_empty());
    }
}
