//! The prepared-database snapshot: "prepare once, query many".
//!
//! Every mining run needs the same setup work regardless of the query:
//! interning, the inverted event index of §III-D, and the per-event
//! occurrence counts behind the frequent-event scan of Algorithms 3 and 4.
//! [`PreparedDb`] performs that work exactly once and owns the result — the
//! event catalog, the sequences, the [`ShardedIndex`], the occurrence
//! counts, and the frequency-pruned event order — as an immutable snapshot
//! that any number of queries (and threads: the snapshot is `Send + Sync`
//! and `Arc`-shareable) can borrow.
//!
//! ```
//! use std::sync::Arc;
//! use seqdb::SequenceDatabase;
//! use rgs_core::{Miner, Mode, PreparedDb};
//!
//! let db = SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"]);
//! let prepared = Arc::new(PreparedDb::new(&db));
//!
//! // Many queries, one preparation:
//! let closed = prepared.miner().min_sup(2).mode(Mode::Closed).run();
//! let all = prepared.miner().min_sup(3).mode(Mode::All).run();
//! assert!(all.len() <= closed.len() + 100);
//!
//! // Concurrent queries share the snapshot through `Arc`:
//! let worker = Arc::clone(&prepared);
//! let handle = std::thread::spawn(move || {
//!     Miner::from_shared(worker).min_sup(2).run().len()
//! });
//! assert_eq!(handle.join().unwrap(), closed.len());
//! ```

use std::path::Path;

use seqdb::{
    DatabaseStats, EventCatalog, EventId, SequenceDatabase, ShardedIndex, ShardedSeqStore,
    SharedSlice, SnapshotError,
};

use crate::engine::{Miner, MiningRequest};
use crate::growth::SupportComputer;

/// The query-independent artifacts derived from a database: the inverted
/// index, the per-event occurrence counts, and the frequency-pruned event
/// order. Shared by [`PreparedDb`] (which owns its database) and the lazy
/// path of [`Miner::new`] (which borrows the caller's database and prepares
/// these parts per run).
///
/// Every column is a [`SharedSlice`], so the parts are either computed in
/// memory ([`PreparedParts::build`]) or reconstructed zero-copy from a
/// snapshot image ([`PreparedDb::open_snapshot`]) — queries cannot tell
/// the difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PreparedParts {
    /// The inverted event index of §III-D — one CSR index per shard,
    /// queried through global sequence ids (a single shard when the
    /// database was prepared flat).
    pub index: ShardedIndex,
    /// `occurrence_counts[event.index()]` = total occurrences of `event`,
    /// i.e. the repetitive support of the single-event pattern.
    pub occurrence_counts: SharedSlice<u64>,
    /// The events that occur at least once, in catalog order — the
    /// candidate order every DFS iterates, so pattern emission order is
    /// identical no matter how the database was prepared.
    pub event_order: SharedSlice<EventId>,
}

impl PreparedParts {
    /// Builds the parts in one pass over `db` (single shard).
    pub fn build(db: &SequenceDatabase) -> Self {
        Self::from_index(db, ShardedIndex::single(db.inverted_index()))
    }

    /// Builds the parts over a sharded store: one index per shard, built on
    /// up to `threads` workers. Counts and event order are identical to the
    /// flat build (per-shard totals sum exactly).
    pub fn build_sharded(db: &SequenceDatabase, store: &ShardedSeqStore, threads: usize) -> Self {
        Self::from_index(db, ShardedIndex::build(store, db.num_events(), threads))
    }

    fn from_index(db: &SequenceDatabase, index: ShardedIndex) -> Self {
        let occurrence_counts = index.total_counts();
        let event_order = db
            .catalog()
            .ids()
            .filter(|e| occurrence_counts[e.index()] > 0)
            .collect::<Vec<_>>();
        Self {
            index,
            occurrence_counts: occurrence_counts.into(),
            event_order: event_order.into(),
        }
    }

    /// The events whose total occurrence count reaches `min_sup`, in
    /// catalog order — the frequent single events of Algorithm 3, line 1,
    /// answered from the precomputed counts without touching the index.
    pub fn frequent_events(&self, min_sup: u64) -> Vec<EventId> {
        self.event_order
            .iter()
            .copied()
            .filter(|e| self.occurrence_counts[e.index()] >= min_sup)
            .collect()
    }
}

/// A borrowed view of a database plus its prepared parts: what the mining
/// cores actually run against. `Copy`, so it threads freely through the
/// DFS and across `std::thread::scope` workers.
///
/// Everything behind this view is flat, contiguous storage — the columnar
/// [`seqdb::SeqStore`] event arena and the CSR inverted index — owned by
/// the [`PreparedDb`] (or the per-run preparation); workers only ever see
/// `&[u32]`/`&[EventId]` slices into those arenas, so parallel fan-out
/// shares them with zero per-thread copies.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PreparedRef<'a> {
    pub db: &'a SequenceDatabase,
    pub parts: &'a PreparedParts,
}

impl<'a> PreparedRef<'a> {
    /// A borrowed-index support computer over this view (O(1): no index is
    /// built).
    pub fn support_computer(self) -> SupportComputer<'a> {
        SupportComputer::borrowed(self.db, &self.parts.index)
    }
}

/// Provenance of a snapshot-backed preparation: the opened image's recorded
/// checksum and format version, as reported by
/// [`PreparedDb::image_checksum`] / [`PreparedDb::image_version`].
///
/// The checksum was verified against every file byte at open time and the
/// mapping is immutable, so it is a stable identity for the corpus — the
/// serve layer's result cache keys on it instead of re-hashing the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageInfo {
    /// The FNV-1a 64 full-file checksum from the image header.
    pub checksum: u64,
    /// The snapshot format version (1 through 3).
    pub version: u32,
}

/// An immutable, `Arc`-shareable snapshot of a database prepared for
/// mining: the catalog and sequences, the inverted event index, the
/// per-event occurrence counts, and the frequency-pruned event order.
///
/// Build it once with [`PreparedDb::new`] (or [`Miner::prepare`]), then run
/// any number of queries against it through [`PreparedDb::miner`],
/// [`Miner::from_prepared`], or [`Miner::from_shared`]. Queries only borrow
/// the snapshot, so one `PreparedDb` behind an `Arc` can serve concurrent
/// requests from many threads.
#[derive(Debug, Clone)]
pub struct PreparedDb {
    db: SequenceDatabase,
    /// The store split into per-shard windows (a single full-range window
    /// when prepared flat). After `share_store` the windows alias the
    /// database's arena, so this costs offset tables, not event copies.
    store_shards: ShardedSeqStore,
    parts: PreparedParts,
    /// `Some` when this preparation was reconstructed from a snapshot
    /// image, `None` for heap builds.
    image: Option<ImageInfo>,
}

impl PartialEq for PreparedDb {
    fn eq(&self, other: &Self) -> bool {
        // `image` is provenance, not content: a snapshot reopened from disk
        // equals the heap-built preparation it was written from (the
        // round-trip suites assert exactly that).
        self.db == other.db && self.store_shards == other.store_shards && self.parts == other.parts
    }
}

impl PreparedDb {
    /// Prepares a snapshot of `db`: clones the catalog and sequences, builds
    /// the inverted index, and precomputes the occurrence counts and the
    /// frequency-pruned event order.
    pub fn new(db: &SequenceDatabase) -> Self {
        Self::from_database(db.clone())
    }

    /// Prepares a snapshot taking ownership of `db` (no clone).
    pub fn from_database(db: SequenceDatabase) -> Self {
        Self::from_database_sharded(db, 1, 1)
    }

    /// [`PreparedDb::new`] with the store partitioned into `shards` shards
    /// at event-mass-balanced sequence boundaries.
    pub fn new_sharded(db: &SequenceDatabase, shards: usize, threads: usize) -> Self {
        Self::from_database_sharded(db.clone(), shards, threads)
    }

    /// Prepares a sharded snapshot taking ownership of `db`: the flat store
    /// is promoted to shared storage and split into per-shard zero-copy
    /// windows, and one inverted index per shard is built on up to
    /// `threads` workers. Every query — and every mining mode — over the
    /// sharded snapshot is bit-identical to the flat preparation; only the
    /// physical layout (and the parallelism it unlocks) changes.
    pub fn from_database_sharded(mut db: SequenceDatabase, shards: usize, threads: usize) -> Self {
        db.share_store();
        let store_shards = ShardedSeqStore::from_store(db.store().clone(), shards);
        let parts = PreparedParts::build_sharded(&db, &store_shards, threads);
        Self {
            db,
            store_shards,
            parts,
            image: None,
        }
    }

    /// Re-prepares this snapshot with a different shard count (the
    /// rebalance path): the shared arena is re-windowed — no event is
    /// copied — and per-shard indexes are rebuilt on up to `threads`
    /// workers. Image provenance carries over: the corpus bytes are
    /// unchanged, and mining output is shard-invariant, so the checksum
    /// still identifies the result set.
    pub fn reshard(&self, shards: usize, threads: usize) -> Self {
        let store_shards = self.store_shards.rebalance(shards);
        let parts = PreparedParts::build_sharded(&self.db, &store_shards, threads);
        Self {
            db: self.db.clone(),
            store_shards,
            parts,
            image: self.image,
        }
    }

    /// Serializes this snapshot into a single on-disk image file (see
    /// [`crate::snapshot`] for the format) and returns the number of bytes
    /// written. The image holds everything [`PreparedDb::new`] computes —
    /// store, index, counts, event order, catalog — so
    /// [`PreparedDb::open_snapshot`] restores an equivalent snapshot
    /// without touching the original text or re-indexing.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        crate::snapshot::write_prepared(self, path.as_ref())
    }

    /// Opens a snapshot image written by [`PreparedDb::write_snapshot`].
    ///
    /// On unix the file is `mmap`ed and every arena is reconstructed as a
    /// zero-copy slice over the mapping (elsewhere the file is read once
    /// into an aligned buffer). The header, a full-file checksum, and every
    /// structural invariant are validated first: a truncated, bit-flipped,
    /// wrong-magic, or wrong-version file is rejected with a descriptive
    /// [`SnapshotError`] and never panics. Mining output over the reopened
    /// snapshot is bit-identical to the in-memory original.
    pub fn open_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        crate::snapshot::open_prepared(path.as_ref())
    }

    /// Assembles a snapshot from already-validated parts (the snapshot
    /// loader's constructor), recording which image it came from.
    pub(crate) fn from_parts(
        db: SequenceDatabase,
        store_shards: ShardedSeqStore,
        parts: PreparedParts,
        image: Option<ImageInfo>,
    ) -> Self {
        Self {
            db,
            store_shards,
            parts,
            image,
        }
    }

    /// The snapshotted database.
    pub fn database(&self) -> &SequenceDatabase {
        &self.db
    }

    /// The provenance of a snapshot-backed preparation, `None` for heap
    /// builds.
    pub fn image_info(&self) -> Option<ImageInfo> {
        self.image
    }

    /// The verified full-file checksum of the image this preparation was
    /// opened from — the stable corpus identity serve-layer cache keys use.
    /// `None` for heap builds, which have no on-disk identity.
    pub fn image_checksum(&self) -> Option<u64> {
        self.image.map(|info| info.checksum)
    }

    /// The snapshot format version (1 through 3) of the backing image,
    /// `None` for heap builds.
    pub fn image_version(&self) -> Option<u32> {
        self.image.map(|info| info.version)
    }

    /// The snapshotted event catalog.
    pub fn catalog(&self) -> &EventCatalog {
        self.db.catalog()
    }

    /// The (sharded) inverted event index built at preparation time.
    pub fn index(&self) -> &ShardedIndex {
        &self.parts.index
    }

    /// Number of shards this snapshot is partitioned into (1 when prepared
    /// flat).
    pub fn shard_count(&self) -> usize {
        self.store_shards.num_shards()
    }

    /// The per-shard store windows.
    pub fn store_shards(&self) -> &ShardedSeqStore {
        &self.store_shards
    }

    /// Per-shard footprint breakdown: sequences, events, and the store /
    /// index byte contributions of each shard. Summed over shards this
    /// matches the whole-database numbers (the store column counts each
    /// shard's window — arena slice plus local offsets — so the total can
    /// exceed [`seqdb::SeqStore::heap_bytes`] of the flat store only by the
    /// duplicated offset tables).
    pub fn shard_footprints(&self) -> Vec<ShardFootprint> {
        (0..self.shard_count())
            .map(|k| {
                let store = self.store_shards.shard(k);
                let index = self.parts.index.shard(k);
                ShardFootprint {
                    shard: k,
                    sequences: store.num_sequences(),
                    events: store.total_length(),
                    store_bytes: store.heap_bytes(),
                    index_bytes: index.heap_bytes(),
                }
            })
            .collect()
    }

    /// Summary statistics of the snapshotted database with the shard count
    /// filled in — what `rgs-mine stats` prints, truthful under sharding.
    pub fn stats(&self) -> DatabaseStats {
        self.db.stats().with_shards(self.shard_count())
    }

    /// Total occurrences of `event` (the repetitive support of the
    /// single-event pattern), answered from the precomputed counts.
    pub fn occurrence_count(&self, event: EventId) -> u64 {
        self.parts
            .occurrence_counts
            .get(event.index())
            .copied()
            .unwrap_or(0)
    }

    /// The events whose occurrence count reaches `min_sup`, in catalog
    /// order — the per-query frequent-event scan, reduced to a filter over
    /// the precomputed counts.
    pub fn frequent_events(&self, min_sup: u64) -> Vec<EventId> {
        self.parts.frequent_events(min_sup.max(1))
    }

    /// A support computer borrowing this snapshot's index (O(1); compare
    /// [`SupportComputer::new`], which builds a fresh index).
    pub fn support_computer(&self) -> SupportComputer<'_> {
        self.as_prepared_ref().support_computer()
    }

    /// Heap bytes held by the snapshot's arenas: the columnar event store,
    /// the CSR inverted index (summed over shards), and — under sharding —
    /// the per-shard window tables (local offsets plus the shard map; the
    /// windows alias the shared event arena, which is counted once). These
    /// are the flat buffers every query (and every parallel worker, through
    /// `PreparedRef` slices) shares without copying.
    pub fn heap_bytes(&self) -> usize {
        let window_overhead = if self.shard_count() > 1 {
            self.store_shards.window_overhead_bytes()
        } else {
            0
        };
        self.db.store().heap_bytes() + self.parts.index.heap_bytes() + window_overhead
    }

    /// Proves the cross-component invariants of this live snapshot — the
    /// same composition rules `seqdb::snapshot::verify` checks statically on
    /// an image file: store/catalog dimension agreement, every arena event
    /// inside the alphabet, the shard map partitioning the sequence range
    /// exactly with each shard window matching the global CSR table,
    /// occurrence counts equal to an actual recount, and the candidate
    /// order being exactly the occurring events in catalog order.
    ///
    /// Returns every violated invariant as a human-readable message;
    /// `Ok(())` means the snapshot is internally consistent. This is a
    /// debugging/auditing aid (O(total events)), not a query-path check.
    pub fn verify_invariants(&self) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        let num_events = self.db.num_events();
        let num_sequences = self.db.num_sequences();
        let total_length = self.db.total_length();
        let store = self.db.store();

        if self.catalog().len() != num_events {
            violations.push(format!(
                "catalog holds {} labels but the database records {num_events} events",
                self.catalog().len()
            ));
        }
        if store.num_sequences() != num_sequences || store.total_length() != total_length {
            violations.push(format!(
                "store dimensions {}x{} disagree with the database {num_sequences}x{total_length}",
                store.num_sequences(),
                store.total_length()
            ));
        }
        if let Some((i, event)) = store
            .event_column()
            .iter()
            .enumerate()
            .find(|(_, e)| e.index() >= num_events)
        {
            violations.push(format!(
                "arena element {i} references event {} outside the {num_events}-event alphabet",
                event.index()
            ));
        }

        // The shard layer: store windows and indexes agree with the map,
        // and the map partitions the sequence range exactly.
        let shards = &self.store_shards;
        if shards.map().num_sequences() != num_sequences {
            violations.push(format!(
                "shard map covers {} sequences, database has {num_sequences}",
                shards.map().num_sequences()
            ));
        }
        if self.parts.index.num_shards() != shards.num_shards() {
            violations.push(format!(
                "{} index shards for {} store shards",
                self.parts.index.num_shards(),
                shards.num_shards()
            ));
        }
        let mut covered = 0usize;
        let mut windowed = 0usize;
        for k in 0..shards.num_shards() {
            let range = shards.map().range(k);
            if range.start != covered {
                violations.push(format!(
                    "shard {k} starts at sequence {} but the previous shard ends at {covered}",
                    range.start
                ));
            }
            covered = range.end;
            let window = shards.shard(k);
            if window.num_sequences() != range.len() {
                violations.push(format!(
                    "shard {k} window holds {} sequences, its map range holds {}",
                    window.num_sequences(),
                    range.len()
                ));
            }
            windowed += window.total_length();
        }
        if covered != num_sequences {
            violations.push(format!(
                "shard map ends at sequence {covered}, database has {num_sequences}"
            ));
        }
        if windowed != total_length {
            violations.push(format!(
                "shard windows hold {windowed} events in total, database has {total_length}"
            ));
        }

        // Counts and candidate order against an actual recount of the arena.
        let mut histogram = vec![0u64; num_events];
        for event in store.event_column().iter() {
            if let Some(slot) = histogram.get_mut(event.index()) {
                *slot += 1;
            }
        }
        if self.parts.occurrence_counts.as_slice() != histogram.as_slice() {
            violations.push("occurrence counts disagree with an arena recount".to_owned());
        }
        let expected_order: Vec<EventId> = self
            .catalog()
            .ids()
            .filter(|e| histogram.get(e.index()).copied().unwrap_or(0) > 0)
            .collect();
        if self.parts.event_order.as_slice() != expected_order.as_slice() {
            violations
                .push("candidate order is not the occurring events in catalog order".to_owned());
        }
        let index_counts = self.parts.index.total_counts();
        if index_counts != histogram {
            violations.push("index posting-list totals disagree with an arena recount".to_owned());
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Starts a [`Miner`] builder executing against this snapshot.
    pub fn miner(&self) -> Miner<'_> {
        Miner::from_prepared(self)
    }

    /// Executes a whole batch of requests through one shared DFS per
    /// compatible group (see [`crate::batch`]). `results[i]` is
    /// bit-identical — patterns, supports, order, truncation, work
    /// counters — to running `requests[i]` solo under sequential
    /// execution; only `elapsed_seconds` (whole-batch wall clock) differs.
    pub fn batch(&self, requests: &[MiningRequest]) -> Vec<crate::batch::MiningResult> {
        self.batch_with_deadlines(requests, &[])
    }

    /// [`Self::batch`] with per-request deadlines (indexed by request
    /// slot; missing or `None` entries mean no deadline). A request whose
    /// deadline expires mid-run comes back `cancelled` and truncated at
    /// the deadline, without affecting its batch siblings.
    pub fn batch_with_deadlines(
        &self,
        requests: &[MiningRequest],
        deadlines: &[Option<std::time::Instant>],
    ) -> Vec<crate::batch::MiningResult> {
        crate::batch::run_batch(self.as_prepared_ref(), requests, deadlines)
    }

    /// The prepared parts (snapshot serialization reads them directly).
    pub(crate) fn parts(&self) -> &PreparedParts {
        &self.parts
    }

    pub(crate) fn as_prepared_ref(&self) -> PreparedRef<'_> {
        PreparedRef {
            db: &self.db,
            parts: &self.parts,
        }
    }
}

/// The byte footprint of one shard of a [`PreparedDb`], as reported by
/// [`PreparedDb::shard_footprints`] and the `rgs-mine stats` breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFootprint {
    /// Shard number (0-based, map order).
    pub shard: usize,
    /// Sequences in the shard.
    pub sequences: usize,
    /// Total events in the shard (its share of the arena).
    pub events: usize,
    /// Bytes of the shard's store window (arena slice + local offsets).
    pub store_bytes: usize,
    /// Bytes of the shard's CSR inverted index.
    pub index_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsgrow::frequent_events;
    use seqdb::DatabaseBuilder;

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    #[test]
    fn occurrence_counts_match_the_index() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        for event in db.catalog().ids() {
            assert_eq!(
                prepared.occurrence_count(event),
                prepared.index().total_count(event) as u64
            );
        }
        assert_eq!(prepared.occurrence_count(EventId(99)), 0);
    }

    #[test]
    fn frequent_events_match_the_legacy_scan() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        let sc = SupportComputer::new(&db);
        for min_sup in [1, 2, 3, 5, 6] {
            assert_eq!(
                prepared.frequent_events(min_sup),
                frequent_events(&sc, &db, min_sup),
                "min_sup = {min_sup}"
            );
        }
    }

    #[test]
    fn event_order_prunes_catalog_entries_that_never_occur() {
        let mut builder = DatabaseBuilder::new();
        builder.intern("GHOST");
        builder.push_tokens(["A", "B", "A"]);
        let db = builder.finish();
        let prepared = PreparedDb::new(&db);
        let ghost = db.catalog().id("GHOST").unwrap();
        assert!(!prepared.frequent_events(1).contains(&ghost));
        assert_eq!(prepared.frequent_events(1).len(), 2);
    }

    #[test]
    fn live_invariants_hold_for_flat_and_sharded_preparations() {
        let db = running_example();
        assert_eq!(PreparedDb::new(&db).verify_invariants(), Ok(()));
        for shards in [2, 3, 7] {
            let prepared = PreparedDb::new_sharded(&db, shards, 2);
            assert_eq!(prepared.verify_invariants(), Ok(()), "{shards} shards");
            assert_eq!(prepared.reshard(1, 1).verify_invariants(), Ok(()));
        }
    }

    #[test]
    fn snapshot_is_independent_of_the_source_database() {
        let db = running_example();
        let prepared = PreparedDb::new(&db);
        drop(db);
        assert_eq!(prepared.database().num_sequences(), 2);
        assert!(!prepared.frequent_events(2).is_empty());
    }
}
