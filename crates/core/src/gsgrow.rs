//! GSgrow (Algorithm 3): depth-first mining of **all** frequent repetitive
//! gapped subsequences.
//!
//! The miner embeds the instance-growth operation into a depth-first pattern
//! growth: starting from every frequent single event, it repeatedly grows
//! the current pattern `P` to `P ◦ e` by extending `P`'s leftmost support
//! set (Algorithm 2), and recurses while the support stays at or above
//! `min_sup` (Apriori property, Theorem 1).

use std::ops::ControlFlow;
use std::time::Instant;

use seqdb::{EventId, SequenceDatabase};

use crate::config::MiningConfig;
use crate::engine::{Miner, Mode};
use crate::growth::{SetPool, SupportComputer};
use crate::pattern::Pattern;
use crate::prepared::PreparedRef;
use crate::result::{MiningOutcome, MiningStats};
use crate::support::SupportSet;

/// Mines all frequent repetitive gapped subsequences of `db` with respect to
/// `config.min_sup` (Algorithm 3, GSgrow).
#[deprecated(
    since = "0.2.0",
    note = "use `Miner::new(db).from_config(config).mode(Mode::All).run()`; for \
            repeated queries prepare once (`PreparedDb::new`) or open a \
            snapshot (`Miner::from_snapshot`) instead of re-indexing per call"
)]
pub fn mine_all(db: &SequenceDatabase, config: &MiningConfig) -> MiningOutcome {
    Miner::new(db).from_config(config).mode(Mode::All).run()
}

/// Streaming GSgrow core: runs the DFS of Algorithm 3 and hands every
/// frequent pattern, with its leftmost support set, to `emit`. The search
/// stops when `emit` returns [`ControlFlow::Break`]. Returns the search
/// statistics (elapsed time is the caller's responsibility).
pub(crate) fn mine_all_streaming(
    prepared: PreparedRef<'_>,
    config: &MiningConfig,
    emit: &mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
) -> MiningStats {
    let sc = prepared.support_computer();
    let min_sup = config.effective_min_sup();
    let events = prepared.parts.frequent_events(min_sup);
    let mut stats = MiningStats::default();
    for &seed in &events {
        let initial = sc.initial_support_set(seed);
        let (seed_stats, flow) = mine_all_seed(&sc, config, min_sup, &events, seed, initial, emit);
        stats.merge(&seed_stats);
        if flow.is_break() {
            break;
        }
    }
    stats
}

/// Mines the complete DFS subtree rooted at the single-event pattern
/// `seed` (one iteration of Algorithm 3's outer loop), starting from the
/// caller-supplied `initial` leftmost support set of the seed — either
/// computed whole ([`SupportComputer::initial_support_set`]) or assembled
/// from per-shard fragments by the two-level work queue. Subtrees of
/// distinct seeds are independent, which is what makes first-level
/// parallelism deterministic: running the seeds in any order and
/// concatenating the per-seed emissions in seed order reproduces the
/// sequential stream exactly.
pub(crate) fn mine_all_seed(
    sc: &SupportComputer<'_>,
    config: &MiningConfig,
    min_sup: u64,
    events: &[EventId],
    seed: EventId,
    initial: SupportSet,
    emit: &mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
) -> (MiningStats, ControlFlow<()>) {
    let mut miner = GsGrow {
        sc,
        config,
        min_sup,
        frequent_events: events,
        stats: MiningStats::default(),
        stopped: false,
        pool: SetPool::new(),
        emit,
    };
    let support = initial;
    if support.support() >= min_sup {
        miner.mine_fre(&Pattern::single(seed), support);
    }
    let flow = if miner.stopped {
        ControlFlow::Break(())
    } else {
        ControlFlow::Continue(())
    };
    (miner.stats, flow)
}

/// The single events whose repetitive support (total occurrence count)
/// reaches `min_sup`; only these can appear in frequent patterns (Apriori).
pub(crate) fn frequent_events(
    sc: &SupportComputer<'_>,
    db: &SequenceDatabase,
    min_sup: u64,
) -> Vec<EventId> {
    db.catalog()
        .ids()
        .filter(|&e| sc.index().total_count(e) as u64 >= min_sup)
        .collect()
}

struct GsGrow<'a, 'b, 'e> {
    sc: &'a SupportComputer<'b>,
    config: &'a MiningConfig,
    min_sup: u64,
    frequent_events: &'a [EventId],
    stats: MiningStats,
    stopped: bool,
    /// Recycles support sets across growth attempts: failed growths hand
    /// their buffer straight back, finished subtrees return theirs on the
    /// way up, so steady-state growth never touches the heap.
    pool: SetPool,
    emit: &'e mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
}

impl GsGrow<'_, '_, '_> {
    /// `mineFre(SeqDB, P, I)`: emits `P` and recursively grows it. The
    /// support set is returned to the pool when the subtree is done.
    fn mine_fre(&mut self, pattern: &Pattern, support: SupportSet) {
        self.stats.visited += 1;
        if (self.emit)(pattern, &support).is_break() {
            self.stopped = true;
        }
        if self.stopped || !self.config.allows_growth(pattern.len()) {
            self.pool.give(support);
            return;
        }
        let events = self.frequent_events;
        for &event in events {
            if self.stopped {
                break;
            }
            self.stats.instance_growths += 1;
            let mut grown = self.pool.take();
            self.sc
                .instance_growth_into(&support, event, usize::MAX, &mut grown);
            if grown.support() >= self.min_sup {
                self.mine_fre(&pattern.grow(event), grown);
            } else {
                self.pool.give(grown);
            }
        }
        self.pool.give(support);
    }
}

/// Computes only the mining statistics (no pattern materialization) — a
/// light-weight variant used by benchmarks that measure runtime and pattern
/// counts for very large outputs.
pub fn count_all(db: &SequenceDatabase, config: &MiningConfig) -> MiningStats {
    let start = Instant::now();
    let sc = SupportComputer::new(db);
    let min_sup = config.effective_min_sup();
    let events = frequent_events(&sc, db, min_sup);
    let mut stats = MiningStats::default();

    #[allow(clippy::too_many_arguments)] // internal DFS state, not an API
    fn recurse(
        sc: &SupportComputer<'_>,
        config: &MiningConfig,
        events: &[EventId],
        min_sup: u64,
        depth: usize,
        support: SupportSet,
        stats: &mut MiningStats,
        budget: &mut Option<usize>,
        pool: &mut SetPool,
    ) {
        stats.visited += 1;
        if let Some(b) = budget {
            if *b == 0 {
                pool.give(support);
                return;
            }
            *b -= 1;
        }
        if !config.allows_growth(depth) {
            pool.give(support);
            return;
        }
        for &event in events {
            stats.instance_growths += 1;
            let mut grown = pool.take();
            sc.instance_growth_into(&support, event, usize::MAX, &mut grown);
            if grown.support() >= min_sup {
                recurse(
                    sc,
                    config,
                    events,
                    min_sup,
                    depth + 1,
                    grown,
                    stats,
                    budget,
                    pool,
                );
            } else {
                pool.give(grown);
            }
            if matches!(budget, Some(0)) {
                break;
            }
        }
        pool.give(support);
    }

    let mut budget = config.max_patterns;
    let mut pool = SetPool::new();
    for &event in &events {
        let support = sc.initial_support_set(event);
        if support.support() >= min_sup {
            recurse(
                &sc,
                config,
                &events,
                min_sup,
                1,
                support,
                &mut stats,
                &mut budget,
                &mut pool,
            );
        }
        if matches!(budget, Some(0)) {
            break;
        }
    }
    stats.set_elapsed(start.elapsed());
    stats
}

#[cfg(test)]
mod tests {

    use super::*;
    use crate::reference::{enumerate_frequent, pattern_set};

    fn all_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::All)
            .run()
    }

    fn simple_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"])
    }

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    #[test]
    fn gsgrow_matches_brute_force_on_table_ii() {
        let db = simple_example();
        let mined = all_patterns(&db, &MiningConfig::new(2));
        let brute = enumerate_frequent(&db, 2, 16);
        assert_eq!(pattern_set(&mined.patterns), pattern_set(&brute));
        for mp in &brute {
            assert_eq!(mined.support_of(&mp.pattern), Some(mp.support));
        }
    }

    #[test]
    fn gsgrow_matches_brute_force_on_table_iii() {
        let db = running_example();
        for min_sup in [2, 3, 4] {
            let mined = all_patterns(&db, &MiningConfig::new(min_sup));
            let brute = enumerate_frequent(&db, min_sup, 16);
            assert_eq!(
                pattern_set(&mined.patterns),
                pattern_set(&brute),
                "min_sup = {min_sup}"
            );
        }
    }

    #[test]
    fn example_3_4_frequent_patterns_with_prefix_a() {
        // With min_sup = 3 on Table III, AA is frequent but AAA is not
        // (|I_AAA| = 1 < 3).
        let db = running_example();
        let mined = all_patterns(&db, &MiningConfig::new(3));
        let aa = Pattern::new(db.pattern_from_str("AA").unwrap());
        let aaa = Pattern::new(db.pattern_from_str("AAA").unwrap());
        assert_eq!(mined.support_of(&aa), Some(3));
        assert!(!mined.contains(&aaa));
    }

    #[test]
    fn every_emitted_pattern_meets_the_threshold() {
        let db = running_example();
        let config = MiningConfig::new(2).with_support_sets();
        let mined = all_patterns(&db, &config);
        assert!(!mined.is_empty());
        for mp in &mined.patterns {
            assert!(mp.support >= 2);
            let set = mp.support_set.as_ref().expect("support sets requested");
            assert_eq!(set.support(), mp.support);
        }
    }

    #[test]
    fn max_pattern_length_caps_the_dfs() {
        let db = running_example();
        let config = MiningConfig::new(2).with_max_pattern_length(2);
        let mined = all_patterns(&db, &config);
        assert!(mined.max_pattern_length() <= 2);
        assert!(!mined.is_empty());
    }

    #[test]
    fn max_patterns_truncates_the_run() {
        let db = running_example();
        let config = MiningConfig::new(1).with_max_patterns(5);
        let mined = all_patterns(&db, &config);
        assert!(mined.truncated);
        assert_eq!(mined.len(), 5);
    }

    #[test]
    fn high_threshold_yields_only_single_events_or_nothing() {
        let db = simple_example();
        let mined = all_patterns(&db, &MiningConfig::new(5));
        // A occurs 5 times; B and C occur 5 times? A: 4+... let's just check
        // every mined pattern really has support >= 5 and no super-pattern
        // sneaks in below threshold.
        for mp in &mined.patterns {
            assert!(mp.support >= 5, "{mp:?}");
        }
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let db = SequenceDatabase::new();
        let mined = all_patterns(&db, &MiningConfig::new(1));
        assert!(mined.is_empty());
        assert!(!mined.truncated);
    }

    #[test]
    fn count_all_agrees_with_mine_all_on_visited_nodes() {
        let db = running_example();
        let config = MiningConfig::new(2);
        let mined = all_patterns(&db, &config);
        let counted = count_all(&db, &config);
        assert_eq!(counted.visited, mined.stats.visited);
        assert_eq!(counted.visited as usize, mined.len());
    }

    #[test]
    fn stats_report_positive_work() {
        let db = running_example();
        let mined = all_patterns(&db, &MiningConfig::new(2));
        assert!(mined.stats.visited > 0);
        assert!(mined.stats.instance_growths > 0);
        assert!(mined.stats.elapsed_seconds >= 0.0);
    }
}
