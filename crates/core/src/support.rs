//! Support sets: non-redundant instance sets of maximum size.
//!
//! A *support set* of a pattern `P` (Definition 2.5) is a non-redundant
//! (pairwise non-overlapping) set of instances of `P` whose size equals the
//! repetitive support `sup(P)`. The mining algorithms always manipulate the
//! *leftmost* support set (Definition 3.2), which is produced incrementally
//! by instance growth.
//!
//! Instances are stored in their compressed form (`(seq, first, last)`,
//! §III-D), sorted by sequence index and, within a sequence, in right-shift
//! order. [`SupportSet::reconstruct_landmarks`] rebuilds full landmarks when
//! they are needed for reporting.

use seqdb::{EventId, SequenceDatabase, ShardedIndex};

use crate::constraints::GapConstraints;
use crate::instance::{Instance, Landmark};
use crate::instbuf::InstanceBuffer;
use crate::pattern::Pattern;

/// The (leftmost) support set of a pattern: a maximum-size set of pairwise
/// non-overlapping instances, in compressed storage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupportSet {
    instances: Vec<Instance>,
}

impl SupportSet {
    /// Creates an empty support set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a support set from instances already in `(seq, last)` order.
    ///
    /// Debug builds assert the ordering invariant.
    pub fn from_sorted(instances: Vec<Instance>) -> Self {
        debug_assert!(
            instances
                .windows(2)
                .all(|w| (w[0].seq, w[0].last) <= (w[1].seq, w[1].last)),
            "support set instances must be sorted by (seq, last)"
        );
        Self { instances }
    }

    /// The instances of the support set, sorted by `(seq, last)`.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The size of the support set, i.e. the repetitive support of the
    /// pattern it was computed for.
    pub fn support(&self) -> u64 {
        self.instances.len() as u64
    }

    /// Returns `true` when the set holds no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Drops all instances but keeps the allocation, so the set can be
    /// refilled by the next growth step without touching the heap.
    pub(crate) fn clear(&mut self) {
        self.instances.clear();
    }

    /// Appends a whole fragment whose instances all follow this set in
    /// `(seq, last)` order — the assembly step of the two-level work queue,
    /// gluing per-shard fragments together in shard order (shard order *is*
    /// global sequence order, so the result equals the unsharded set).
    pub(crate) fn append_fragment(&mut self, fragment: &SupportSet) {
        debug_assert!(
            match (self.instances.last(), fragment.instances.first()) {
                (Some(prev), Some(next)) => (prev.seq, prev.last) <= (next.seq, next.last),
                _ => true,
            },
            "fragments must be appended in (seq, last) order"
        );
        self.instances.extend_from_slice(&fragment.instances);
    }

    /// Appends an instance; the caller must respect the `(seq, last)` order.
    pub(crate) fn push(&mut self, instance: Instance) {
        debug_assert!(
            self.instances
                .last()
                .is_none_or(|prev| (prev.seq, prev.last) <= (instance.seq, instance.last)),
            "instances must be appended in (seq, last) order"
        );
        self.instances.push(instance);
    }

    /// Appends the grown forms of `lanes[i]` at `positions[i]` — the
    /// vectorized growth kernels' bulk emission when a dominated lane
    /// prefix advances through consecutive row slots. Constructing the
    /// grown instances straight into the backing vector (one reserve, no
    /// staging array) is what lets block-mode emission beat the scalar
    /// kernels' per-instance pushes. Same `(seq, last)` ordering contract
    /// as [`Self::push`]: `positions` must be strictly increasing row
    /// positions at or past the current tail.
    pub(crate) fn push_grown(&mut self, seq: u32, lanes: &[Instance], positions: &[u32]) {
        debug_assert_eq!(lanes.len(), positions.len());
        debug_assert!(
            match (self.instances.last(), positions.first()) {
                (Some(prev), Some(&next)) => (prev.seq, prev.last) <= (seq, next),
                _ => true,
            },
            "grown instances must be appended in (seq, last) order"
        );
        debug_assert!(
            positions.windows(2).all(|w| match (w.first(), w.get(1)) {
                (Some(a), Some(b)) => a < b,
                _ => true,
            }),
            "grown positions must be strictly increasing"
        );
        self.instances.extend(
            lanes
                .iter()
                .zip(positions.iter())
                .map(|(inst, &pos)| Instance::new(seq, inst.first, pos)),
        );
    }

    /// Iterates over the maximal runs of instances that belong to the same
    /// sequence, yielding `(sequence index, instances)`.
    pub fn per_sequence(&self) -> impl Iterator<Item = (usize, &[Instance])> {
        PerSequence {
            instances: &self.instances,
            start: 0,
        }
    }

    /// The number of instances contributed by sequence `seq`.
    pub fn count_in_sequence(&self, seq: usize) -> usize {
        self.instances
            .iter()
            .filter(|inst| inst.seq as usize == seq)
            .count()
    }

    /// The last landmark positions of all instances, in `(seq, last)` order.
    ///
    /// These are the "landmark borders" compared by the landmark border
    /// checking strategy (Theorem 5).
    pub fn last_positions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.instances.iter().map(|inst| (inst.seq, inst.last))
    }

    /// Reconstructs the full landmarks of the leftmost support set of
    /// `pattern` for reporting purposes.
    ///
    /// The compressed instances only store `(seq, first, last)`; the interior
    /// positions are recomputed by replaying the greedy instance growth of
    /// Algorithm 2 on the inverted index. The result corresponds instance by
    /// instance to [`Self::instances`].
    pub fn reconstruct_landmarks(&self, index: &ShardedIndex, pattern: &Pattern) -> Vec<Landmark> {
        reconstruct_landmarks_impl(index, pattern)
            .into_iter()
            .take(self.instances.len())
            .collect()
    }
}

struct PerSequence<'a> {
    instances: &'a [Instance],
    start: usize,
}

impl<'a> Iterator for PerSequence<'a> {
    type Item = (usize, &'a [Instance]);

    fn next(&mut self) -> Option<Self::Item> {
        let rest = self.instances.get(self.start..)?;
        let first = rest.first()?;
        let len = rest.iter().take_while(|inst| inst.seq == first.seq).count();
        self.start += len;
        Some((first.seq as usize, rest.get(..len).unwrap_or(rest)))
    }
}

/// Replays the instance-growth greedy keeping full landmarks, through the
/// SoA [`InstanceBuffer`]. Shared by [`SupportSet::reconstruct_landmarks`],
/// the verbose API in [`crate::growth`], and (with real constraints) the
/// constrained miner in [`crate::constrained`] — one loop instead of the
/// seed's copy-paste twins.
pub(crate) fn reconstruct_landmarks_impl(index: &ShardedIndex, pattern: &Pattern) -> Vec<Landmark> {
    let mut buffer = InstanceBuffer::new();
    buffer.reconstruct(index, pattern, &GapConstraints::unbounded());
    buffer.to_landmarks()
}

/// Checks that a set of full landmarks of the same pattern is non-redundant
/// (pairwise non-overlapping, Definition 2.4). Exposed for tests and for the
/// reference implementation.
pub fn is_non_redundant(landmarks: &[Landmark]) -> bool {
    for (i, a) in landmarks.iter().enumerate() {
        for b in landmarks.iter().skip(i + 1) {
            if a.overlaps(b) {
                return false;
            }
        }
    }
    true
}

/// Checks that every landmark is a valid occurrence of `pattern` in `db`.
pub fn are_valid_instances(
    db: &SequenceDatabase,
    pattern: &[EventId],
    landmarks: &[Landmark],
) -> bool {
    landmarks.iter().all(|landmark| {
        if landmark.positions.len() != pattern.len() {
            return false;
        }
        let ascending = landmark
            .positions
            .iter()
            .zip(landmark.positions.iter().skip(1))
            .all(|(a, b)| a < b);
        if !ascending {
            return false;
        }
        let Some(sequence) = db.sequence(landmark.seq) else {
            return false;
        };
        landmark
            .positions
            .iter()
            .zip(pattern.iter())
            .all(|(&pos, &event)| sequence.at(pos as usize) == Some(event))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    #[test]
    fn per_sequence_groups_runs() {
        let set = SupportSet::from_sorted(vec![
            Instance::new(0, 1, 6),
            Instance::new(0, 4, 9),
            Instance::new(1, 1, 4),
        ]);
        let groups: Vec<(usize, usize)> = set.per_sequence().map(|(s, g)| (s, g.len())).collect();
        assert_eq!(groups, vec![(0, 2), (1, 1)]);
        assert_eq!(set.count_in_sequence(0), 2);
        assert_eq!(set.count_in_sequence(1), 1);
        assert_eq!(set.count_in_sequence(2), 0);
    }

    #[test]
    fn reconstruct_landmarks_matches_table_iv() {
        // Table IV: the leftmost support set of ACB is
        // {(1,<1,3,6>), (1,<4,5,9>), (2,<1,2,4>)}.
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let pattern = Pattern::new(db.pattern_from_str("ACB").unwrap());
        let landmarks = reconstruct_landmarks_impl(&index, &pattern);
        assert_eq!(
            landmarks,
            vec![
                Landmark::new(0, vec![1, 3, 6]),
                Landmark::new(0, vec![4, 5, 9]),
                Landmark::new(1, vec![1, 2, 4]),
            ]
        );
        assert!(is_non_redundant(&landmarks));
        assert!(are_valid_instances(&db, pattern.events(), &landmarks));
    }

    #[test]
    fn reconstruct_landmarks_of_aca_allows_reuse_at_different_indices() {
        // Example 3.1 step 3': I_ACA = {(1,<1,3,4>), (2,<1,2,5>), (2,<5,6,7>)}.
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let pattern = Pattern::new(db.pattern_from_str("ACA").unwrap());
        let landmarks = reconstruct_landmarks_impl(&index, &pattern);
        assert_eq!(
            landmarks,
            vec![
                Landmark::new(0, vec![1, 3, 4]),
                Landmark::new(1, vec![1, 2, 5]),
                Landmark::new(1, vec![5, 6, 7]),
            ]
        );
        assert!(is_non_redundant(&landmarks));
    }

    #[test]
    fn non_redundancy_detects_overlaps() {
        let good = vec![Landmark::new(0, vec![1, 2]), Landmark::new(0, vec![4, 5])];
        let bad = vec![Landmark::new(0, vec![1, 2]), Landmark::new(0, vec![1, 5])];
        assert!(is_non_redundant(&good));
        assert!(!is_non_redundant(&bad));
    }

    #[test]
    fn validity_checks_positions_and_events() {
        let db = running_example();
        let acb = db.pattern_from_str("ACB").unwrap();
        let valid = vec![Landmark::new(0, vec![1, 3, 6])];
        let wrong_event = vec![Landmark::new(0, vec![1, 2, 6])];
        let wrong_len = vec![Landmark::new(0, vec![1, 3])];
        let out_of_range = vec![Landmark::new(7, vec![1, 3, 6])];
        assert!(are_valid_instances(&db, &acb, &valid));
        assert!(!are_valid_instances(&db, &acb, &wrong_event));
        assert!(!are_valid_instances(&db, &acb, &wrong_len));
        assert!(!are_valid_instances(&db, &acb, &out_of_range));
    }

    #[test]
    fn empty_pattern_has_no_landmarks() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        assert!(reconstruct_landmarks_impl(&index, &Pattern::empty()).is_empty());
    }

    #[test]
    fn last_positions_follow_storage_order() {
        let set = SupportSet::from_sorted(vec![
            Instance::new(0, 1, 6),
            Instance::new(0, 4, 9),
            Instance::new(1, 1, 4),
        ]);
        let lasts: Vec<(u32, u32)> = set.last_positions().collect();
        assert_eq!(lasts, vec![(0, 6), (0, 9), (1, 4)]);
    }
}
