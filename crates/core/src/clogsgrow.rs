//! CloGSgrow (Algorithm 4): depth-first mining of **closed** frequent
//! repetitive gapped subsequences.
//!
//! The DFS is the same as GSgrow's, with two additions per visited pattern
//! `P` (Algorithm 4, lines 6–7):
//!
//! * **landmark border checking** (`LBCheck`, Theorem 5) — if it says
//!   *prune*, neither `P` nor any pattern with prefix `P` can be closed, so
//!   the whole subtree is skipped;
//! * **closure checking** (`CCheck`, Theorem 4) — `P` is emitted only when
//!   no extension of `P` has equal support.

use std::ops::ControlFlow;

use seqdb::{EventId, SequenceDatabase};

use crate::closure::{CheckScratch, ClosureChecker, ClosureStatus};
use crate::config::MiningConfig;
use crate::engine::{Miner, Mode};
use crate::growth::{SetPool, SupportComputer};
use crate::pattern::Pattern;
use crate::prepared::PreparedRef;
use crate::result::{MiningOutcome, MiningStats};
use crate::support::SupportSet;

/// Mines the closed frequent repetitive gapped subsequences of `db` with
/// respect to `config.min_sup` (Algorithm 4, CloGSgrow).
#[deprecated(
    since = "0.2.0",
    note = "use `Miner::new(db).from_config(config).mode(Mode::Closed).run()`; for \
            repeated queries prepare once (`PreparedDb::new`) or open a \
            snapshot (`Miner::from_snapshot`) instead of re-indexing per call"
)]
pub fn mine_closed(db: &SequenceDatabase, config: &MiningConfig) -> MiningOutcome {
    Miner::new(db).from_config(config).mode(Mode::Closed).run()
}

/// Streaming CloGSgrow core: runs the DFS of Algorithm 4 and hands every
/// *closed* frequent pattern to `emit`. The search stops when `emit`
/// returns [`ControlFlow::Break`]. Returns the search statistics (elapsed
/// time is the caller's responsibility).
pub(crate) fn mine_closed_streaming(
    prepared: PreparedRef<'_>,
    config: &MiningConfig,
    emit: &mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
) -> MiningStats {
    let sc = prepared.support_computer();
    let min_sup = config.effective_min_sup();
    let events = prepared.parts.frequent_events(min_sup);
    let checker = ClosureChecker::new(&sc, &events);
    let mut stats = MiningStats::default();
    for &seed in &events {
        let initial = sc.initial_support_set(seed);
        let (seed_stats, flow) =
            mine_closed_seed(&sc, &checker, config, min_sup, &events, seed, initial, emit);
        stats.merge(&seed_stats);
        if flow.is_break() {
            break;
        }
    }
    stats
}

/// Mines the closed patterns of the DFS subtree rooted at `seed` (one
/// iteration of Algorithm 4's outer loop), starting from the
/// caller-supplied `initial` leftmost support set of the seed. Like
/// GSgrow's, the per-seed subtrees are fully independent — the closure and
/// landmark-border checks only consult the (shared, immutable) database —
/// so per-seed results can be concatenated in seed order to reproduce the
/// sequential stream.
#[allow(clippy::too_many_arguments)] // internal dispatch, not an API
pub(crate) fn mine_closed_seed(
    sc: &SupportComputer<'_>,
    checker: &ClosureChecker<'_, '_>,
    config: &MiningConfig,
    min_sup: u64,
    events: &[EventId],
    seed: EventId,
    initial: SupportSet,
    emit: &mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
) -> (MiningStats, ControlFlow<()>) {
    let mut miner = CloGsGrow {
        sc,
        config,
        min_sup,
        frequent_events: events,
        checker,
        stats: MiningStats::default(),
        stopped: false,
        pool: SetPool::new(),
        scratch: CheckScratch::new(),
        emit,
    };
    let support = initial;
    if support.support() >= min_sup {
        let mut stack = vec![support];
        miner.mine(&Pattern::single(seed), &mut stack);
        debug_assert_eq!(stack.len(), 1);
    }
    let flow = if miner.stopped {
        ControlFlow::Break(())
    } else {
        ControlFlow::Continue(())
    };
    (miner.stats, flow)
}

struct CloGsGrow<'a, 'b, 'e> {
    sc: &'a SupportComputer<'b>,
    config: &'a MiningConfig,
    min_sup: u64,
    frequent_events: &'a [EventId],
    checker: &'a ClosureChecker<'a, 'b>,
    stats: MiningStats,
    stopped: bool,
    /// Recycles support sets across growth attempts and finished subtrees.
    pool: SetPool,
    /// Ping/pong buffers for the closure check's extension growth.
    scratch: CheckScratch,
    emit: &'e mut dyn FnMut(&Pattern, &SupportSet) -> ControlFlow<()>,
}

impl CloGsGrow<'_, '_, '_> {
    /// Visits pattern `P` whose prefix support sets (including `P`'s own)
    /// are on `stack`.
    fn mine(&mut self, pattern: &Pattern, stack: &mut Vec<SupportSet>) {
        self.stats.visited += 1;
        let support = stack.last().expect("stack holds P's support set").support();

        // Compute the append children unconditionally: even at the
        // max_pattern_length cap (where they will not be recursed into) the
        // closed/non-closed verdict needs `append_equal` — Theorem 4 covers
        // append extensions.
        let mut children: Vec<(EventId, SupportSet)> = Vec::new();
        let mut append_equal = false;
        for &event in self.frequent_events {
            self.stats.instance_growths += 1;
            let mut grown = self.pool.take();
            self.sc.instance_growth_into(
                stack.last().expect("support set"),
                event,
                usize::MAX,
                &mut grown,
            );
            if grown.support() == support {
                append_equal = true;
            }
            if grown.support() >= self.min_sup {
                children.push((event, grown));
            } else {
                self.pool.give(grown);
            }
        }

        match self
            .checker
            .check(pattern, stack, append_equal, &mut self.scratch)
        {
            ClosureStatus::Prune if self.config.use_landmark_pruning => {
                self.stats.landmark_border_prunes += 1;
                self.reclaim(children);
                return;
            }
            // Ablation mode (Theorem 5 disabled): a prunable pattern is
            // still non-closed, so it is suppressed from the output but its
            // subtree is explored like any other non-closed pattern.
            ClosureStatus::Prune | ClosureStatus::NonClosed => {
                self.stats.non_closed_filtered += 1;
            }
            ClosureStatus::Closed => {
                let set = stack.last().expect("support set");
                if (self.emit)(pattern, set).is_break() {
                    self.stopped = true;
                }
            }
        }

        if self.stopped || !self.config.allows_growth(pattern.len()) {
            self.reclaim(children);
            return;
        }
        let mut children = children.into_iter();
        for (event, grown) in children.by_ref() {
            if self.stopped {
                self.pool.give(grown);
                break;
            }
            stack.push(grown);
            self.mine(&pattern.grow(event), stack);
            let done = stack.pop().expect("pushed above");
            self.pool.give(done);
        }
        self.reclaim(children.collect());
    }

    /// Returns unused child support sets to the pool.
    fn reclaim(&mut self, children: Vec<(EventId, SupportSet)>) {
        for (_, set) in children {
            self.pool.give(set);
        }
    }
}

#[cfg(test)]
mod tests {

    use super::*;
    use crate::reference::{closed_subset, pattern_set};

    fn all_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::All)
            .run()
    }

    fn closed_patterns(
        db: &seqdb::SequenceDatabase,
        config: &crate::MiningConfig,
    ) -> crate::MiningOutcome {
        crate::Miner::new(db)
            .from_config(config)
            .mode(crate::Mode::Closed)
            .run()
    }

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn simple_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCABCA", "AABBCCC"])
    }

    #[test]
    fn closed_set_equals_reference_filter_of_all_patterns_table_iii() {
        let db = running_example();
        for min_sup in [2, 3, 4, 5] {
            let all = all_patterns(&db, &MiningConfig::new(min_sup));
            let expected = closed_subset(&all.patterns);
            let closed = closed_patterns(&db, &MiningConfig::new(min_sup));
            assert_eq!(
                pattern_set(&closed.patterns),
                pattern_set(&expected),
                "min_sup = {min_sup}"
            );
            for mp in &expected {
                assert_eq!(closed.support_of(&mp.pattern), Some(mp.support));
            }
        }
    }

    #[test]
    fn closed_set_equals_reference_filter_on_table_ii() {
        let db = simple_example();
        for min_sup in [2, 3, 4] {
            let all = all_patterns(&db, &MiningConfig::new(min_sup));
            let expected = closed_subset(&all.patterns);
            let closed = closed_patterns(&db, &MiningConfig::new(min_sup));
            assert_eq!(
                pattern_set(&closed.patterns),
                pattern_set(&expected),
                "min_sup = {min_sup}"
            );
        }
    }

    #[test]
    fn ab_is_not_reported_but_abd_is() {
        // Example 3.5/3.6 with min_sup = 3.
        let db = running_example();
        let closed = closed_patterns(&db, &MiningConfig::new(3));
        let ab = Pattern::new(db.pattern_from_str("AB").unwrap());
        let abd = Pattern::new(db.pattern_from_str("ABD").unwrap());
        let aa = Pattern::new(db.pattern_from_str("AA").unwrap());
        let aad = Pattern::new(db.pattern_from_str("AAD").unwrap());
        assert!(
            !closed.contains(&ab),
            "AB has the equal-support extension ACB"
        );
        assert!(closed.contains(&abd), "ABD is closed");
        assert!(
            !closed.contains(&aa),
            "AA is pruned by landmark border checking"
        );
        assert!(
            !closed.contains(&aad),
            "AAD is not closed (ACAD has equal support)"
        );
    }

    #[test]
    fn landmark_border_pruning_fires_on_the_running_example() {
        let db = running_example();
        let closed = closed_patterns(&db, &MiningConfig::new(3));
        assert!(closed.stats.landmark_border_prunes > 0);
        // Pruning must visit no more nodes than plain GSgrow.
        let all = all_patterns(&db, &MiningConfig::new(3));
        assert!(closed.stats.visited <= all.stats.visited);
    }

    #[test]
    fn closed_output_is_never_larger_than_all_output() {
        for rows in [
            vec!["ABCABCA", "AABBCCC"],
            vec!["ABCACBDDB", "ACDBACADD"],
            vec!["AABCDABB", "ABCD"],
            vec!["ABABABAB", "BABA", "AABB"],
        ] {
            let db = SequenceDatabase::from_str_rows(&rows);
            for min_sup in [1, 2, 3] {
                let all = all_patterns(&db, &MiningConfig::new(min_sup));
                let closed = closed_patterns(&db, &MiningConfig::new(min_sup));
                assert!(closed.len() <= all.len(), "rows {rows:?} min_sup {min_sup}");
            }
        }
    }

    #[test]
    fn every_frequent_pattern_has_a_closed_superpattern_with_equal_support() {
        // The compactness guarantee that makes the closed set a lossless
        // representation (Lemma 2).
        let db = running_example();
        let min_sup = 2;
        let all = all_patterns(&db, &MiningConfig::new(min_sup));
        let closed = closed_patterns(&db, &MiningConfig::new(min_sup));
        for mp in &all.patterns {
            let covered = closed.patterns.iter().any(|cp| {
                cp.support == mp.support
                    && (cp.pattern == mp.pattern || mp.pattern.is_subpattern_of(&cp.pattern))
            });
            assert!(covered, "{:?} (sup {}) not covered", mp.pattern, mp.support);
        }
    }

    #[test]
    fn ablation_without_landmark_pruning_yields_identical_patterns() {
        // Theorem 5 only prunes search; the mined closed set is unchanged,
        // but more DFS nodes are visited without it.
        for rows in [
            vec!["ABCACBDDB", "ACDBACADD"],
            vec!["ABCABCA", "AABBCCC"],
            vec!["ABABABAB", "BABA", "AABB"],
        ] {
            let db = SequenceDatabase::from_str_rows(&rows);
            for min_sup in [2, 3] {
                let pruned = closed_patterns(&db, &MiningConfig::new(min_sup));
                let unpruned =
                    closed_patterns(&db, &MiningConfig::new(min_sup).without_landmark_pruning());
                assert_eq!(
                    crate::reference::pattern_set(&pruned.patterns),
                    crate::reference::pattern_set(&unpruned.patterns),
                    "rows {rows:?} min_sup {min_sup}"
                );
                assert!(unpruned.stats.visited >= pruned.stats.visited);
                assert_eq!(unpruned.stats.landmark_border_prunes, 0);
            }
        }
    }

    #[test]
    fn max_patterns_truncates_closed_mining_too() {
        let db = running_example();
        let closed = closed_patterns(&db, &MiningConfig::new(1).with_max_patterns(3));
        assert!(closed.truncated);
        assert_eq!(closed.len(), 3);
    }

    #[test]
    fn empty_database_yields_empty_closed_result() {
        let db = SequenceDatabase::new();
        let closed = closed_patterns(&db, &MiningConfig::new(1));
        assert!(closed.is_empty());
    }

    #[test]
    fn single_sequence_of_repeats_reports_the_long_closed_pattern() {
        // In AAAA, instances of AA may share positions at *different*
        // pattern indices (Definition 2.3), so <1,2>, <2,3>, <3,4> are
        // pairwise non-overlapping: sup(A) = 4, sup(AA) = 3, sup(AAA) = 2,
        // sup(AAAA) = 1. With min_sup = 2 all of A, AA, AAA are closed
        // (each super-pattern has strictly smaller support).
        let db = SequenceDatabase::from_str_rows(&["AAAA"]);
        let closed = closed_patterns(&db, &MiningConfig::new(2));
        let a = Pattern::new(db.pattern_from_str("A").unwrap());
        let aa = Pattern::new(db.pattern_from_str("AA").unwrap());
        let aaa = Pattern::new(db.pattern_from_str("AAA").unwrap());
        assert_eq!(closed.support_of(&a), Some(4));
        assert_eq!(closed.support_of(&aa), Some(3));
        assert_eq!(closed.support_of(&aaa), Some(2));
        assert_eq!(closed.len(), 3);
    }
}
