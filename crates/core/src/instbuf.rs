//! The reusable SoA instance buffer: flat landmark storage for instance
//! growth with full positions.
//!
//! [`InstanceBuffer`] holds the landmarks of one generation of instance
//! growth in structure-of-arrays form: a `seqs` column (one `u32` per
//! instance) and a flat `positions` arena with a fixed *stride* — every
//! landmark of a pattern of length `m` occupies exactly `m` consecutive
//! slots, so landmark `i` is `positions[i * m .. (i + 1) * m]` and nothing
//! is heap-allocated per instance (compare the seed's `Vec<Vec<u32>>` per
//! growth step).
//!
//! The buffer is **double-buffered**: [`InstanceBuffer::grow`] writes the
//! next generation into a spare pair of columns (whose capacity is retained
//! across steps) and swaps. Steady-state growth — re-running reconstruction
//! or growing patterns of similar size — therefore allocates nothing; the
//! zero-allocation property is pinned by a counting-allocator test.
//!
//! One growth routine serves both the unconstrained and the constrained
//! semantics (with [`GapConstraints::unbounded`] the bounds degenerate to
//! exactly Algorithm 2), which is what lets
//! [`SupportSet::reconstruct_landmarks`](crate::SupportSet::reconstruct_landmarks)
//! and the constrained miner share a single landmark-reconstruction loop
//! instead of the seed's copy-paste twins.
//!
//! Landmark reconstruction stays on the scalar [`seqdb::PostingCursor`]
//! probe: it runs once per reported pattern (not per growth step), its
//! per-lane bounds depend on full landmark history, and its cost is noise
//! next to the mining DFS — so it is deliberately *not* routed through the
//! batched [`crate::kernel`] tiers that vectorize the hot growth pass.

use seqdb::{EventId, ShardedIndex};

use crate::constraints::GapConstraints;
use crate::instance::{Instance, Landmark};
use crate::pattern::Pattern;

/// A reusable, double-buffered SoA buffer of full landmarks.
///
/// All landmarks in a buffer belong to the same pattern and therefore share
/// one stride (the pattern length). Instances are kept in `(seq, last)`
/// right-shift order, exactly like a
/// [`SupportSet`](crate::support::SupportSet).
#[derive(Debug, Clone, Default)]
pub struct InstanceBuffer {
    /// Landmark length of the current generation (0 when empty).
    stride: usize,
    /// Sequence index of instance `i`.
    seqs: Vec<u32>,
    /// Flat landmark arena: instance `i` owns
    /// `positions[i * stride .. (i + 1) * stride]`.
    positions: Vec<u32>,
    /// Spare columns for the next generation (double buffering).
    spare_seqs: Vec<u32>,
    spare_positions: Vec<u32>,
}

impl InstanceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instances in the current generation.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Returns `true` when the buffer holds no instances.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// The landmark length of the current generation (the pattern length).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Drops all instances but keeps every allocation.
    pub fn clear(&mut self) {
        self.stride = 0;
        self.seqs.clear();
        self.positions.clear();
    }

    /// The sequence index of instance `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn seq(&self, i: usize) -> u32 {
        // Documented panic on an out-of-range instance id at the API
        // boundary; the growth loops never call this.
        // audit:allow(indexing): see above
        self.seqs[i]
    }

    /// The landmark positions of instance `i` (a slice into the arena).
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn landmark(&self, i: usize) -> &[u32] {
        // Documented panic on an out-of-range instance id at the API
        // boundary; the growth loops never call this.
        // audit:allow(indexing): see above
        &self.positions[i * self.stride..(i + 1) * self.stride]
    }

    /// Iterates over `(sequence, landmark positions)` pairs in right-shift
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32])> + '_ {
        self.seqs
            .iter()
            .copied()
            .zip(self.positions.chunks_exact(self.stride.max(1)))
    }

    /// Seeds the buffer with every occurrence of `event`: the leftmost
    /// support set of the single-event pattern, with stride 1 (line 1 of
    /// Algorithm 1). Reuses the buffer's capacity.
    pub fn seed(&mut self, index: &ShardedIndex, event: EventId) {
        self.clear();
        self.stride = 1;
        for (seq, positions) in index.sequences_with_event(event) {
            for &pos in positions {
                self.seqs.push(seq as u32);
                self.positions.push(pos);
            }
        }
    }

    /// One step of constrained leftmost instance growth carrying **full**
    /// landmarks: extends every instance of a pattern `P` into an instance
    /// of `P ◦ event`, greedily and in right-shift order, admitting only
    /// extensions within the gap/window bounds. With
    /// [`GapConstraints::unbounded`] this is exactly Algorithm 2.
    ///
    /// The next generation is written into the spare columns (capacity
    /// retained across calls) and swapped in — zero allocations once the
    /// buffers are warm.
    pub fn grow(&mut self, index: &ShardedIndex, event: EventId, constraints: &GapConstraints) {
        let stride = self.stride;
        debug_assert!(stride > 0, "grow() needs a seeded buffer");
        let Self {
            seqs,
            positions,
            spare_seqs,
            spare_positions,
            ..
        } = self;
        spare_seqs.clear();
        spare_positions.clear();

        let len = seqs.len();
        let mut i = 0;
        while i < len {
            let Some(rest) = seqs.get(i..) else { break };
            let Some(&seq) = rest.first() else { break };
            let end = i + rest.iter().take_while(|&&s| s == seq).count();
            // Within one sequence: greedy right-shift-order extension with
            // the strictly-increasing `last_position` watermark of
            // Algorithm 2, line 5. The `(seq, event)` posting row is
            // resolved once per run and advanced by a monotone cursor
            // instead of re-searching the whole row per instance.
            let Some(mut cursor) = index.cursor(seq as usize, event) else {
                i = end;
                continue;
            };
            let mut last_position = 0u32;
            for j in i..end {
                let Some(landmark) = positions.get(j * stride..(j + 1) * stride) else {
                    break;
                };
                // A landmark slice is never empty: stride > 0 is asserted on
                // entry, so first/last always exist.
                let (Some(&first), Some(&prev)) = (landmark.first(), landmark.last()) else {
                    break;
                };
                let lowest = last_position.max(constraints.lowest_exclusive(prev));
                let highest = constraints.highest_inclusive(first, prev);
                match cursor.next_after(lowest) {
                    Some(pos) if pos <= highest => {
                        last_position = pos;
                        spare_seqs.push(seq);
                        spare_positions.extend_from_slice(landmark);
                        spare_positions.push(pos);
                    }
                    // The next occurrence exists but violates a constraint:
                    // this instance cannot be extended, but instances ending
                    // further right might still be, so keep scanning.
                    Some(_) => continue,
                    // No occurrence of `event` remains in this sequence at
                    // all: later instances end even further right, so stop.
                    None => break,
                }
            }
            i = end;
        }

        std::mem::swap(seqs, spare_seqs);
        std::mem::swap(positions, spare_positions);
        self.stride = stride + 1;
    }

    /// Rebuilds the (constrained) leftmost support set of `pattern` with
    /// full landmarks: seed on the first event, then chain [`Self::grow`].
    ///
    /// This is the **shared** landmark-reconstruction loop behind both
    /// [`SupportSet::reconstruct_landmarks`](crate::support::SupportSet::reconstruct_landmarks)
    /// (unbounded constraints) and
    /// [`ConstrainedSupportComputer::support_landmarks`](crate::constrained::ConstrainedSupportComputer::support_landmarks).
    pub fn reconstruct(
        &mut self,
        index: &ShardedIndex,
        pattern: &Pattern,
        constraints: &GapConstraints,
    ) {
        let events = pattern.events();
        let Some((&first, rest)) = events.split_first() else {
            self.clear();
            return;
        };
        self.seed(index, first);
        for &event in rest {
            if self.is_empty() {
                return;
            }
            self.grow(index, event, constraints);
        }
    }

    /// Materializes the buffer as owned [`Landmark`]s (reporting API).
    pub fn to_landmarks(&self) -> Vec<Landmark> {
        self.iter()
            .map(|(seq, positions)| Landmark::new(seq as usize, positions.to_vec()))
            .collect()
    }

    /// The compressed `(seq, first, last)` triple of instance `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn compressed(&self, i: usize) -> Instance {
        let landmark = self.landmark(i);
        Instance::new(
            self.seq(i),
            landmark.first().copied().unwrap_or(0),
            landmark.last().copied().unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb::SequenceDatabase;

    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn pattern(db: &SequenceDatabase, s: &str) -> Pattern {
        Pattern::new(db.pattern_from_str(s).unwrap())
    }

    #[test]
    fn reconstruct_matches_table_iv() {
        // Table IV: the leftmost support set of ACB is
        // {(1,<1,3,6>), (1,<4,5,9>), (2,<1,2,4>)}.
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let mut buffer = InstanceBuffer::new();
        buffer.reconstruct(&index, &pattern(&db, "ACB"), &GapConstraints::unbounded());
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.stride(), 3);
        assert_eq!(
            buffer.to_landmarks(),
            vec![
                Landmark::new(0, vec![1, 3, 6]),
                Landmark::new(0, vec![4, 5, 9]),
                Landmark::new(1, vec![1, 2, 4]),
            ]
        );
        assert_eq!(buffer.compressed(0), Instance::new(0, 1, 6));
        assert_eq!(buffer.compressed(2), Instance::new(1, 1, 4));
    }

    #[test]
    fn constrained_reconstruct_respects_max_gap() {
        // Contiguous AC: (1,<4,5>), (2,<1,2>), (2,<5,6>).
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let mut buffer = InstanceBuffer::new();
        buffer.reconstruct(&index, &pattern(&db, "AC"), &GapConstraints::max_gap(0));
        assert_eq!(
            buffer.to_landmarks(),
            vec![
                Landmark::new(0, vec![4, 5]),
                Landmark::new(1, vec![1, 2]),
                Landmark::new(1, vec![5, 6]),
            ]
        );
    }

    #[test]
    fn empty_pattern_and_dead_pattern_clear_the_buffer() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let mut buffer = InstanceBuffer::new();
        buffer.reconstruct(&index, &Pattern::empty(), &GapConstraints::unbounded());
        assert!(buffer.is_empty());
        // A pattern whose growth dies: CCCC has no instances.
        buffer.reconstruct(&index, &pattern(&db, "CCCC"), &GapConstraints::unbounded());
        assert!(buffer.is_empty());
    }

    #[test]
    fn buffer_is_reusable_across_patterns() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let mut buffer = InstanceBuffer::new();
        buffer.reconstruct(&index, &pattern(&db, "ACB"), &GapConstraints::unbounded());
        let first = buffer.to_landmarks();
        buffer.reconstruct(&index, &pattern(&db, "AAD"), &GapConstraints::unbounded());
        assert_eq!(
            buffer.to_landmarks(),
            vec![
                Landmark::new(0, vec![1, 4, 7]),
                Landmark::new(1, vec![1, 5, 8]),
                Landmark::new(1, vec![5, 7, 9]),
            ]
        );
        buffer.reconstruct(&index, &pattern(&db, "ACB"), &GapConstraints::unbounded());
        assert_eq!(buffer.to_landmarks(), first);
    }

    #[test]
    fn seed_yields_every_occurrence_in_order() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let a = db.catalog().id("A").unwrap();
        let mut buffer = InstanceBuffer::new();
        buffer.seed(&index, a);
        assert_eq!(buffer.len(), 5);
        assert_eq!(buffer.stride(), 1);
        let triples: Vec<Instance> = (0..buffer.len()).map(|i| buffer.compressed(i)).collect();
        assert_eq!(
            triples,
            vec![
                Instance::new(0, 1, 1),
                Instance::new(0, 4, 4),
                Instance::new(1, 1, 1),
                Instance::new(1, 5, 5),
                Instance::new(1, 7, 7),
            ]
        );
    }
}
