//! Result types shared by the miners.

use std::time::Duration;

use seqdb::EventCatalog;

use crate::pattern::Pattern;
use crate::support::SupportSet;

/// A single mined pattern together with its repetitive support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Its repetitive support `sup(P)`.
    pub support: u64,
    /// The leftmost support set (compressed instances), when the run was
    /// configured with `keep_support_sets`.
    pub support_set: Option<SupportSet>,
}

impl MinedPattern {
    /// Creates a mined pattern without a stored support set.
    pub fn new(pattern: Pattern, support: u64) -> Self {
        Self {
            pattern,
            support,
            support_set: None,
        }
    }

    /// Renders the pattern and support as `PATTERN (sup=K)` using `catalog`.
    pub fn render(&self, catalog: &EventCatalog) -> String {
        format!("{} (sup={})", self.pattern.render(catalog), self.support)
    }
}

/// Counters describing the work performed by a mining run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MiningStats {
    /// Number of pattern nodes visited in the DFS (frequent prefixes).
    pub visited: u64,
    /// Number of instance-growth (`INSgrow`) invocations.
    pub instance_growths: u64,
    /// Number of patterns ruled out by closure checking (CloGSgrow only).
    pub non_closed_filtered: u64,
    /// Number of subtrees pruned by landmark border checking (CloGSgrow
    /// only).
    pub landmark_border_prunes: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_seconds: f64,
}

impl MiningStats {
    /// Records the elapsed wall-clock time.
    pub fn set_elapsed(&mut self, elapsed: Duration) {
        self.elapsed_seconds = elapsed.as_secs_f64();
    }

    /// Accumulates another run's work counters into this one (elapsed time
    /// is excluded: wall-clock time is the enclosing run's responsibility).
    /// Used to combine per-seed statistics, sequentially or across parallel
    /// workers.
    pub fn merge(&mut self, other: &MiningStats) {
        self.visited += other.visited;
        self.instance_growths += other.instance_growths;
        self.non_closed_filtered += other.non_closed_filtered;
        self.landmark_border_prunes += other.landmark_border_prunes;
    }
}

/// The outcome of a mining run: the patterns found plus run statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MiningOutcome {
    /// The mined patterns, in DFS emission order.
    pub patterns: Vec<MinedPattern>,
    /// Run statistics.
    pub stats: MiningStats,
    /// `true` when the run stopped early because `max_patterns` was reached.
    pub truncated: bool,
}

impl MiningOutcome {
    /// Number of mined patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` when no pattern was mined.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Looks up the support of a specific pattern in the result, if present.
    pub fn support_of(&self, pattern: &Pattern) -> Option<u64> {
        self.patterns
            .iter()
            .find(|mp| &mp.pattern == pattern)
            .map(|mp| mp.support)
    }

    /// Returns `true` if the result contains `pattern`.
    pub fn contains(&self, pattern: &Pattern) -> bool {
        self.support_of(pattern).is_some()
    }

    /// The length of the longest mined pattern (0 when empty).
    pub fn max_pattern_length(&self) -> usize {
        self.patterns
            .iter()
            .map(|mp| mp.pattern.len())
            .max()
            .unwrap_or(0)
    }

    /// Sorts the patterns by descending support, then by descending length,
    /// then lexicographically — a stable, human-friendly report order.
    pub fn sort_for_report(&mut self) {
        sort_patterns_for_report(&mut self.patterns);
    }

    /// Renders the top `limit` patterns with `catalog`, one per line.
    pub fn render_top(&self, catalog: &EventCatalog, limit: usize) -> String {
        self.patterns
            .iter()
            .take(limit)
            .map(|mp| mp.render(catalog))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The canonical report order shared by every surface (materialized
/// outcomes, ranked/top-k results, CLI output): descending support, then
/// descending length, then lexicographic on the pattern events. There is
/// exactly one definition so the orders cannot drift apart.
pub fn sort_patterns_for_report(patterns: &mut [MinedPattern]) {
    patterns.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| b.pattern.len().cmp(&a.pattern.len()))
            .then_with(|| a.pattern.cmp(&b.pattern))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb::EventId;

    fn pattern(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| EventId(i)).collect())
    }

    #[test]
    fn support_lookup_and_contains() {
        let outcome = MiningOutcome {
            patterns: vec![
                MinedPattern::new(pattern(&[0, 1]), 4),
                MinedPattern::new(pattern(&[2, 3]), 2),
            ],
            ..Default::default()
        };
        assert_eq!(outcome.len(), 2);
        assert_eq!(outcome.support_of(&pattern(&[0, 1])), Some(4));
        assert_eq!(outcome.support_of(&pattern(&[9])), None);
        assert!(outcome.contains(&pattern(&[2, 3])));
        assert_eq!(outcome.max_pattern_length(), 2);
    }

    #[test]
    fn sort_for_report_orders_by_support_then_length() {
        let mut outcome = MiningOutcome {
            patterns: vec![
                MinedPattern::new(pattern(&[1]), 2),
                MinedPattern::new(pattern(&[0, 1, 2]), 5),
                MinedPattern::new(pattern(&[0, 1]), 5),
            ],
            ..Default::default()
        };
        outcome.sort_for_report();
        assert_eq!(outcome.patterns[0].pattern, pattern(&[0, 1, 2]));
        assert_eq!(outcome.patterns[1].pattern, pattern(&[0, 1]));
        assert_eq!(outcome.patterns[2].pattern, pattern(&[1]));
    }

    #[test]
    fn render_uses_catalog_labels() {
        let catalog = EventCatalog::from_labels(["A", "B"]);
        let mp = MinedPattern::new(pattern(&[0, 1]), 4);
        assert_eq!(mp.render(&catalog), "AB (sup=4)");
        let outcome = MiningOutcome {
            patterns: vec![mp],
            ..Default::default()
        };
        assert_eq!(outcome.render_top(&catalog, 10), "AB (sup=4)");
    }

    #[test]
    fn stats_record_elapsed_time() {
        let mut stats = MiningStats::default();
        stats.set_elapsed(Duration::from_millis(1500));
        assert!((stats.elapsed_seconds - 1.5).abs() < 1e-9);
    }
}
