//! Batched, branch-free growth kernels: whole-pass instance advancement
//! over resolved posting rows, vectorized when the CPU allows it.
//!
//! The per-call probe `next(S, e, lowest)` (Algorithm 2, line 9) pays the
//! full price on every invocation: derive the `(sequence, event)` CSR slot,
//! binary-search the entire posting row, return one position. But one
//! extension pass processes all instances of a sequence **consecutively and
//! in right-shift order**, and along that run the probe's `lowest` bound is
//! non-decreasing — the `last_position` watermark only grows, instance
//! `last` positions are sorted, and the constrained lower bound
//! `lowest_exclusive` is monotone in them. So the row can be resolved
//! *once* and advanced monotonically through the whole run.
//!
//! Two implementations share that structure, dispatched per pass on
//! [`seqdb::simd::active_backend`]:
//!
//! * The **scalar kernels** (`*_scalar`) advance a
//!   [`PostingCursor`](seqdb::PostingCursor) one probe at a time: each
//!   probe gallops forward from the previous landmark and falls back to a
//!   branch-free binary search over the galloped bracket. A run of `k`
//!   probes over a row of length `L` costs amortized `O(L + k·log stride)`.
//!   These remain first-class — `RGS_FORCE_SCALAR` (or
//!   [`seqdb::simd::force_backend`]) pins every pass to them.
//!
//! * The **batched kernels** (`*_batched`) gather consecutive instances of
//!   the run into one lane group (the slice is already `(seq, last)`-sorted,
//!   so grouping is a flat pass) and try the **whole-batch fast path**:
//!   one vector compare of the gathered bounds against the row window at
//!   the consumed watermark — [`gt_mask64`] over
//!   [`BLOCK_LANES`] lanes while at least a
//!   block's worth of run and row remain (the unconstrained kernel's
//!   steady state on long runs), [`gt_mask8`] over
//!   [`MAX_LANES`] lanes on run tails and in the
//!   constrained kernel. By the identity `pp(t) <= j  ⟺  t < row[j]` on a
//!   strictly ascending row, every lane in the mask's *leading all-pass
//!   prefix* is proven to take the next consecutive row slot (induction
//!   below), so those `m` instances advance with zero per-lane searches:
//!   one vector compare plus a bulk `SupportSet::push_grown` emission
//!   (grown instances constructed straight into the backing vector) and an
//!   `m`-slot [`PostingCursor::advance`](seqdb::PostingCursor::advance)
//!   replace `m` probe calls. The lane that breaks the prefix (a watermark
//!   jump, a gap-window miss, or the row tail) is answered by the **same
//!   serial engine the scalar kernels run** — a
//!   [`PostingCursor`](seqdb::PostingCursor) probe, gallop + branch-free
//!   binary search — so the fallback is bit-identical by *sharing code*,
//!   not by reimplementation. A batch with no passing prefix runs entirely
//!   on the serial engine: dominance-free stretches pay one wasted vector
//!   compare per attempted width, not per instance — and runs shorter than
//!   [`MAX_LANES`] (the pattern tree's long tail)
//!   skip the window machinery entirely.
//!
//!   - unconstrained induction (consuming; `at` = consumed count, so
//!     `row[at - 1]` is the last emitted position): if
//!     `last_i < row[at + i]` for every lane `i < m`, then probe `i`'s
//!     bound `max(emitted_{i-1}, last_i)` is below `row[at + i]` (the
//!     previous lane emitted `row[at + i - 1]`), and everything before
//!     slot `at + i` is already consumed — so probe `i` returns exactly
//!     `row[at + i]` and consumes it.
//!   - constrained induction (non-consuming): the gathered bounds fold
//!     the accepted-position watermark in —
//!     `b_i = max(lowest_exclusive(last_i), last_position)` — and a
//!     second compare checks `row[at + i] <= highest_inclusive_i`. On the
//!     aligned prefix where both masks pass, candidate `i` is exactly
//!     `row[at + i]` and is accepted, which advances the watermark to the
//!     next slot; the cursor then skips the `m` accepted positions (every
//!     later bound is at least the last accepted position, so the skip
//!     matches what the next probe's prefix-discard would do anyway).
//!
//!   Emission order, the `target` early exit, and the run-tail skip on
//!   row exhaustion are placed exactly as in the scalar kernels, so the
//!   two paths are **bit-identical by construction** — pinned by the
//!   differential tests here, the seeded property suite in `seqdb`
//!   (`posting_cursor.rs`), and the forced-scalar cross-backend sweep in
//!   `width_kernel_equivalence.rs`.
//!
//! The kernels also fuse **run detection** into the same pass: a support
//! set stores its instances sorted by `(seq, last)`, so a sequence's run is
//! found by watching `seq` change under a single forward index — not by a
//! separate `take_while` pre-scan that touches every instance twice.

use seqdb::simd::{gt_mask64, gt_mask8, KernelBackend, BLOCK_LANES, FULL_MASK8, MAX_LANES};
use seqdb::{EventId, MultiCursor, ShardedIndex};

use crate::constraints::GapConstraints;
use crate::instance::Instance;
use crate::support::SupportSet;

/// One unconstrained extension pass (Algorithm 2): grows every instance of
/// `instances` (sorted by `(seq, last)`) by `event`, appending the grown
/// instances to `out` in the same order.
///
/// Within a sequence's run the row cursor advances under the
/// strictly-increasing `last_position` watermark; the run stops at the
/// first instance with no further occurrence of the event, because later
/// instances end even further right. With `target != usize::MAX` the pass
/// returns early once even extending every remaining instance could not
/// reach `target` grown instances (the caller is about to discard the set
/// as infrequent anyway).
///
/// Dispatches on [`seqdb::simd::active_backend`]: the scalar cursor loop
/// under `Scalar` (forced or detected), the lane-batched vectorized pass
/// otherwise — same output either way, bit for bit.
#[inline]
pub(crate) fn grow_unconstrained(
    index: &ShardedIndex,
    event: EventId,
    instances: &[Instance],
    target: usize,
    out: &mut SupportSet,
) {
    match seqdb::simd::active_backend() {
        KernelBackend::Scalar => grow_unconstrained_scalar(index, event, instances, target, out),
        backend => grow_unconstrained_batched(index, event, instances, target, backend, out),
    }
}

/// One gap-constrained extension pass: like [`grow_unconstrained`], but
/// each probe's window is bounded by `constraints` relative to the instance
/// being grown.
///
/// A position outside the window rejects only the current instance (the
/// probe does **not** consume it — the same position may satisfy the next
/// instance's window, whose bounds differ); row exhaustion ends the run for
/// every remaining instance of the sequence. Backend dispatch as in
/// [`grow_unconstrained`].
#[inline]
pub(crate) fn grow_constrained(
    index: &ShardedIndex,
    event: EventId,
    constraints: &GapConstraints,
    instances: &[Instance],
    out: &mut SupportSet,
) {
    match seqdb::simd::active_backend() {
        KernelBackend::Scalar => grow_constrained_scalar(index, event, constraints, instances, out),
        backend => grow_constrained_batched(index, event, constraints, instances, backend, out),
    }
}

/// One full extension layer, kernel work only: grows every support set in
/// `seeds` by every event in `events` (the exact grow calls one `mineFre`
/// level issues), reusing a single output buffer across all pairs, and
/// returns the total number of instances emitted.
///
/// This is the benchmark entry point for the growth kernels themselves:
/// unlike timing a whole mining run — where support counting, closure
/// checks, and tree bookkeeping dilute the kernel's share of the wall
/// clock — every cycle spent here is kernel time, so a scalar-vs-vector
/// ratio of this function measures the kernels and nothing else. Dispatch
/// goes through `grow_unconstrained`, honoring the active (or forced)
/// backend.
#[must_use]
pub fn grow_layer(index: &ShardedIndex, seeds: &[SupportSet], events: &[EventId]) -> u64 {
    let mut out = SupportSet::new();
    let mut emitted = 0u64;
    for seed in seeds {
        for &event in events {
            out.clear();
            grow_unconstrained(index, event, seed.instances(), usize::MAX, &mut out);
            emitted += out.instances().len() as u64;
        }
    }
    emitted
}

/// The pinned scalar unconstrained pass: one consuming
/// [`PostingCursor`](seqdb::PostingCursor) probe per instance.
fn grow_unconstrained_scalar(
    index: &ShardedIndex,
    event: EventId,
    instances: &[Instance],
    target: usize,
    out: &mut SupportSet,
) {
    let total = instances.len();
    let mut i = 0usize;
    while let Some(head) = instances.get(i) {
        let seq = head.seq;
        let Some(mut cursor) = index.cursor(seq as usize, event) else {
            // Out-of-range ids resolve no cursor: skip the whole run.
            while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                i += 1;
            }
            continue;
        };
        let mut last_position = 0u32;
        while let Some(instance) = instances.get(i) {
            if instance.seq != seq {
                break;
            }
            // The consuming probe is sound here: the watermark makes every
            // later bound at least the emitted position, so an emitted
            // position can never be the answer again within this run.
            match cursor.next_after_consuming(last_position.max(instance.last)) {
                Some(pos) => {
                    last_position = pos;
                    out.push(Instance::new(seq, instance.first, pos));
                    i += 1;
                }
                None => {
                    // Row exhausted: the remaining instances of this run
                    // end even further right, so none of them can be
                    // extended either — skip the run's tail.
                    while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                        i += 1;
                    }
                    break;
                }
            }
        }
        // Early exit: even if every remaining input instance could be
        // extended, the target cannot be reached.
        if target != usize::MAX && out.instances().len() + (total - i) < target {
            return;
        }
    }
}

/// The pinned scalar constrained pass: one non-consuming cursor probe per
/// instance.
fn grow_constrained_scalar(
    index: &ShardedIndex,
    event: EventId,
    constraints: &GapConstraints,
    instances: &[Instance],
    out: &mut SupportSet,
) {
    let mut i = 0usize;
    while let Some(head) = instances.get(i) {
        let seq = head.seq;
        let Some(mut cursor) = index.cursor(seq as usize, event) else {
            // Out-of-range ids resolve no cursor: skip the whole run.
            while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                i += 1;
            }
            continue;
        };
        let mut last_position = 0u32;
        while let Some(instance) = instances.get(i) {
            if instance.seq != seq {
                break;
            }
            // `lowest` stays non-decreasing along the run: the watermark
            // only grows and `lowest_exclusive` is monotone in the sorted
            // `last` positions — exactly the cursor's contract. The probe
            // must NOT consume: a position rejected for this instance's
            // window may satisfy the next instance's.
            let lowest = last_position.max(constraints.lowest_exclusive(instance.last));
            let highest = constraints.highest_inclusive(instance.first, instance.last);
            match cursor.next_after(lowest) {
                Some(pos) if pos <= highest => {
                    last_position = pos;
                    out.push(Instance::new(seq, instance.first, pos));
                    i += 1;
                }
                // Window miss: reject this instance only; the position
                // stays at the cursor front for the next instance.
                Some(_) => i += 1,
                None => {
                    while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                        i += 1;
                    }
                    break;
                }
            }
        }
    }
}

/// Collects the `last` bounds of up to [`MAX_LANES`] consecutive instances
/// of sequence `seq` starting at `instances[i]`, mapped through `bound`.
/// Returns the lane count (0 when the run is over).
#[inline]
fn gather_lanes(
    instances: &[Instance],
    i: usize,
    seq: u32,
    bounds: &mut [u32; MAX_LANES],
    bound: impl Fn(&Instance) -> u32,
) -> usize {
    let mut k = 0usize;
    for slot in bounds.iter_mut() {
        match instances.get(i + k) {
            Some(inst) if inst.seq == seq => {
                *slot = bound(inst);
                k += 1;
            }
            _ => break,
        }
    }
    k
}

/// The vectorized unconstrained pass: whole-block window compares advance
/// every dominated leading lane through consecutive row slots with zero
/// searches; the lane that breaks the prefix (and dominance-free
/// stretches) run on the scalar kernels' own [`PostingCursor`] probes.
/// Bit-identical to [`grow_unconstrained_scalar`] (see the module docs for
/// the proof sketch).
///
/// Two block widths, chosen by how much of the run remains:
/// - **Block mode** ([`BLOCK_LANES`] = 64 lanes): one [`gt_mask64`]
///   compare plus one bulk [`SupportSet::push_grown`] emission per 64
///   instances. Long runs — the regime this kernel exists for — spend
///   nearly all their lanes here, where the per-block bookkeeping
///   (watermark update, probe advance, loop control) is amortized 64
///   ways.
/// - **Batch mode** ([`MAX_LANES`] = 8 lanes): the same structure at
///   vector-register width, for run tails of 8..64 lanes.
/// - Runs (or remainders) shorter than 8 lanes go straight to the serial
///   probes: the pattern tree's long tail must not pay any window
///   bookkeeping.
fn grow_unconstrained_batched(
    index: &ShardedIndex,
    event: EventId,
    instances: &[Instance],
    target: usize,
    backend: KernelBackend,
    out: &mut SupportSet,
) {
    let total = instances.len();
    let mut bounds = [0u32; BLOCK_LANES];
    let mut i = 0usize;
    while let Some(head) = instances.get(i) {
        let seq = head.seq;
        // One boundary scan per run replaces the per-lane sequence check
        // the gather loops would otherwise repeat.
        let mut run_end = i;
        while instances.get(run_end).is_some_and(|inst| inst.seq == seq) {
            run_end += 1;
        }
        let Some(row) = index.event_positions(seq as usize, event) else {
            i = run_end;
            continue;
        };
        // The serial engine — literally the scalar kernel's cursor.
        // `probe`'s consumed count is the window's resume index:
        // everything before it is emitted.
        let mut probe = seqdb::PostingCursor::new(row);
        let mut last_position = 0u32;
        while i < run_end {
            // Whole-block fast path: every lane in the mask's leading
            // all-pass prefix provably takes the next consecutive row slot
            // (module docs) — emit them in bulk, no searches.
            let mut m = 0usize;
            let mut attempted = 0usize;
            let at = row.len() - probe.remaining();
            if run_end - i >= BLOCK_LANES {
                if let (Some(window), Some(lanes)) = (
                    row.get(at..at + BLOCK_LANES)
                        .and_then(|w| <&[u32; BLOCK_LANES]>::try_from(w).ok()),
                    instances.get(i..i + BLOCK_LANES),
                ) {
                    for (b, inst) in bounds.iter_mut().zip(lanes.iter()) {
                        *b = inst.last;
                    }
                    m = gt_mask64(window, &bounds, backend).trailing_ones() as usize;
                    attempted = BLOCK_LANES;
                }
            } else if run_end - i >= MAX_LANES {
                if let (Some(window), Some(lane_bounds)) = (
                    row.get(at..at + MAX_LANES)
                        .and_then(|w| <&[u32; MAX_LANES]>::try_from(w).ok()),
                    bounds.first_chunk_mut::<MAX_LANES>(),
                ) {
                    for (b, inst) in lane_bounds
                        .iter_mut()
                        .zip(instances.get(i..).unwrap_or(&[]).iter())
                    {
                        *b = inst.last;
                    }
                    m = gt_mask8(window, lane_bounds, backend).trailing_ones() as usize;
                    attempted = MAX_LANES;
                }
            }
            if m > 0 {
                out.push_grown(
                    seq,
                    instances.get(i..i + m).unwrap_or(&[]),
                    row.get(at..at + m).unwrap_or(&[]),
                );
                probe.advance(m);
                last_position = row.get(at + m - 1).copied().unwrap_or(last_position);
                i += m;
                if m == attempted {
                    continue;
                }
            }
            // Serial lanes: just the prefix-breaking lane when some lanes
            // went fast (the next iteration re-tries the vector window
            // right after it), a batch worth of lanes when dominance is
            // absent (re-trying the window per lane would pay the block
            // bookkeeping per probe for nothing).
            let serial_lanes = if m > 0 { 1 } else { MAX_LANES };
            let mut exhausted = false;
            for _ in 0..serial_lanes {
                if i >= run_end {
                    break;
                }
                let Some(instance) = instances.get(i) else {
                    break;
                };
                match probe.next_after_consuming(last_position.max(instance.last)) {
                    Some(pos) => {
                        last_position = pos;
                        out.push(Instance::new(seq, instance.first, pos));
                        i += 1;
                    }
                    None => {
                        // Row exhausted: the remaining instances of this
                        // run end even further right — skip the tail.
                        i = run_end;
                        exhausted = true;
                        break;
                    }
                }
            }
            if exhausted {
                break;
            }
        }
        i = i.max(run_end);
        // Same placement as the scalar kernel: checked once per run.
        if target != usize::MAX && out.instances().len() + (total - i) < target {
            return;
        }
    }
}

/// The vectorized constrained pass: two whole-batch vector compares (the
/// watermark-folded lower bounds below the window, the window inside the
/// gap limits) accept every lane of the aligned all-pass prefix at
/// consecutive row slots; the prefix-breaking lane (and dominance-free
/// batches) run on the scalar kernels' own non-consuming
/// [`PostingCursor`](seqdb::PostingCursor) probes. Bit-identical to
/// [`grow_constrained_scalar`].
fn grow_constrained_batched(
    index: &ShardedIndex,
    event: EventId,
    constraints: &GapConstraints,
    instances: &[Instance],
    backend: KernelBackend,
    out: &mut SupportSet,
) {
    let mut bounds = [0u32; MAX_LANES];
    let mut highs = [0u32; MAX_LANES];
    let mut i = 0usize;
    while let Some(head) = instances.get(i) {
        let seq = head.seq;
        let Some(row) = index.event_positions(seq as usize, event) else {
            while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                i += 1;
            }
            continue;
        };
        let mut probe = seqdb::PostingCursor::new(row);
        let mut batch = MultiCursor::with_backend(row, backend);
        let mut last_position = 0u32;
        let mut exhausted = false;
        loop {
            // The gathered bounds fold the accepted-position watermark in:
            // the fast path's window compare needs the full probe bound
            // (an accepted position is *not* consumed, so the next
            // candidate must be strictly past the watermark, not just past
            // the lane's own gap bound).
            let k = gather_lanes(instances, i, seq, &mut bounds, |inst| {
                constraints.lowest_exclusive(inst.last).max(last_position)
            });
            if k == 0 {
                break;
            }
            // Whole-batch fast path: the aligned prefix where the
            // watermark chain dominates (first compare) *and* every
            // consecutive candidate lands inside its lane's gap window
            // (second compare) is accepted at consecutive row slots
            // (module docs carry the induction). Full batches only — the
            // same short-run shield as the unconstrained kernel.
            let mut m = 0usize;
            if k == MAX_LANES {
                batch.set_base(row.len() - probe.remaining());
                if let Some(window) = batch.window() {
                    let lanes = instances.get(i..).unwrap_or(&[]);
                    for (h, inst) in highs.iter_mut().zip(lanes.iter()).take(k) {
                        *h = constraints.highest_inclusive(inst.first, inst.last);
                    }
                    let dom = gt_mask8(window, &bounds, backend);
                    let acc = !gt_mask8(window, &highs, backend) & FULL_MASK8;
                    m = ((dom & acc).trailing_ones() as usize).min(k);
                    if m > 0 {
                        out.push_grown(
                            seq,
                            lanes.get(..m).unwrap_or(&[]),
                            window.get(..m).unwrap_or(&[]),
                        );
                        // The skipped positions are all `<= ` every later
                        // probe bound (each is at most the new watermark), so
                        // consuming them matches the next probe's
                        // prefix-discard exactly.
                        probe.advance(m);
                        last_position = window.get(m - 1).copied().unwrap_or(last_position);
                        i += m;
                        if m == k {
                            continue;
                        }
                    }
                }
            }
            // Serial lanes: the prefix-breaking lane (watermark jump,
            // gap-window reject, or row tail) when some lanes went fast,
            // the whole batch when dominance is absent.
            let serial_lanes = if m > 0 { 1 } else { k };
            for _ in 0..serial_lanes {
                let Some(instance) = instances.get(i) else {
                    break;
                };
                let lowest = last_position.max(constraints.lowest_exclusive(instance.last));
                let highest = constraints.highest_inclusive(instance.first, instance.last);
                match probe.next_after(lowest) {
                    Some(pos) if pos <= highest => {
                        last_position = pos;
                        out.push(Instance::new(seq, instance.first, pos));
                        i += 1;
                    }
                    // Window miss: reject this instance only; the position
                    // stays at the cursor front for the next instance.
                    Some(_) => i += 1,
                    None => {
                        while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                            i += 1;
                        }
                        exhausted = true;
                        break;
                    }
                }
            }
            if exhausted {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb::SequenceDatabase;

    /// Table III: S1 = ABCACBDDB, S2 = ACDBACADD.
    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    fn backends_under_test() -> Vec<KernelBackend> {
        KernelBackend::all()
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    }

    /// The naive per-call loop the unconstrained kernel replaces.
    fn naive_unconstrained(
        index: &ShardedIndex,
        event: EventId,
        instances: &[Instance],
    ) -> Vec<Instance> {
        let mut out = Vec::new();
        let mut current_seq = u32::MAX;
        let mut last_position = 0u32;
        let mut dead = false;
        for instance in instances {
            if instance.seq != current_seq {
                current_seq = instance.seq;
                last_position = 0;
                dead = false;
            }
            if dead {
                continue;
            }
            let lowest = last_position.max(instance.last);
            match index.next(instance.seq as usize, event, lowest) {
                Some(pos) => {
                    last_position = pos;
                    out.push(Instance::new(instance.seq, instance.first, pos));
                }
                None => dead = true,
            }
        }
        out
    }

    fn multi_run_instances() -> Vec<Instance> {
        vec![
            Instance::new(0, 1, 1),
            Instance::new(0, 2, 3),
            Instance::new(0, 4, 6),
            Instance::new(1, 1, 2),
            Instance::new(1, 3, 5),
        ]
    }

    #[test]
    fn unconstrained_kernel_matches_the_per_call_probe() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let instances = multi_run_instances();
        for event in db.catalog().ids() {
            let expected = naive_unconstrained(&index, event, &instances);
            let mut out = SupportSet::new();
            grow_unconstrained(&index, event, &instances, usize::MAX, &mut out);
            assert_eq!(out.instances(), expected.as_slice(), "event {event:?}");
        }
    }

    #[test]
    fn unconstrained_kernel_honors_the_target_early_exit() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let b = db.catalog().id("B").expect("B interned");
        let instances = multi_run_instances();
        // An unreachable target aborts after the first sequence's run —
        // in every backend, at the same instance count.
        for backend in backends_under_test() {
            let mut scalar = SupportSet::new();
            grow_unconstrained_scalar(&index, b, &instances, instances.len() + 1, &mut scalar);
            let mut batched = SupportSet::new();
            grow_unconstrained_batched(
                &index,
                b,
                &instances,
                instances.len() + 1,
                backend,
                &mut batched,
            );
            assert!(scalar.instances().len() < instances.len());
            assert_eq!(scalar.instances(), batched.instances(), "{backend}");
        }
    }

    #[test]
    fn constrained_kernel_rejects_without_consuming() {
        // S1 = ABCACBDDB: D at positions {7, 8}. With max_gap 0 an instance
        // ending at 3 cannot reach 7, but the rejected position 7 must stay
        // available for a later instance ending at 6.
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let d = db.catalog().id("D").expect("D interned");
        let contiguous = GapConstraints::max_gap(0);
        let instances = vec![
            Instance::new(0, 1, 3),
            Instance::new(0, 2, 6),
            Instance::new(0, 4, 7),
        ];
        let expected = [Instance::new(0, 2, 7), Instance::new(0, 4, 8)];
        // (1,3): next D after 3 is 7, gap too large — rejected, not consumed.
        // (2,6): next D after 6 is 7, contiguous — emitted.
        // (4,7): next D after 7 is 8, contiguous — emitted.
        let mut out = SupportSet::new();
        grow_constrained_scalar(&index, d, &contiguous, &instances, &mut out);
        assert_eq!(out.instances(), &expected);
        for backend in backends_under_test() {
            let mut batched = SupportSet::new();
            grow_constrained_batched(&index, d, &contiguous, &instances, backend, &mut batched);
            assert_eq!(batched.instances(), &expected, "{backend}");
        }
    }

    #[test]
    fn unbounded_constraints_degenerate_to_the_unconstrained_kernel() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let unbounded = GapConstraints::unbounded();
        let instances = multi_run_instances();
        for event in db.catalog().ids() {
            let mut plain = SupportSet::new();
            grow_unconstrained(&index, event, &instances, usize::MAX, &mut plain);
            let mut constrained = SupportSet::new();
            grow_constrained(&index, event, &unbounded, &instances, &mut constrained);
            assert_eq!(
                plain.instances(),
                constrained.instances(),
                "event {event:?}"
            );
        }
    }

    /// Deterministic LCG for the differential sweep.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    /// Random database + random right-shift-sorted instance slices: every
    /// batched backend must reproduce the scalar kernels bit for bit, runs
    /// longer and shorter than one lane group included.
    #[test]
    fn batched_kernels_match_scalar_on_seeded_inputs() {
        let mut rng = Lcg(0xD1CE);
        let alphabet = ["A", "B", "C", "D", "E"];
        for round in 0..30 {
            let num_seqs = 1 + (rng.next() % 4) as usize;
            let rows: Vec<String> = (0..num_seqs)
                .map(|_| {
                    let len = (rng.next() % 40) as usize;
                    (0..len)
                        .map(|_| alphabet[(rng.next() % alphabet.len() as u64) as usize])
                        .collect()
                })
                .collect();
            let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
            let db = SequenceDatabase::from_str_rows(&refs);
            let index = ShardedIndex::single(db.inverted_index());

            // Right-shift-sorted instances with duplicate-heavy runs, some
            // spanning several lane groups (> 8 per sequence).
            let mut instances = Vec::new();
            for (seq, row) in rows.iter().enumerate() {
                if row.is_empty() {
                    continue;
                }
                let count = (rng.next() % 20) as usize;
                let mut last = 0u32;
                for _ in 0..count {
                    last = (last + 1 + (rng.next() % 3) as u32).min(row.len() as u32);
                    let first = 1 + (rng.next() as u32 % last);
                    instances.push(Instance::new(seq as u32, first.min(last), last));
                    if last == row.len() as u32 {
                        break;
                    }
                }
            }

            let grids = [
                GapConstraints::unbounded(),
                GapConstraints::max_gap(0),
                GapConstraints::max_gap(2),
                GapConstraints::gap_range(1, 3),
                GapConstraints::max_window(5),
            ];
            for event in db.catalog().ids() {
                let mut scalar = SupportSet::new();
                grow_unconstrained_scalar(&index, event, &instances, usize::MAX, &mut scalar);
                for backend in backends_under_test() {
                    let mut batched = SupportSet::new();
                    grow_unconstrained_batched(
                        &index,
                        event,
                        &instances,
                        usize::MAX,
                        backend,
                        &mut batched,
                    );
                    assert_eq!(
                        scalar.instances(),
                        batched.instances(),
                        "round {round} event {event:?} backend {backend} (unconstrained)"
                    );
                }
                for constraints in &grids {
                    let mut scalar = SupportSet::new();
                    grow_constrained_scalar(&index, event, constraints, &instances, &mut scalar);
                    for backend in backends_under_test() {
                        let mut batched = SupportSet::new();
                        grow_constrained_batched(
                            &index,
                            event,
                            constraints,
                            &instances,
                            backend,
                            &mut batched,
                        );
                        assert_eq!(
                            scalar.instances(),
                            batched.instances(),
                            "round {round} event {event:?} backend {backend} ({constraints:?})"
                        );
                    }
                }
            }
        }
    }
}
