//! Batched, branch-free growth kernels: whole-pass instance advancement
//! over resolved posting rows.
//!
//! The per-call probe `next(S, e, lowest)` (Algorithm 2, line 9) pays the
//! full price on every invocation: derive the `(sequence, event)` CSR slot,
//! binary-search the entire posting row, return one position. But one
//! extension pass processes all instances of a sequence **consecutively and
//! in right-shift order**, and along that run the probe's `lowest` bound is
//! non-decreasing — the `last_position` watermark only grows, instance
//! `last` positions are sorted, and the constrained lower bound
//! `lowest_exclusive` is monotone in them. So the row can be resolved
//! *once* (a [`PostingCursor`](seqdb::PostingCursor)) and advanced
//! monotonically: each probe gallops forward from the previous landmark for
//! short strides and falls back to a branch-free binary search over the
//! galloped bracket for long ones, permanently discarding the consumed
//! prefix. A run of `k` probes over a row of length `L` costs amortized
//! `O(L + k·log(stride))` instead of `k` independent `O(log L)` searches
//! plus `k` slot derivations.
//!
//! The kernels also fuse **run detection** into the same pass: a support
//! set stores its instances sorted by `(seq, last)`, so a sequence's run is
//! found by watching `seq` change under a single forward index — not by a
//! separate `take_while` pre-scan that touches every instance twice. A
//! successfully extended instance is therefore loaded exactly once; only a
//! run cut short by row exhaustion pays a skip scan over its tail.
//!
//! The kernels are drop-in replacements for the per-call probe loops: for
//! every input they emit exactly the instances the naive loop emits, in the
//! same order — pinned by the unit tests here, the seeded property suite in
//! `seqdb` (`posting_cursor.rs`), and the cross-width equivalence suite
//! (`width_kernel_equivalence.rs`).

use seqdb::{EventId, ShardedIndex};

use crate::constraints::GapConstraints;
use crate::instance::Instance;
use crate::support::SupportSet;

/// One unconstrained extension pass (Algorithm 2): grows every instance of
/// `instances` (sorted by `(seq, last)`) by `event`, appending the grown
/// instances to `out` in the same order.
///
/// Within a sequence's run the row cursor advances under the
/// strictly-increasing `last_position` watermark; the run stops at the
/// first instance with no further occurrence of the event, because later
/// instances end even further right. With `target != usize::MAX` the pass
/// returns early once even extending every remaining instance could not
/// reach `target` grown instances (the caller is about to discard the set
/// as infrequent anyway).
#[inline]
pub(crate) fn grow_unconstrained(
    index: &ShardedIndex,
    event: EventId,
    instances: &[Instance],
    target: usize,
    out: &mut SupportSet,
) {
    let total = instances.len();
    let mut i = 0usize;
    while let Some(head) = instances.get(i) {
        let seq = head.seq;
        let Some(mut cursor) = index.cursor(seq as usize, event) else {
            // Out-of-range ids resolve no cursor: skip the whole run.
            while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                i += 1;
            }
            continue;
        };
        let mut last_position = 0u32;
        while let Some(instance) = instances.get(i) {
            if instance.seq != seq {
                break;
            }
            // The consuming probe is sound here: the watermark makes every
            // later bound at least the emitted position, so an emitted
            // position can never be the answer again within this run.
            match cursor.next_after_consuming(last_position.max(instance.last)) {
                Some(pos) => {
                    last_position = pos;
                    out.push(Instance::new(seq, instance.first, pos));
                    i += 1;
                }
                None => {
                    // Row exhausted: the remaining instances of this run
                    // end even further right, so none of them can be
                    // extended either — skip the run's tail.
                    while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                        i += 1;
                    }
                    break;
                }
            }
        }
        // Early exit: even if every remaining input instance could be
        // extended, the target cannot be reached.
        if target != usize::MAX && out.instances().len() + (total - i) < target {
            return;
        }
    }
}

/// One gap-constrained extension pass: like [`grow_unconstrained`], but
/// each probe's window is bounded by `constraints` relative to the instance
/// being grown.
///
/// A position outside the window rejects only the current instance (the
/// cursor does **not** consume it — the same position may satisfy the next
/// instance's window, whose bounds differ); row exhaustion ends the run for
/// every remaining instance of the sequence.
#[inline]
pub(crate) fn grow_constrained(
    index: &ShardedIndex,
    event: EventId,
    constraints: &GapConstraints,
    instances: &[Instance],
    out: &mut SupportSet,
) {
    let mut i = 0usize;
    while let Some(head) = instances.get(i) {
        let seq = head.seq;
        let Some(mut cursor) = index.cursor(seq as usize, event) else {
            // Out-of-range ids resolve no cursor: skip the whole run.
            while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                i += 1;
            }
            continue;
        };
        let mut last_position = 0u32;
        while let Some(instance) = instances.get(i) {
            if instance.seq != seq {
                break;
            }
            // `lowest` stays non-decreasing along the run: the watermark
            // only grows and `lowest_exclusive` is monotone in the sorted
            // `last` positions — exactly the cursor's contract. The probe
            // must NOT consume: a position rejected for this instance's
            // window may satisfy the next instance's.
            let lowest = last_position.max(constraints.lowest_exclusive(instance.last));
            let highest = constraints.highest_inclusive(instance.first, instance.last);
            match cursor.next_after(lowest) {
                Some(pos) if pos <= highest => {
                    last_position = pos;
                    out.push(Instance::new(seq, instance.first, pos));
                    i += 1;
                }
                // Window miss: reject this instance only; the position
                // stays at the cursor front for the next instance.
                Some(_) => i += 1,
                None => {
                    while instances.get(i).is_some_and(|inst| inst.seq == seq) {
                        i += 1;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb::SequenceDatabase;

    /// Table III: S1 = ABCACBDDB, S2 = ACDBACADD.
    fn running_example() -> SequenceDatabase {
        SequenceDatabase::from_str_rows(&["ABCACBDDB", "ACDBACADD"])
    }

    /// The naive per-call loop the unconstrained kernel replaces.
    fn naive_unconstrained(
        index: &ShardedIndex,
        event: EventId,
        instances: &[Instance],
    ) -> Vec<Instance> {
        let mut out = Vec::new();
        let mut current_seq = u32::MAX;
        let mut last_position = 0u32;
        let mut dead = false;
        for instance in instances {
            if instance.seq != current_seq {
                current_seq = instance.seq;
                last_position = 0;
                dead = false;
            }
            if dead {
                continue;
            }
            let lowest = last_position.max(instance.last);
            match index.next(instance.seq as usize, event, lowest) {
                Some(pos) => {
                    last_position = pos;
                    out.push(Instance::new(instance.seq, instance.first, pos));
                }
                None => dead = true,
            }
        }
        out
    }

    fn multi_run_instances() -> Vec<Instance> {
        vec![
            Instance::new(0, 1, 1),
            Instance::new(0, 2, 3),
            Instance::new(0, 4, 6),
            Instance::new(1, 1, 2),
            Instance::new(1, 3, 5),
        ]
    }

    #[test]
    fn unconstrained_kernel_matches_the_per_call_probe() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let instances = multi_run_instances();
        for event in db.catalog().ids() {
            let expected = naive_unconstrained(&index, event, &instances);
            let mut out = SupportSet::new();
            grow_unconstrained(&index, event, &instances, usize::MAX, &mut out);
            assert_eq!(out.instances(), expected.as_slice(), "event {event:?}");
        }
    }

    #[test]
    fn unconstrained_kernel_honors_the_target_early_exit() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let b = db.catalog().id("B").expect("B interned");
        let instances = multi_run_instances();
        // An unreachable target aborts after the first sequence's run.
        let mut out = SupportSet::new();
        grow_unconstrained(&index, b, &instances, instances.len() + 1, &mut out);
        assert!(out.instances().len() < instances.len());
    }

    #[test]
    fn constrained_kernel_rejects_without_consuming() {
        // S1 = ABCACBDDB: D at positions {7, 8}. With max_gap 0 an instance
        // ending at 3 cannot reach 7, but the rejected position 7 must stay
        // available for a later instance ending at 6.
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let d = db.catalog().id("D").expect("D interned");
        let contiguous = GapConstraints::max_gap(0);
        let instances = vec![
            Instance::new(0, 1, 3),
            Instance::new(0, 2, 6),
            Instance::new(0, 4, 7),
        ];
        let mut out = SupportSet::new();
        grow_constrained(&index, d, &contiguous, &instances, &mut out);
        // (1,3): next D after 3 is 7, gap too large — rejected, not consumed.
        // (2,6): next D after 6 is 7, contiguous — emitted.
        // (4,7): next D after 7 is 8, contiguous — emitted.
        assert_eq!(
            out.instances(),
            &[Instance::new(0, 2, 7), Instance::new(0, 4, 8)]
        );
    }

    #[test]
    fn unbounded_constraints_degenerate_to_the_unconstrained_kernel() {
        let db = running_example();
        let index = ShardedIndex::single(db.inverted_index());
        let unbounded = GapConstraints::unbounded();
        let instances = multi_run_instances();
        for event in db.catalog().ids() {
            let mut plain = SupportSet::new();
            grow_unconstrained(&index, event, &instances, usize::MAX, &mut plain);
            let mut constrained = SupportSet::new();
            grow_constrained(&index, event, &unbounded, &instances, &mut constrained);
            assert_eq!(
                plain.instances(),
                constrained.instances(),
                "event {event:?}"
            );
        }
    }
}
